//! Exact branch & bound for weighted partial MaxSAT.
//!
//! Depth-first search over partial assignments with
//!
//! * **unit propagation** on hard clauses (a hard clause with one
//!   unassigned literal and no satisfied literal forces that literal);
//! * **cost lower bound** = weight of soft clauses already fully
//!   falsified; branches are pruned against the incumbent;
//! * **variable order**: most-constrained first (highest total weight of
//!   clauses the variable occurs in), decided once up front;
//! * **value order**: the phase suggested by the variable's unit soft
//!   clauses (evidence direction) first.
//!
//! Exponential in the worst case — intended for small instances and as
//! the exactness oracle for the stochastic solvers (the test-suite
//! cross-checks it against brute force).

use std::time::Instant;

use crate::problem::{MapResult, SatProblem, SolveStats};

/// Exact solver.
#[derive(Debug, Clone, Default)]
pub struct BranchAndBound {
    /// Optional node budget; `None` = unbounded. When exceeded the best
    /// incumbent so far is returned (may be suboptimal, flagged by
    /// `stats.rounds == 1`).
    pub node_budget: Option<u64>,
}

impl BranchAndBound {
    /// Creates a solver with no node budget.
    pub fn new() -> Self {
        BranchAndBound::default()
    }

    /// Creates a solver with a node budget.
    pub fn with_budget(node_budget: u64) -> Self {
        BranchAndBound {
            node_budget: Some(node_budget),
        }
    }

    /// Solves the problem exactly (or best-effort within the budget).
    pub fn solve(&self, problem: &SatProblem<'_>) -> MapResult {
        let start = Instant::now();
        let n = problem.n_vars;

        // Dense clause snapshot: `bound` and `propagate` run once per
        // search node, so they iterate a flat (lits, raw weight) table
        // instead of re-filtering the arena's slot table every time.
        let clauses: Vec<(&[tecore_ground::Lit], f64)> = problem
            .iter()
            .map(|c| (c.lits, problem.weight(c.id)))
            .collect();

        // Static variable order: descending total incident weight.
        let mut incident = vec![0.0f64; n];
        for &(lits, w) in &clauses {
            let w = if w.is_infinite() { 1e6 } else { w };
            for l in lits {
                incident[l.atom.index()] += w;
            }
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            incident[b as usize]
                .partial_cmp(&incident[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        // Preferred phase from unit soft clauses.
        let mut phase = vec![false; n];
        let mut phase_weight = vec![0.0f64; n];
        for &(lits, w) in &clauses {
            if let (&[l], false) = (lits, w.is_infinite()) {
                let v = l.atom.index();
                if w > phase_weight[v] {
                    phase_weight[v] = w;
                    phase[v] = l.positive;
                }
            }
        }

        let mut search = Search {
            clauses: &clauses,
            order: &order,
            phase: &phase,
            assigned: vec![None; n],
            best_cost: f64::INFINITY,
            best: vec![false; n],
            found: false,
            nodes: 0,
            budget: self.node_budget,
        };
        search.descend(0, 0.0);

        let (cost, feasible) = if search.found {
            (search.best_cost, true)
        } else {
            // No feasible completion found (hard clauses UNSAT or budget
            // exhausted before any leaf); report the phase assignment.
            let fallback: Vec<bool> = phase.clone();
            let (c, h) = problem.evaluate(&fallback);
            search.best = fallback;
            (c, h == 0)
        };
        MapResult {
            assignment: search.best,
            cost,
            feasible,
            stats: SolveStats {
                steps: search.nodes,
                rounds: u32::from(search.budget.is_some_and(|b| search.nodes >= b)),
                active_clauses: problem.len(),
                elapsed: start.elapsed(),
            },
        }
    }
}

struct Search<'a> {
    /// Dense (lits, raw weight) snapshot of the live clauses.
    clauses: &'a [(&'a [tecore_ground::Lit], f64)],
    order: &'a [u32],
    phase: &'a [bool],
    assigned: Vec<Option<bool>>,
    best_cost: f64,
    best: Vec<bool>,
    found: bool,
    nodes: u64,
    budget: Option<u64>,
}

impl Search<'_> {
    /// Cost of soft clauses already fully falsified, plus hard-clause
    /// feasibility: returns `None` if some hard clause is already
    /// falsified under the partial assignment.
    fn bound(&self) -> Option<f64> {
        let mut cost = 0.0;
        for &(lits, w) in self.clauses {
            let mut satisfied = false;
            let mut open = false;
            for l in lits {
                match self.assigned[l.atom.index()] {
                    Some(v) if l.satisfied_by(v) => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => open = true,
                }
            }
            if !satisfied && !open {
                if w.is_infinite() {
                    return None;
                }
                cost += w;
            }
        }
        Some(cost)
    }

    /// Hard-clause unit propagation; returns the trail of forced
    /// assignments, or `None` on conflict.
    fn propagate(&mut self) -> Option<Vec<u32>> {
        let mut trail: Vec<u32> = Vec::new();
        loop {
            let mut changed = false;
            for &(lits, w) in self.clauses {
                if !w.is_infinite() {
                    continue;
                }
                let mut satisfied = false;
                let mut unassigned = None;
                let mut open_count = 0;
                for l in lits {
                    match self.assigned[l.atom.index()] {
                        Some(v) if l.satisfied_by(v) => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            open_count += 1;
                            unassigned = Some(*l);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match (open_count, unassigned) {
                    (0, _) => {
                        // Conflict: undo the trail.
                        for &v in &trail {
                            self.assigned[v as usize] = None;
                        }
                        return None;
                    }
                    (1, Some(l)) => {
                        self.assigned[l.atom.index()] = Some(l.positive);
                        trail.push(l.atom.0);
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return Some(trail);
            }
        }
    }

    fn descend(&mut self, depth: usize, _parent_bound: f64) {
        self.nodes += 1;
        if let Some(b) = self.budget {
            if self.nodes > b {
                return;
            }
        }
        let Some(bound) = self.bound() else {
            return; // hard conflict
        };
        if bound >= self.best_cost {
            return; // cannot improve
        }
        // Find next unassigned variable in static order.
        let mut next = None;
        for &v in self.order {
            if self.assigned[v as usize].is_none() {
                next = Some(v);
                break;
            }
        }
        let _ = depth;
        let Some(v) = next else {
            // Complete assignment: bound is the exact cost.
            self.best_cost = bound;
            self.found = true;
            for (i, a) in self.assigned.iter().enumerate() {
                self.best[i] = a.unwrap_or(false);
            }
            return;
        };
        let first = self.phase[v as usize];
        for value in [first, !first] {
            self.assigned[v as usize] = Some(value);
            if let Some(trail) = self.propagate() {
                self.descend(depth + 1, bound);
                for t in trail {
                    self.assigned[t as usize] = None;
                }
            }
            self.assigned[v as usize] = None;
        }
    }
}

/// Brute-force reference solver (tests only): enumerates all `2^n`
/// assignments. Public so integration tests and other crates' oracles
/// can reuse it; panics above 20 variables.
pub fn brute_force(problem: &SatProblem<'_>) -> MapResult {
    assert!(problem.n_vars <= 20, "brute force beyond 2^20 is a bug");
    let start = Instant::now();
    let n = problem.n_vars;
    let mut best_cost = f64::INFINITY;
    let mut best = vec![false; n];
    let mut found = false;
    for mask in 0u64..(1u64 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        let (cost, hard) = problem.evaluate(&assignment);
        if hard == 0 && cost < best_cost {
            best_cost = cost;
            best = assignment;
            found = true;
        }
    }
    MapResult {
        assignment: best,
        cost: if found { best_cost } else { f64::INFINITY },
        feasible: found,
        stats: SolveStats {
            steps: 1 << n,
            rounds: 0,
            active_clauses: problem.len(),
            elapsed: start.elapsed(),
        },
    }
}

impl tecore_ground::MapSolver for BranchAndBound {
    fn name(&self) -> &str {
        "mln-exact"
    }

    fn caps(&self) -> tecore_ground::SolverCaps {
        tecore_ground::SolverCaps {
            exact: self.node_budget.is_none(),
            // Exact search benefits doubly from components: B&B's
            // exponential worst case applies per sub-problem, so many
            // small components are exponentially cheaper than their
            // union.
            components: true,
            ..tecore_ground::SolverCaps::mln()
        }
    }

    fn solve(
        &self,
        grounding: &tecore_ground::Grounding,
        // Exact search has nothing to gain from a warm start (the
        // optimum is recomputed either way); caps.warm_start stays
        // false and the option is ignored.
        _opts: &tecore_ground::SolveOpts<'_>,
    ) -> Result<tecore_ground::MapState, tecore_ground::SolveError> {
        let problem = SatProblem::from_grounding(grounding);
        Ok(self.solve(&problem).into_map_state())
    }

    fn solve_component(
        &self,
        view: &tecore_ground::ComponentView<'_>,
        _opts: &tecore_ground::SolveOpts<'_>,
    ) -> Result<tecore_ground::MapState, tecore_ground::SolveError> {
        let problem = SatProblem::from_owned_store(view.num_atoms(), view.to_store());
        Ok(self.solve(&problem).into_map_state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tecore_ground::{AtomId, ClauseOrigin, ClauseWeight, GroundClause, Lit};

    fn soft(lits: Vec<Lit>, w: f64) -> GroundClause {
        GroundClause::new(lits, ClauseWeight::Soft(w), ClauseOrigin::Evidence).unwrap()
    }

    fn hard(lits: Vec<Lit>) -> GroundClause {
        GroundClause::new(lits, ClauseWeight::Hard, ClauseOrigin::Formula(0)).unwrap()
    }

    #[test]
    fn paper_conflict_shape() {
        // Two evidence atoms (Chelsea w=2.197, Napoli w=0.405) and the
        // hard clash ¬chelsea ∨ ¬napoli: MAP keeps Chelsea.
        let clauses = vec![
            soft(vec![Lit::pos(AtomId(0))], 2.197),
            soft(vec![Lit::pos(AtomId(1))], 0.405),
            hard(vec![Lit::neg(AtomId(0)), Lit::neg(AtomId(1))]),
        ];
        let p = SatProblem::from_clauses(2, &clauses);
        let r = BranchAndBound::new().solve(&p);
        assert!(r.feasible);
        assert!(r.assignment[0], "Chelsea kept");
        assert!(!r.assignment[1], "Napoli removed");
        assert!((r.cost - 0.405).abs() < 1e-9);
    }

    #[test]
    fn unsat_hard_reports_infeasible() {
        let clauses = vec![
            hard(vec![Lit::pos(AtomId(0))]),
            hard(vec![Lit::neg(AtomId(0))]),
        ];
        let p = SatProblem::from_clauses(1, &clauses);
        let r = BranchAndBound::new().solve(&p);
        assert!(!r.feasible);
    }

    #[test]
    fn propagation_chains() {
        // x0 → x1 → x2 hard chain plus evidence for x0.
        let clauses = vec![
            soft(vec![Lit::pos(AtomId(0))], 5.0),
            hard(vec![Lit::neg(AtomId(0)), Lit::pos(AtomId(1))]),
            hard(vec![Lit::neg(AtomId(1)), Lit::pos(AtomId(2))]),
            soft(vec![Lit::neg(AtomId(2))], 1.0),
        ];
        let p = SatProblem::from_clauses(3, &clauses);
        let r = BranchAndBound::new().solve(&p);
        assert!(r.feasible);
        assert_eq!(r.assignment, vec![true, true, true]);
        assert!((r.cost - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_problem() {
        let p = SatProblem::from_clauses(0, &[]);
        let r = BranchAndBound::new().solve(&p);
        assert!(r.feasible);
        assert_eq!(r.cost, 0.0);
    }

    fn arb_problem() -> impl Strategy<Value = SatProblem<'static>> {
        let lit = (0u32..6, prop::bool::ANY).prop_map(|(a, pos)| Lit {
            atom: AtomId(a),
            positive: pos,
        });
        let clause = (
            prop::collection::vec(lit, 1..4),
            prop::option::of(1u32..100),
        );
        prop::collection::vec(clause, 1..14).prop_map(|cs| {
            let ground: Vec<GroundClause> = cs
                .into_iter()
                .filter_map(|(lits, soft_w)| {
                    let w = match soft_w {
                        Some(w) => ClauseWeight::Soft(f64::from(w) / 10.0),
                        None => ClauseWeight::Hard,
                    };
                    GroundClause::new(lits, w, ClauseOrigin::Evidence)
                })
                .collect();
            SatProblem::from_clauses(6, &ground)
        })
    }

    proptest! {
        /// B&B matches brute force exactly (cost and feasibility).
        #[test]
        fn matches_brute_force(p in arb_problem()) {
            let exact = BranchAndBound::new().solve(&p);
            let reference = brute_force(&p);
            prop_assert_eq!(exact.feasible, reference.feasible);
            if reference.feasible {
                prop_assert!((exact.cost - reference.cost).abs() < 1e-9,
                    "bnb {} vs brute {}", exact.cost, reference.cost);
                // And the reported assignment really has that cost.
                let (cost, hard) = p.evaluate(&exact.assignment);
                prop_assert_eq!(hard, 0);
                prop_assert!((cost - exact.cost).abs() < 1e-9);
            }
        }
    }
}
