//! The weighted partial MaxSAT problem and its solutions.

use std::fmt;
use std::time::Duration;

use tecore_ground::{ClauseWeight, GroundClause, Grounding, Lit};

/// A clause of the SAT problem.
#[derive(Debug, Clone, PartialEq)]
pub struct SatClause {
    /// Literals (sorted, duplicate-free — inherited from
    /// [`GroundClause`]).
    pub lits: Box<[Lit]>,
    /// Violation cost; `f64::INFINITY` marks a hard clause.
    pub weight: f64,
}

impl SatClause {
    /// Is this a hard clause?
    #[inline]
    pub fn is_hard(&self) -> bool {
        self.weight.is_infinite()
    }

    /// Is the clause satisfied under `assignment`?
    #[inline]
    pub fn satisfied_by(&self, assignment: &[bool]) -> bool {
        self.lits
            .iter()
            .any(|l| l.satisfied_by(assignment[l.atom.index()]))
    }
}

/// A weighted partial MaxSAT instance: minimise the total weight of
/// violated soft clauses subject to all hard clauses holding.
#[derive(Debug, Clone, Default)]
pub struct SatProblem {
    /// Number of boolean variables (ground atoms).
    pub n_vars: usize,
    /// All clauses (hard and soft).
    pub clauses: Vec<SatClause>,
}

impl SatProblem {
    /// Builds the problem from a grounding.
    pub fn from_grounding(grounding: &Grounding) -> SatProblem {
        SatProblem::from_clauses(grounding.num_atoms(), &grounding.clauses)
    }

    /// Builds the problem from raw ground clauses.
    pub fn from_clauses(n_vars: usize, clauses: &[GroundClause]) -> SatProblem {
        let clauses = clauses
            .iter()
            .map(|c| SatClause {
                lits: c.lits.clone().into_boxed_slice(),
                weight: match c.weight {
                    ClauseWeight::Hard => f64::INFINITY,
                    ClauseWeight::Soft(w) => w,
                },
            })
            .collect();
        SatProblem { n_vars, clauses }
    }

    /// Total weight of violated soft clauses, and the number of violated
    /// hard clauses, under `assignment`.
    pub fn evaluate(&self, assignment: &[bool]) -> (f64, usize) {
        let mut cost = 0.0;
        let mut hard_violations = 0;
        for c in &self.clauses {
            if !c.satisfied_by(assignment) {
                if c.is_hard() {
                    hard_violations += 1;
                } else {
                    cost += c.weight;
                }
            }
        }
        (cost, hard_violations)
    }

    /// Number of hard clauses.
    pub fn hard_count(&self) -> usize {
        self.clauses.iter().filter(|c| c.is_hard()).count()
    }

    /// Number of soft clauses.
    pub fn soft_count(&self) -> usize {
        self.clauses.len() - self.hard_count()
    }

    /// Sum of all soft weights (an upper bound on any solution cost).
    pub fn total_soft_weight(&self) -> f64 {
        self.clauses
            .iter()
            .filter(|c| !c.is_hard())
            .map(|c| c.weight)
            .sum()
    }
}

/// Statistics of one MAP solve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Search steps (flips for local search, nodes for B&B).
    pub steps: u64,
    /// Restarts (local search) or CPI rounds.
    pub rounds: u32,
    /// Clauses in the final active set (== problem size unless CPI).
    pub active_clauses: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// The result of MAP inference.
#[derive(Debug, Clone, PartialEq)]
pub struct MapResult {
    /// Truth value per atom (indexed by `AtomId::index()`).
    pub assignment: Vec<bool>,
    /// Total violated soft weight (lower is better).
    pub cost: f64,
    /// All hard clauses satisfied?
    pub feasible: bool,
    /// Solve statistics.
    pub stats: SolveStats,
}

impl MapResult {
    /// Converts into the backend-agnostic [`MapState`] the `MapSolver`
    /// interface returns (MLN solvers produce no soft truth values).
    pub fn into_map_state(self) -> tecore_ground::MapState {
        tecore_ground::MapState {
            assignment: self.assignment,
            cost: self.cost,
            feasible: self.feasible,
            active_clauses: self.stats.active_clauses,
            soft_values: None,
        }
    }
}

impl fmt::Display for MapResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MAP: cost {:.4}, {}, {} steps, {:?}",
            self.cost,
            if self.feasible {
                "feasible"
            } else {
                "INFEASIBLE"
            },
            self.stats.steps,
            self.stats.elapsed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tecore_ground::{AtomId, ClauseOrigin};

    fn clause(lits: Vec<Lit>, weight: ClauseWeight) -> GroundClause {
        GroundClause::new(lits, weight, ClauseOrigin::Evidence).unwrap()
    }

    #[test]
    fn from_clauses_and_evaluate() {
        let clauses = vec![
            clause(vec![Lit::pos(AtomId(0))], ClauseWeight::Soft(2.0)),
            clause(
                vec![Lit::neg(AtomId(0)), Lit::pos(AtomId(1))],
                ClauseWeight::Hard,
            ),
            clause(vec![Lit::neg(AtomId(1))], ClauseWeight::Soft(0.5)),
        ];
        let p = SatProblem::from_clauses(2, &clauses);
        assert_eq!(p.n_vars, 2);
        assert_eq!(p.hard_count(), 1);
        assert_eq!(p.soft_count(), 2);
        assert!((p.total_soft_weight() - 2.5).abs() < 1e-12);

        // x0=true forces x1=true (hard), violating the ¬x1 soft clause.
        let (cost, hard) = p.evaluate(&[true, true]);
        assert!((cost - 0.5).abs() < 1e-12);
        assert_eq!(hard, 0);
        // x0=true, x1=false violates the hard clause.
        let (_, hard) = p.evaluate(&[true, false]);
        assert_eq!(hard, 1);
        // x0=false violates the first soft clause only.
        let (cost, hard) = p.evaluate(&[false, false]);
        assert!((cost - 2.0).abs() < 1e-12);
        assert_eq!(hard, 0);
    }

    #[test]
    fn hard_marker() {
        let c = SatClause {
            lits: vec![Lit::pos(AtomId(0))].into_boxed_slice(),
            weight: f64::INFINITY,
        };
        assert!(c.is_hard());
        let s = SatClause {
            lits: vec![Lit::pos(AtomId(0))].into_boxed_slice(),
            weight: 1.0,
        };
        assert!(!s.is_hard());
    }
}
