//! The weighted partial MaxSAT problem and its solutions.
//!
//! A [`SatProblem`] is a *view* over the grounding's flat
//! [`ClauseStore`] arena: built from a [`Grounding`] it borrows the
//! arena zero-copy (no per-clause re-boxing of literals), while
//! preprocessing and tests can hold an owned store through the same
//! type (`Cow` keeps one API for both). Clause weights come back as raw
//! `f64` with `f64::INFINITY` marking hard clauses — the exact encoding
//! the arena stores, so solver hot loops read arrays without
//! conversion.

use std::borrow::Cow;
use std::fmt;
use std::time::Duration;

use tecore_ground::{ClauseRef, ClauseStore, GroundClause, Grounding, Lit};

/// A weighted partial MaxSAT instance: minimise the total weight of
/// violated soft clauses subject to all hard clauses holding.
#[derive(Debug, Clone)]
pub struct SatProblem<'a> {
    /// Number of boolean variables (ground atoms).
    pub n_vars: usize,
    /// The clause arena (borrowed from a grounding, or owned).
    clauses: Cow<'a, ClauseStore>,
}

impl<'a> SatProblem<'a> {
    /// Builds the problem as a zero-copy view over a grounding's clause
    /// arena.
    pub fn from_grounding(grounding: &'a Grounding) -> SatProblem<'a> {
        SatProblem {
            n_vars: grounding.num_atoms(),
            clauses: Cow::Borrowed(&grounding.clauses),
        }
    }

    /// Builds the problem as a view over an arbitrary clause store.
    pub fn from_store(n_vars: usize, store: &'a ClauseStore) -> SatProblem<'a> {
        SatProblem {
            n_vars,
            clauses: Cow::Borrowed(store),
        }
    }

    /// Builds an owned problem from raw ground clauses (tests and small
    /// call sites; the hot paths borrow).
    pub fn from_clauses(n_vars: usize, clauses: &[GroundClause]) -> SatProblem<'static> {
        SatProblem {
            n_vars,
            clauses: Cow::Owned(ClauseStore::from_ground_clauses(clauses)),
        }
    }

    /// Wraps an owned store (preprocessing output).
    pub fn from_owned_store(n_vars: usize, store: ClauseStore) -> SatProblem<'static> {
        SatProblem {
            n_vars,
            clauses: Cow::Owned(store),
        }
    }

    /// Number of **live** clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Is the instance free of live clauses?
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Number of clause slots (tombstones included) — per-clause solver
    /// state indexed by clause id must be sized by this.
    pub fn num_slots(&self) -> usize {
        self.clauses.num_slots()
    }

    /// Iterates over the live clauses.
    pub fn iter(&self) -> impl Iterator<Item = ClauseRef<'_>> {
        self.clauses.iter()
    }

    /// The literals of clause `ci`.
    #[inline]
    pub fn lits(&self, ci: u32) -> &[Lit] {
        self.clauses.lits(ci)
    }

    /// The raw weight of clause `ci` (`f64::INFINITY` = hard).
    #[inline]
    pub fn weight(&self, ci: u32) -> f64 {
        self.clauses.weight_raw(ci)
    }

    /// Is clause `ci` hard?
    #[inline]
    pub fn is_hard(&self, ci: u32) -> bool {
        self.clauses.is_hard(ci)
    }

    /// Total weight of violated soft clauses, and the number of violated
    /// hard clauses, under `assignment`.
    pub fn evaluate(&self, assignment: &[bool]) -> (f64, usize) {
        let mut cost = 0.0;
        let mut hard_violations = 0;
        for c in self.iter() {
            if !c.satisfied_by(assignment) {
                match c.weight {
                    tecore_ground::ClauseWeight::Hard => hard_violations += 1,
                    tecore_ground::ClauseWeight::Soft(w) => cost += w,
                }
            }
        }
        (cost, hard_violations)
    }

    /// Number of hard clauses.
    pub fn hard_count(&self) -> usize {
        self.iter().filter(|c| c.weight.is_hard()).count()
    }

    /// Number of soft clauses.
    pub fn soft_count(&self) -> usize {
        self.len() - self.hard_count()
    }

    /// Sum of all soft weights (an upper bound on any solution cost).
    pub fn total_soft_weight(&self) -> f64 {
        self.iter().filter_map(|c| c.weight.soft()).sum()
    }
}

/// Statistics of one MAP solve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Search steps (flips for local search, nodes for B&B).
    pub steps: u64,
    /// Restarts (local search) or CPI rounds.
    pub rounds: u32,
    /// Clauses in the final active set (== problem size unless CPI).
    pub active_clauses: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// The result of MAP inference.
#[derive(Debug, Clone, PartialEq)]
pub struct MapResult {
    /// Truth value per atom (indexed by `AtomId::index()`).
    pub assignment: Vec<bool>,
    /// Total violated soft weight (lower is better).
    pub cost: f64,
    /// All hard clauses satisfied?
    pub feasible: bool,
    /// Solve statistics.
    pub stats: SolveStats,
}

impl MapResult {
    /// Converts into the backend-agnostic [`MapState`](tecore_ground::MapState) the `MapSolver`
    /// interface returns (MLN solvers produce no soft truth values).
    pub fn into_map_state(self) -> tecore_ground::MapState {
        tecore_ground::MapState {
            assignment: self.assignment,
            cost: self.cost,
            feasible: self.feasible,
            active_clauses: self.stats.active_clauses,
            soft_values: None,
        }
    }
}

impl fmt::Display for MapResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MAP: cost {:.4}, {}, {} steps, {:?}",
            self.cost,
            if self.feasible {
                "feasible"
            } else {
                "INFEASIBLE"
            },
            self.stats.steps,
            self.stats.elapsed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tecore_ground::{AtomId, ClauseOrigin, ClauseWeight};

    fn clause(lits: Vec<Lit>, weight: ClauseWeight) -> GroundClause {
        GroundClause::new(lits, weight, ClauseOrigin::Evidence).unwrap()
    }

    #[test]
    fn from_clauses_and_evaluate() {
        let clauses = vec![
            clause(vec![Lit::pos(AtomId(0))], ClauseWeight::Soft(2.0)),
            clause(
                vec![Lit::neg(AtomId(0)), Lit::pos(AtomId(1))],
                ClauseWeight::Hard,
            ),
            clause(vec![Lit::neg(AtomId(1))], ClauseWeight::Soft(0.5)),
        ];
        let p = SatProblem::from_clauses(2, &clauses);
        assert_eq!(p.n_vars, 2);
        assert_eq!(p.hard_count(), 1);
        assert_eq!(p.soft_count(), 2);
        assert!((p.total_soft_weight() - 2.5).abs() < 1e-12);

        // x0=true forces x1=true (hard), violating the ¬x1 soft clause.
        let (cost, hard) = p.evaluate(&[true, true]);
        assert!((cost - 0.5).abs() < 1e-12);
        assert_eq!(hard, 0);
        // x0=true, x1=false violates the hard clause.
        let (_, hard) = p.evaluate(&[true, false]);
        assert_eq!(hard, 1);
        // x0=false violates the first soft clause only.
        let (cost, hard) = p.evaluate(&[false, false]);
        assert!((cost - 2.0).abs() < 1e-12);
        assert_eq!(hard, 0);
    }

    #[test]
    fn hard_marker_and_raw_weights() {
        let p = SatProblem::from_clauses(
            1,
            &[
                clause(vec![Lit::pos(AtomId(0))], ClauseWeight::Hard),
                clause(vec![Lit::pos(AtomId(0))], ClauseWeight::Soft(1.0)),
            ],
        );
        assert!(p.is_hard(0));
        assert!(p.weight(0).is_infinite());
        assert!(!p.is_hard(1));
        assert_eq!(p.weight(1), 1.0);
        assert_eq!(p.lits(1), &[Lit::pos(AtomId(0))]);
    }
}
