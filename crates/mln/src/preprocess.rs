//! Preprocessing of weighted partial MaxSAT instances.
//!
//! Two standard, solution-preserving simplifications run before search:
//!
//! * **hard unit propagation** — a hard unit clause fixes its variable;
//!   fixing cascades through the hard clause set (satisfied clauses are
//!   dropped, falsified literals are removed, emptied hard clauses mean
//!   the instance is infeasible);
//! * **pure literal fixing** — a variable appearing with only one
//!   polarity across *all* remaining clauses can be fixed to that
//!   polarity without increasing cost.
//!
//! On TeCoRe groundings the evidence/prior unit structure leaves little
//! for search after preprocessing on conflict-sparse graphs: with
//! `pin_certain` enabled, whole connected components collapse. The
//! propty tests cross-check against brute force that the optimal cost
//! is preserved exactly.

use tecore_ground::{ClauseOrigin, ClauseStore, ClauseWeight, Lit};

use crate::problem::{MapResult, SatProblem};

/// The outcome of preprocessing.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// The reduced instance (over the same variable ids; fixed
    /// variables simply no longer occur). Owned: the reduced clauses
    /// live in their own arena.
    pub problem: SatProblem<'static>,
    /// Fixed assignments, `fixed[v] = Some(value)`.
    pub fixed: Vec<Option<bool>>,
    /// `false` if hard unit propagation derived a contradiction.
    pub feasible: bool,
    /// Soft cost already incurred by the fixing (violated soft clauses).
    pub base_cost: f64,
}

impl Preprocessed {
    /// Completes a solution of the reduced problem into a full
    /// assignment of the original problem.
    pub fn complete(&self, reduced: &[bool]) -> Vec<bool> {
        self.fixed
            .iter()
            .enumerate()
            .map(|(v, f)| f.unwrap_or(reduced[v]))
            .collect()
    }

    /// Lifts a [`MapResult`] of the reduced problem to the original.
    pub fn lift(&self, mut result: MapResult) -> MapResult {
        result.assignment = self.complete(&result.assignment);
        result.cost += self.base_cost;
        result.feasible = result.feasible && self.feasible;
        result
    }
}

/// Runs hard unit propagation followed by pure-literal fixing to a
/// joint fixpoint.
pub fn preprocess(problem: &SatProblem<'_>) -> Preprocessed {
    let n = problem.n_vars;
    let mut fixed: Vec<Option<bool>> = vec![None; n];
    let mut feasible = true;
    let mut base_cost = 0.0;
    // Working clause set: (lits, raw weight, alive).
    let mut clauses: Vec<(Vec<Lit>, f64, bool)> = problem
        .iter()
        .map(|c| (c.lits.to_vec(), problem.weight(c.id), true))
        .collect();

    loop {
        let mut changed = false;

        // --- hard unit propagation ------------------------------------
        loop {
            let mut unit: Option<Lit> = None;
            for (lits, w, alive) in clauses.iter() {
                if *alive && w.is_infinite() && lits.len() == 1 {
                    unit = Some(lits[0]);
                    break;
                }
            }
            let Some(l) = unit else { break };
            if let Some(prev) = fixed[l.atom.index()] {
                if prev != l.positive {
                    feasible = false;
                }
            }
            fixed[l.atom.index()] = Some(l.positive);
            changed = true;
            apply_fix(
                &mut clauses,
                l.atom.index(),
                l.positive,
                &mut base_cost,
                &mut feasible,
            );
        }

        // --- pure literals ---------------------------------------------
        let mut polarity: Vec<(bool, bool)> = vec![(false, false); n]; // (pos, neg)
        for (lits, _, alive) in clauses.iter() {
            if !*alive {
                continue;
            }
            for l in lits {
                let p = &mut polarity[l.atom.index()];
                if l.positive {
                    p.0 = true;
                } else {
                    p.1 = true;
                }
            }
        }
        for v in 0..n {
            if fixed[v].is_some() {
                continue;
            }
            let value = match polarity[v] {
                (true, false) => Some(true),
                (false, true) => Some(false),
                _ => None,
            };
            if let Some(value) = value {
                fixed[v] = Some(value);
                changed = true;
                apply_fix(&mut clauses, v, value, &mut base_cost, &mut feasible);
            }
        }

        if !changed || !feasible {
            break;
        }
    }

    let mut remaining = ClauseStore::new();
    for (lits, weight, alive) in clauses {
        if !alive {
            continue;
        }
        let weight = if weight.is_infinite() {
            ClauseWeight::Hard
        } else {
            ClauseWeight::Soft(weight)
        };
        remaining.push_lits(&lits, weight, ClauseOrigin::Evidence);
    }
    Preprocessed {
        problem: SatProblem::from_owned_store(n, remaining),
        fixed,
        feasible,
        base_cost,
    }
}

/// Applies a variable fix to the working clause set: satisfied clauses
/// die, falsified literals disappear, emptied clauses either add cost
/// (soft) or poison feasibility (hard).
fn apply_fix(
    clauses: &mut [(Vec<Lit>, f64, bool)],
    var: usize,
    value: bool,
    base_cost: &mut f64,
    feasible: &mut bool,
) {
    for (lits, w, alive) in clauses.iter_mut() {
        if !*alive {
            continue;
        }
        let mut satisfied = false;
        lits.retain(|l| {
            if l.atom.index() != var {
                return true;
            }
            if l.satisfied_by(value) {
                satisfied = true;
            }
            false
        });
        if satisfied {
            *alive = false;
        } else if lits.is_empty() {
            *alive = false;
            if w.is_infinite() {
                *feasible = false;
            } else {
                *base_cost += *w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::bnb::{brute_force, BranchAndBound};
    use proptest::prelude::*;
    use tecore_ground::{AtomId, ClauseOrigin, ClauseWeight, GroundClause};

    fn soft(lits: Vec<Lit>, w: f64) -> GroundClause {
        GroundClause::new(lits, ClauseWeight::Soft(w), ClauseOrigin::Evidence).unwrap()
    }

    fn hard(lits: Vec<Lit>) -> GroundClause {
        GroundClause::new(lits, ClauseWeight::Hard, ClauseOrigin::Formula(0)).unwrap()
    }

    #[test]
    fn hard_unit_chain_collapses() {
        // (a), a→b, b→c all hard: everything fixed true, nothing left.
        let clauses = vec![
            hard(vec![Lit::pos(AtomId(0))]),
            hard(vec![Lit::neg(AtomId(0)), Lit::pos(AtomId(1))]),
            hard(vec![Lit::neg(AtomId(1)), Lit::pos(AtomId(2))]),
            soft(vec![Lit::neg(AtomId(2))], 1.5),
        ];
        let p = SatProblem::from_clauses(3, &clauses);
        let pre = preprocess(&p);
        assert!(pre.feasible);
        assert_eq!(pre.fixed, vec![Some(true), Some(true), Some(true)]);
        assert!(pre.problem.is_empty());
        assert!((pre.base_cost - 1.5).abs() < 1e-12, "violated soft counted");
    }

    #[test]
    fn contradiction_detected() {
        let clauses = vec![
            hard(vec![Lit::pos(AtomId(0))]),
            hard(vec![Lit::neg(AtomId(0))]),
        ];
        let p = SatProblem::from_clauses(1, &clauses);
        let pre = preprocess(&p);
        assert!(!pre.feasible);
    }

    #[test]
    fn pure_literal_fixed() {
        // b occurs only positively → fixed true, satisfying both.
        let clauses = vec![
            soft(vec![Lit::pos(AtomId(0)), Lit::pos(AtomId(1))], 1.0),
            soft(vec![Lit::neg(AtomId(0)), Lit::pos(AtomId(1))], 2.0),
        ];
        let p = SatProblem::from_clauses(2, &clauses);
        let pre = preprocess(&p);
        assert_eq!(pre.fixed[1], Some(true));
        assert!(pre.problem.is_empty());
        assert_eq!(pre.base_cost, 0.0);
    }

    #[test]
    fn lift_completes_assignment() {
        let clauses = vec![
            hard(vec![Lit::pos(AtomId(0))]),
            soft(vec![Lit::pos(AtomId(1)), Lit::neg(AtomId(2))], 1.0),
            soft(vec![Lit::neg(AtomId(1)), Lit::pos(AtomId(2))], 1.0),
        ];
        let p = SatProblem::from_clauses(3, &clauses);
        let pre = preprocess(&p);
        assert!(pre.feasible);
        let inner = BranchAndBound::new().solve(&pre.problem);
        let full = pre.lift(inner);
        assert!(full.feasible);
        assert!(full.assignment[0], "fixed var present in lifted result");
        let (cost, hardv) = p.evaluate(&full.assignment);
        assert_eq!(hardv, 0);
        assert!((cost - full.cost).abs() < 1e-9);
    }

    fn arb_problem() -> impl Strategy<Value = SatProblem<'static>> {
        let lit = (0u32..7, prop::bool::ANY).prop_map(|(a, pos)| Lit {
            atom: AtomId(a),
            positive: pos,
        });
        let clause = (
            prop::collection::vec(lit, 1..4),
            prop::option::of(1u32..100),
        );
        prop::collection::vec(clause, 1..14).prop_map(|cs| {
            let ground: Vec<GroundClause> = cs
                .into_iter()
                .filter_map(|(lits, soft_w)| {
                    let w = match soft_w {
                        Some(w) => ClauseWeight::Soft(f64::from(w) / 10.0),
                        None => ClauseWeight::Hard,
                    };
                    GroundClause::new(lits, w, ClauseOrigin::Evidence)
                })
                .collect();
            SatProblem::from_clauses(7, &ground)
        })
    }

    proptest! {
        /// Preprocessing preserves the optimum exactly: solving the
        /// reduced problem and lifting equals solving the original.
        #[test]
        fn preserves_optimum(p in arb_problem()) {
            let direct = brute_force(&p);
            let pre = preprocess(&p);
            if !pre.feasible {
                prop_assert!(!direct.feasible,
                    "preprocessing claimed infeasible on a feasible instance");
                return Ok(());
            }
            let inner = brute_force(&pre.problem);
            let lifted = pre.lift(inner);
            prop_assert_eq!(lifted.feasible, direct.feasible);
            if direct.feasible {
                prop_assert!((lifted.cost - direct.cost).abs() < 1e-9,
                    "lifted {} vs direct {}", lifted.cost, direct.cost);
                let (cost, hardv) = p.evaluate(&lifted.assignment);
                prop_assert_eq!(hardv, 0);
                prop_assert!((cost - lifted.cost).abs() < 1e-9);
            }
        }

        /// Preprocessing never grows the instance.
        #[test]
        fn never_grows(p in arb_problem()) {
            let pre = preprocess(&p);
            prop_assert!(pre.problem.len() <= p.len());
            let before: usize = p.iter().map(|c| c.lits.len()).sum();
            let after: usize = pre.problem.iter().map(|c| c.lits.len()).sum();
            prop_assert!(after <= before);
        }
    }
}
