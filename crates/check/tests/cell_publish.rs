//! Protocol model of `tecore-server`'s `SnapshotCell` publish ring.
//!
//! The real cell stores an `Arc<Snapshot>` per ring slot behind an
//! `RwLock`; here the payload is modelled as two bare atomic halves
//! (`lo`/`hi`) per slot so the checker can *see* a torn or stale
//! publication — an `Arc` clone would hide it. The model covers the
//! window the cell's contract actually promises: the writer never
//! reuses a slot until `SLOTS` publications later, so within a
//! `< SLOTS`-publication window every slot is written at most once and
//! the **release store of `current` is the only thing making the slot
//! contents visible to readers**. That is precisely the edge the
//! `cell.publish.release` mutation weakens.
//!
//! (Slot *reuse* is protected by the per-slot `RwLock` plus
//! re-validation, which is exercised against the real `SnapshotCell`
//! in `crates/server/tests/model_cell.rs`.)
//!
//! Invariants checked here, mirroring `cell.rs`'s doc contract:
//! * **no torn publish** — both payload halves of the slot `current`
//!   names agree;
//! * **no stale publish** — the payload equals the publication number
//!   the packed word names;
//! * **monotone epochs** — consecutive loads by one reader never go
//!   backwards.

#![cfg(feature = "model-check")]

use std::sync::Arc;

use tecore_check::sync::atomic::{AtomicU64, Ordering};
use tecore_check::{mutation, thread, Checker};

/// Ring size. 4 slots and 3 publications keep every slot
/// single-writer within the modelled window (slot 0 holds the initial
/// publication and is never overwritten).
const SLOTS: u64 = 4;
const SLOT_BITS: u32 = 2;

struct Slot {
    lo: AtomicU64,
    hi: AtomicU64,
}

struct Cell {
    slots: Vec<Slot>,
    /// `(pub << SLOT_BITS) | slot`, exactly like `SnapshotCell::current`.
    current: AtomicU64,
}

fn pack(p: u64) -> u64 {
    (p << SLOT_BITS) | (p % SLOTS)
}

impl Cell {
    fn new() -> Self {
        Cell {
            slots: (0..SLOTS)
                .map(|_| Slot {
                    lo: AtomicU64::named("slot.lo", 0),
                    hi: AtomicU64::named("slot.hi", 0),
                })
                .collect(),
            current: AtomicU64::named("current", pack(0)),
        }
    }

    /// Publish publication `p`: write both payload halves of the next
    /// ring slot, then advance `current` with a release store — any
    /// reader that observes the new word must observe the fully
    /// written slot.
    fn publish(&self, p: u64) {
        let s = (p % SLOTS) as usize;
        if mutation::reorder("cell.publish.before_payload") {
            // Mutated order: the word moves before the payload lands.
            self.current.store(pack(p), Ordering::Release); // ordering: (mutation path)
            self.slots[s].lo.store(p, Ordering::Relaxed);
            self.slots[s].hi.store(p, Ordering::Relaxed);
            return;
        }
        self.slots[s].lo.store(p, Ordering::Relaxed);
        self.slots[s].hi.store(p, Ordering::Relaxed);
        // ordering: the publish edge — pairs with the Acquire load in
        // `load`; `cell.publish.release` weakens it to Relaxed.
        self.current.store(
            pack(p),
            mutation::ordering("cell.publish.release", Ordering::Release),
        );
    }

    /// Load the current publication and check it is coherent.
    fn load(&self) -> u64 {
        // ordering: pairs with the publish release store.
        let cur = self.current.load(Ordering::Acquire);
        let (p, s) = (cur >> SLOT_BITS, (cur & (SLOTS - 1)) as usize);
        let lo = self.slots[s].lo.load(Ordering::Relaxed);
        let hi = self.slots[s].hi.load(Ordering::Relaxed);
        assert_eq!(lo, hi, "torn publication {p}: lo {lo} != hi {hi}");
        assert_eq!(
            lo, p,
            "stale slot behind publication {p}: payload reads {lo}"
        );
        p
    }
}

const PUBLISHES: u64 = 3;
const SEED: u64 = 0x5EED_CE11;

fn two_readers_one_writer() {
    let cell = Arc::new(Cell::new());
    let w = {
        let cell = Arc::clone(&cell);
        thread::spawn_named("writer", move || {
            for p in 1..=PUBLISHES {
                cell.publish(p);
            }
        })
    };
    let readers: Vec<_> = (0..2)
        .map(|i| {
            let cell = Arc::clone(&cell);
            thread::spawn_named(if i == 0 { "reader-0" } else { "reader-1" }, move || {
                let first = cell.load();
                let second = cell.load();
                assert!(second >= first, "epoch went backwards: {second} < {first}");
            })
        })
        .collect();
    w.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}

/// The real publish protocol passes a broad randomized exploration,
/// and the exploration is genuinely broad: at least 10k *distinct*
/// interleavings of the 2-reader/1-writer model (the issue's
/// acceptance bar — a checker that only ever sees a handful of
/// schedules proves nothing).
#[test]
fn publish_protocol_holds_across_10k_interleavings() {
    let report = Checker::new("cell-publish")
        .random(SEED, 14_000)
        .check(two_readers_one_writer);
    assert!(
        report.interleavings >= 10_000,
        "expected >= 10k distinct interleavings, explored {}",
        report.interleavings
    );
    assert_eq!(report.truncated, 0, "model has no divergent executions");
}

/// Mutation kill: weakening the publish store to Relaxed severs the
/// release edge, and the checker must catch a reader observing the new
/// word with stale (or torn) payload — with a full trace.
#[test]
fn release_to_relaxed_publish_is_killed() {
    let report = Checker::new("cell-publish-relaxed")
        .mutate("cell.publish.release")
        .random(SEED, 4_000)
        .run(two_readers_one_writer);
    let failure = report.assert_failure();
    assert!(
        failure.message.contains("stale slot") || failure.message.contains("torn publication"),
        "unexpected failure: {}",
        failure.message
    );
    assert!(
        failure.trace.contains("current") && failure.trace.contains("slot."),
        "trace must show the publish and the incoherent read:\n{}",
        failure.trace
    );
    // The reported seed replays the same interleaving deterministically.
    let seed = failure.seed.expect("bounded failure carries a seed");
    Checker::new("cell-publish-relaxed-replay")
        .mutate("cell.publish.release")
        .random(seed, 1)
        .run(two_readers_one_writer)
        .assert_failure();
}

/// Mutation kill: publishing the word before the payload lands must be
/// caught even with the release ordering intact (program-order bug,
/// not an ordering bug).
#[test]
fn publish_before_payload_is_killed() {
    let report = Checker::new("cell-publish-reordered")
        .mutate("cell.publish.before_payload")
        .random(SEED, 4_000)
        .run(two_readers_one_writer);
    let failure = report.assert_failure();
    assert!(
        failure.message.contains("stale slot") || failure.message.contains("torn publication"),
        "unexpected failure: {}",
        failure.message
    );
}
