//! Protocol model of the `tecore-server` writer loop's durability
//! contract: **an edit is ACKed only after it is in the journal**, and
//! **a FLUSH ACK means every previously journalled edit is fsynced**.
//!
//! The real writer loop drains a channel of client edits, appends each
//! to the WAL, then writes the ACK back to the client socket; FLUSH
//! fsyncs before it is acknowledged. Here the journal is an atomic
//! append counter, the fsync watermark a second atomic, and the
//! client/writer sockets are model channels, so the checker can place
//! a "crash" (an observation of the journal) at every interleaving
//! point between the ACK and the append.
//!
//! Invariant, stated from the client's side: the moment an ACK for
//! edit `i` is received, a crash-and-recover replays a journal prefix
//! that already contains edit `i` — `journal >= i`. The
//! `server.ack_before_journal` mutation swaps the append and the ACK
//! (the classic lost-durability bug) and must be killed with a trace.

#![cfg(feature = "model-check")]

use std::sync::Arc;

use tecore_check::sync::atomic::{AtomicU64, Ordering};
use tecore_check::sync::mpsc;
use tecore_check::{mutation, thread, Checker};

const EDITS: u64 = 2;

enum Req {
    Edit(u64),
    Flush,
}

struct Log {
    /// Number of edits appended to the journal (recovery replays
    /// exactly this prefix).
    journal: AtomicU64,
    /// Number of edits the last fsync made durable.
    synced: AtomicU64,
}

fn writer_loop(log: &Log, rx: &mpsc::Receiver<Req>, ack: &mpsc::Sender<u64>) {
    while let Ok(req) = rx.recv() {
        match req {
            Req::Edit(i) => {
                if mutation::reorder("server.ack_before_journal") {
                    // Mutated order: the client hears "durable" before
                    // the journal has the bytes.
                    ack.send(i).unwrap();
                    log.journal.fetch_add(1, Ordering::Relaxed);
                } else {
                    log.journal.fetch_add(1, Ordering::Relaxed);
                    // The ACK send is itself a release edge (channel
                    // sends publish the sender's writes), mirroring the
                    // socket write happening after the WAL append.
                    ack.send(i).unwrap();
                }
            }
            Req::Flush => {
                // fsync: everything journalled so far becomes durable,
                // then the barrier is acknowledged.
                let len = log.journal.load(Ordering::Relaxed);
                if mutation::reorder("server.flush_ack_before_fsync") {
                    ack.send(u64::MAX).unwrap();
                    log.synced.store(len, Ordering::Relaxed);
                } else {
                    log.synced.store(len, Ordering::Relaxed);
                    ack.send(u64::MAX).unwrap();
                }
            }
        }
    }
}

fn client_session() {
    let log = Arc::new(Log {
        journal: AtomicU64::named("journal", 0),
        synced: AtomicU64::named("synced", 0),
    });
    let (req_tx, req_rx) = mpsc::channel::<Req>();
    let (ack_tx, ack_rx) = mpsc::channel::<u64>();
    let w = {
        let log = Arc::clone(&log);
        thread::spawn_named("writer-loop", move || writer_loop(&log, &req_rx, &ack_tx))
    };
    for i in 1..=EDITS {
        req_tx.send(Req::Edit(i)).unwrap();
        let acked = ack_rx.recv().unwrap();
        assert_eq!(acked, i);
        // "Crash" here: recovery replays the journal prefix, which
        // must already hold the edit the server just called done.
        let recovered = log.journal.load(Ordering::Acquire); // ordering: pairs with the ACK release edge.
        assert!(
            recovered >= i,
            "ACKed edit {i} lost: journal holds only {recovered}"
        );
    }
    req_tx.send(Req::Flush).unwrap();
    assert_eq!(ack_rx.recv().unwrap(), u64::MAX);
    let synced = log.synced.load(Ordering::Acquire); // ordering: pairs with the FLUSH ACK release edge.
    assert!(
        synced >= EDITS,
        "FLUSH ACKed but only {synced}/{EDITS} edits fsynced"
    );
    drop(req_tx);
    w.join().unwrap();
}

/// The real ordering is exhaustively correct: every interleaving of
/// the client and the writer loop preserves journal-before-ACK and
/// fsync-before-FLUSH-ACK.
#[test]
fn ack_durability_holds_exhaustively() {
    let report = Checker::new("writer-ack").check(client_session);
    assert!(report.complete, "model small enough to exhaust");
    assert!(report.executions > 1);
}

/// Mutation kill: ACKing before the journal append loses an ACKed
/// edit on crash, and the checker must surface the interleaving.
#[test]
fn ack_before_journal_is_killed() {
    let report = Checker::new("writer-ack-reordered")
        .mutate("server.ack_before_journal")
        .run(client_session);
    let failure = report.assert_failure();
    assert!(
        failure.message.contains("lost"),
        "unexpected failure: {}",
        failure.message
    );
    assert!(
        failure.trace.contains("journal"),
        "trace must show the journal staying behind the ACK:\n{}",
        failure.trace
    );
    // The recorded schedule replays the exact losing interleaving.
    Checker::new("writer-ack-replay")
        .mutate("server.ack_before_journal")
        .replay(failure.schedule.clone())
        .run(client_session)
        .assert_failure();
}

/// Mutation kill: acknowledging FLUSH before the fsync breaks the
/// barrier contract.
#[test]
fn flush_ack_before_fsync_is_killed() {
    let report = Checker::new("writer-flush-reordered")
        .mutate("server.flush_ack_before_fsync")
        .run(client_session);
    let failure = report.assert_failure();
    assert!(
        failure.message.contains("fsynced"),
        "unexpected failure: {}",
        failure.message
    );
}
