//! Litmus tests for the model checker itself: classic weak-memory
//! shapes, lock/channel semantics, deadlock detection, and the
//! replayability guarantees. These validate that the checker *finds*
//! real relaxed-memory bugs and *excludes* outcomes forbidden by
//! release/acquire or SeqCst — the foundation the protocol models under
//! the `model-check` feature build on.

use std::sync::Arc;

use tecore_check::sync::atomic::{AtomicU64, Ordering};
use tecore_check::sync::{mpsc, Mutex, RwLock};
use tecore_check::{thread, Checker, FailureKind};

/// Message passing with Release/Acquire: the reader that observes the
/// flag must observe the data. Exhaustive and must pass.
#[test]
fn mp_release_acquire_passes() {
    let report = Checker::new("mp-ra").check(|| {
        let data = Arc::new(AtomicU64::named("data", 0));
        let flag = Arc::new(AtomicU64::named("flag", 0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn_named("writer", move || {
            d.store(42, Ordering::Relaxed);
            f.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "MP: stale data behind flag"
            );
        }
        t.join().unwrap();
    });
    assert!(report.complete, "small model must be exhaustively explored");
    assert!(report.executions > 1);
}

/// The same shape fully Relaxed: the checker MUST find the interleaving
/// where the flag is visible but the data is stale, and the trace must
/// show the stale load.
#[test]
fn mp_relaxed_fails_with_stale_read_in_trace() {
    let report = Checker::new("mp-relaxed").run(|| {
        let data = Arc::new(AtomicU64::named("data", 0));
        let flag = Arc::new(AtomicU64::named("flag", 0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn_named("writer", move || {
            d.store(42, Ordering::Relaxed);
            f.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "MP: stale data behind flag"
            );
        }
        t.join().unwrap();
    });
    let failure = report.assert_failure();
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("stale data behind flag"),
        "{}",
        failure.message
    );
    assert!(
        failure.trace.contains("[stale"),
        "trace must mark the stale read:\n{}",
        failure.trace
    );
    assert!(
        failure.trace.contains("data"),
        "trace names locations:\n{}",
        failure.trace
    );
}

/// Store buffering with SeqCst: `r1 == 0 && r2 == 0` is forbidden (the
/// checker's SC approximation must exclude it).
#[test]
fn sb_seqcst_excludes_both_zero() {
    Checker::new("sb-sc").check(|| {
        let x = Arc::new(AtomicU64::named("x", 0));
        let y = Arc::new(AtomicU64::named("y", 0));
        let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t1 = thread::spawn_named("left", move || {
            // ordering: SB litmus — SeqCst on both sides forbids r1 == r2 == 0.
            x1.store(1, Ordering::SeqCst);
            y1.load(Ordering::SeqCst)
        });
        let t2 = thread::spawn_named("right", move || {
            // ordering: SB litmus — SeqCst on both sides forbids r1 == r2 == 0.
            y2.store(1, Ordering::SeqCst);
            x2.load(Ordering::SeqCst)
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(r1 == 1 || r2 == 1, "SB under SeqCst: both-zero forbidden");
    });
}

/// Store buffering fully Relaxed: both-zero IS an allowed outcome and
/// the checker must find it.
#[test]
fn sb_relaxed_finds_both_zero() {
    let report = Checker::new("sb-relaxed").run(|| {
        let x = Arc::new(AtomicU64::named("x", 0));
        let y = Arc::new(AtomicU64::named("y", 0));
        let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t1 = thread::spawn_named("left", move || {
            x1.store(1, Ordering::Relaxed);
            y1.load(Ordering::Relaxed)
        });
        let t2 = thread::spawn_named("right", move || {
            y2.store(1, Ordering::Relaxed);
            x2.load(Ordering::Relaxed)
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(r1 == 1 || r2 == 1, "SB relaxed: found both-zero");
    });
    report.assert_failure();
}

/// ABBA lock ordering: the checker must report a deadlock naming both
/// threads, not hang.
#[test]
fn abba_deadlock_detected() {
    let report = Checker::new("abba").run(|| {
        let a = Arc::new(Mutex::named("A", ()));
        let b = Arc::new(Mutex::named("B", ()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn_named("ba", move || {
            let _gb = b2.lock().unwrap();
            let _ga = a2.lock().unwrap();
        });
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        t.join().unwrap();
    });
    let failure = report.assert_failure();
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(failure.message.contains("deadlock"), "{}", failure.message);
    assert!(
        failure.message.contains('A') && failure.message.contains('B'),
        "{}",
        failure.message
    );
}

/// Mutex mutual exclusion: a non-atomic read-modify-write under the
/// lock never loses an update (exhaustive).
#[test]
fn mutex_counter_exact() {
    Checker::new("mutex-counter").check(|| {
        let c = Arc::new(Mutex::named("counter", 0u64));
        let c2 = Arc::clone(&c);
        let t = thread::spawn_named("inc", move || {
            let mut g = c2.lock().unwrap();
            *g += 1;
        });
        {
            let mut g = c.lock().unwrap();
            *g += 1;
        }
        t.join().unwrap();
        assert_eq!(*c.lock().unwrap(), 2);
    });
}

/// RwLock: a writer updating two fields non-atomically is never
/// observed half-done by readers.
#[test]
fn rwlock_no_torn_reads() {
    Checker::new("rwlock-torn").check(|| {
        let pair = Arc::new(RwLock::named("pair", (0u64, 0u64)));
        let p2 = Arc::clone(&pair);
        let w = thread::spawn_named("writer", move || {
            let mut g = p2.write().unwrap();
            g.0 = 7;
            g.1 = 7;
        });
        {
            let g = pair.read().unwrap();
            assert_eq!(g.0, g.1, "reader saw a torn write");
        }
        w.join().unwrap();
    });
}

/// Channels: FIFO transfer, then disconnect on sender drop.
#[test]
fn channel_fifo_and_disconnect() {
    Checker::new("chan").check(|| {
        let (tx, rx) = mpsc::channel::<u64>();
        let t = thread::spawn_named("producer", move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
        assert!(rx.recv().is_err(), "sender gone: recv must disconnect");
    });
}

/// A channel send is a release edge: the payload index always finds the
/// corresponding relaxed store.
#[test]
fn channel_send_is_release_edge() {
    Checker::new("chan-release").check(|| {
        let data = Arc::new(AtomicU64::named("payload", 0));
        let (tx, rx) = mpsc::sync_channel::<u64>(1);
        let d = Arc::clone(&data);
        let t = thread::spawn_named("producer", move || {
            d.store(99, Ordering::Relaxed);
            tx.send(1).unwrap();
        });
        if rx.recv().is_ok() {
            assert_eq!(
                data.load(Ordering::Relaxed),
                99,
                "send must publish the payload"
            );
        }
        t.join().unwrap();
    });
}

/// Scoped threads borrow stack data and are fully joined by the scope.
#[test]
fn scoped_threads_borrow_and_join() {
    Checker::new("scope").check(|| {
        let total = AtomicU64::named("total", 0);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 2);
    });
}

/// Bounded mode: a failure reports a seed, and `.random(seed, 1)`
/// reproduces exactly the same failing interleaving; `.replay` with the
/// recorded schedule does too.
#[test]
fn bounded_failure_replays_from_seed_and_schedule() {
    let buggy = || {
        let data = Arc::new(AtomicU64::named("data", 0));
        let flag = Arc::new(AtomicU64::named("flag", 0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn_named("writer", move || {
            d.store(42, Ordering::Relaxed);
            f.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    };
    let report = Checker::new("bounded").random(0xC0FFEE, 500).run(buggy);
    let failure = report.assert_failure();
    let seed = failure.seed.expect("bounded failures carry a seed");
    let replayed = Checker::new("bounded-replay").random(seed, 1).run(buggy);
    let rf = replayed.assert_failure();
    assert_eq!(
        rf.schedule, failure.schedule,
        "seed replay must pin the interleaving"
    );
    let pinned = Checker::new("schedule-replay")
        .replay(failure.schedule.clone())
        .run(buggy);
    pinned.assert_failure();
}

/// The interleaving counter counts distinct traces, and truncation is
/// surfaced (a model looping at a spin point runs into the step cap
/// instead of hanging).
#[test]
fn interleavings_counted_and_truncation_reported() {
    let report = Checker::new("count").check(|| {
        let x = Arc::new(AtomicU64::named("x", 0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn_named("peer", move || {
            x2.fetch_add(1, Ordering::Relaxed);
            x2.fetch_add(1, Ordering::Relaxed);
        });
        x.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
    });
    assert!(
        report.interleavings >= 3,
        "expected several distinct interleavings, got {}",
        report.interleavings
    );
    assert_eq!(report.truncated, 0);

    let report = Checker::new("truncates").max_steps(50).run(|| {
        let stop = Arc::new(AtomicU64::named("stop", 0));
        let s2 = Arc::clone(&stop);
        let t = thread::spawn_named("spinner", move || {
            while s2.load(Ordering::Acquire) == 0 {
                // ordering: test spin loop pairs with the Release store below.
                tecore_check::hint::spin_loop();
            }
        });
        stop.store(1, Ordering::Release);
        t.join().unwrap();
    });
    assert!(
        report.failure.is_none(),
        "spin loop must truncate, not fail"
    );
    assert!(
        report.truncated > 0,
        "step cap must have truncated some executions"
    );
}

/// Outside a model run the primitives fall back to plain std behaviour
/// (this is what keeps ordinary `--features model-check` tests green).
#[test]
fn fallback_mode_outside_model() {
    let a = AtomicU64::new(5);
    assert_eq!(a.fetch_add(2, Ordering::SeqCst), 5);
    assert_eq!(a.load(Ordering::SeqCst), 7);
    let m = Mutex::new(1u32);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 2);
    let rw = RwLock::new(3u32);
    assert_eq!(*rw.read().unwrap(), 3);
    assert!(rw.try_write().is_ok());
    tecore_check::hint::spin_loop();
}
