//! Protocol model of `tecore_kg::ShardedDictionary::intern`'s
//! linearizability.
//!
//! The real interner takes a read lock on the term's shard for the hit
//! path and upgrades (drop read, take write) for a miss — **re-checking
//! under the write lock**, because another thread may have interned the
//! same term between the two locks. That re-check is what makes
//! concurrent `intern` linearizable: every caller of `intern("x")`
//! gets the same symbol, ever after.
//!
//! The model is two shards of `Vec<&str>` behind instrumented
//! `RwLock`s, symbols packed `(local << 1) | shard` exactly like
//! `shard.rs`. The `shard.intern.skip_recheck` mutation drops the
//! re-check — the classic racy upgrade — and the checker must find the
//! interleaving where one term gets two symbols.

#![cfg(feature = "model-check")]

use std::sync::Arc;

use tecore_check::sync::RwLock;
use tecore_check::{mutation, thread, Checker};

const SHARDS: usize = 2;

struct Dict {
    shards: Vec<RwLock<Vec<&'static str>>>,
}

fn shard_of(term: &str) -> usize {
    // Deterministic toy router (first byte), enough to land the
    // contended term on one shard and a bystander on the other.
    term.as_bytes().first().copied().unwrap_or(0) as usize % SHARDS
}

impl Dict {
    fn new() -> Self {
        Dict {
            shards: (0..SHARDS)
                .map(|_| RwLock::named("shard", Vec::new()))
                .collect(),
        }
    }

    fn pack(shard: usize, local: usize) -> u64 {
        ((local as u64) << 1) | shard as u64
    }

    fn intern(&self, term: &'static str) -> u64 {
        let shard = shard_of(term);
        if let Some(local) = self.shards[shard]
            .read()
            .unwrap()
            .iter()
            .position(|t| *t == term)
        {
            return Self::pack(shard, local);
        }
        let mut guard = self.shards[shard].write().unwrap();
        if !mutation::reorder("shard.intern.skip_recheck") {
            // Another thread may have won the race between our read
            // lock and this write lock.
            if let Some(local) = guard.iter().position(|t| *t == term) {
                return Self::pack(shard, local);
            }
        }
        guard.push(term);
        Self::pack(shard, guard.len() - 1)
    }

    fn resolve(&self, sym: u64) -> Option<&'static str> {
        let shard = (sym & 1) as usize;
        let local = (sym >> 1) as usize;
        self.shards[shard].read().unwrap().get(local).copied()
    }
}

fn concurrent_interns() {
    let dict = Arc::new(Dict::new());
    // Two threads race the same term; one also interns a bystander on
    // the other shard (shards must stay independent).
    let a = {
        let dict = Arc::clone(&dict);
        thread::spawn_named("intern-a", move || dict.intern("alpha"))
    };
    let b = {
        let dict = Arc::clone(&dict);
        thread::spawn_named("intern-b", move || {
            let other = dict.intern("beta");
            (dict.intern("alpha"), other)
        })
    };
    let sym_a = a.join().unwrap();
    let (sym_b, sym_other) = b.join().unwrap();
    assert_eq!(
        sym_a, sym_b,
        "intern is not linearizable: one term, two symbols"
    );
    assert_ne!(sym_a, sym_other, "distinct terms share a symbol");
    assert_eq!(dict.resolve(sym_a), Some("alpha"));
    assert_eq!(dict.resolve(sym_other), Some("beta"));
    // Idempotent ever after (the linearization point is durable).
    assert_eq!(dict.intern("alpha"), sym_a);
}

/// Exhaustive under a CHESS-style preemption bound: every schedule
/// with up to 3 involuntary context switches agrees on one symbol per
/// term (empirically, lock-upgrade races need 2).
#[test]
fn intern_is_linearizable_exhaustively() {
    let report = Checker::new("shard-intern")
        .preemptions(3)
        .check(concurrent_interns);
    assert!(report.complete, "bounded model small enough to exhaust");
    assert!(report.executions > 1);
}

/// Mutation kill: dropping the under-write-lock re-check makes the
/// upgrade racy and the checker must find the double intern.
#[test]
fn skipping_the_write_recheck_is_killed() {
    let report = Checker::new("shard-intern-racy")
        .mutate("shard.intern.skip_recheck")
        .run(concurrent_interns);
    let failure = report.assert_failure();
    assert!(
        failure.message.contains("two symbols"),
        "unexpected failure: {}",
        failure.message
    );
    assert!(
        failure.trace.contains("shard"),
        "trace must show the racing shard locks:\n{}",
        failure.trace
    );
}
