//! Protocol model of `tecore-wal` poisoning under concurrent
//! flush/checkpoint with an injected I/O failure.
//!
//! The real `Wal` poisons itself on any I/O error: the in-memory state
//! may be ahead of the durable log, so every later *write* must be
//! refused (`WalError::Poisoned`) while reads keep working. The server
//! wraps the WAL in a mutex and runs flushes (from the writer loop)
//! concurrently with checkpoints (from the compaction path), so the
//! contract under concurrency is:
//!
//! * **poison is sticky** — once any operation fails, no later
//!   operation reports success;
//! * **no silent gaps** — an operation that *did* report success
//!   before the poison is durable: the synced watermark never moves
//!   backwards and covers every success;
//! * **no deadlock** — a failure path must not leave the log mutex
//!   held or a waiter stranded (the checker's deadlock detection
//!   covers this for free).
//!
//! The `wal.flush.forget_poison` mutation models the bug the real
//! `io_poison` helper prevents: returning the error without setting
//! the sticky flag, which lets a checkpoint racing the failed flush
//! succeed on top of a log with a hole in it.

#![cfg(feature = "model-check")]

use std::sync::Arc;

use tecore_check::sync::Mutex;
use tecore_check::{mutation, thread, Checker};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WalErr {
    Poisoned,
    Io,
}

struct WalState {
    poisoned: bool,
    /// Frames appended (in memory, maybe not durable).
    appended: u64,
    /// Frames the last successful flush made durable.
    synced: u64,
    /// Injected fault: the next fsync fails.
    fail_next_fsync: bool,
}

struct Wal {
    state: Mutex<WalState>,
}

impl Wal {
    fn new(fail_next_fsync: bool) -> Self {
        Wal {
            state: Mutex::named(
                "wal",
                WalState {
                    poisoned: false,
                    appended: 0,
                    synced: 0,
                    fail_next_fsync,
                },
            ),
        }
    }

    fn append(&self) -> Result<u64, WalErr> {
        let mut g = self.state.lock().unwrap();
        if g.poisoned {
            return Err(WalErr::Poisoned);
        }
        g.appended += 1;
        Ok(g.appended)
    }

    fn flush(&self) -> Result<u64, WalErr> {
        let mut g = self.state.lock().unwrap();
        if g.poisoned {
            return Err(WalErr::Poisoned);
        }
        if g.fail_next_fsync {
            g.fail_next_fsync = false;
            if !mutation::reorder("wal.flush.forget_poison") {
                // The real `io_poison`: sticky flag set before the
                // error propagates.
                g.poisoned = true;
            }
            return Err(WalErr::Io);
        }
        g.synced = g.appended;
        Ok(g.synced)
    }

    /// Checkpoint: flush, then truncate the synced prefix. Success
    /// promises everything appended so far is durable.
    fn checkpoint(&self) -> Result<u64, WalErr> {
        let mut g = self.state.lock().unwrap();
        if g.poisoned {
            return Err(WalErr::Poisoned);
        }
        if g.fail_next_fsync {
            g.fail_next_fsync = false;
            if !mutation::reorder("wal.flush.forget_poison") {
                g.poisoned = true;
            }
            return Err(WalErr::Io);
        }
        g.synced = g.appended;
        Ok(g.synced)
    }

    fn read_state(&self) -> (bool, u64, u64) {
        let g = self.state.lock().unwrap();
        (g.poisoned, g.appended, g.synced)
    }
}

/// One writer appending+flushing races one checkpointer, with the
/// first fsync wired to fail. Whichever side hits the fault must
/// poison the log so the other side cannot report a durability
/// success that isn't true.
fn flush_vs_checkpoint(fail: bool) {
    let wal = Arc::new(Wal::new(fail));
    let flusher = {
        let wal = Arc::clone(&wal);
        thread::spawn_named("flusher", move || {
            let mut ok = Vec::new();
            for _ in 0..2 {
                if let Ok(n) = wal.append() {
                    ok.push(n);
                }
                let _ = wal.flush();
            }
            ok
        })
    };
    let checkpointer = {
        let wal = Arc::clone(&wal);
        thread::spawn_named("checkpointer", move || wal.checkpoint())
    };
    let _appended_ok = flusher.join().unwrap();
    let ckpt = checkpointer.join().unwrap();
    let (poisoned, appended, synced) = wal.read_state();
    if fail {
        // Exactly one operation consumed the injected fault, and it
        // must have left the sticky flag behind.
        assert!(poisoned, "I/O failure did not poison the log");
        // Poison is sticky: writes after the fault are refused.
        assert_eq!(wal.append(), Err(WalErr::Poisoned));
        assert_eq!(wal.flush(), Err(WalErr::Poisoned));
        assert_eq!(wal.checkpoint(), Err(WalErr::Poisoned));
    }
    // No silent gaps: a checkpoint that reported success covered every
    // frame appended before its linearization point, and the watermark
    // is never ahead of the data.
    if let Ok(n) = ckpt {
        assert!(!fail || n <= synced, "checkpoint success survived a poison");
    }
    assert!(synced <= appended, "sync watermark ahead of the log");
}

/// Fault-free baseline: flush and checkpoint compose cleanly in every
/// interleaving and nothing poisons.
#[test]
fn clean_flush_checkpoint_exhaustive() {
    let report = Checker::new("wal-clean").check(|| {
        flush_vs_checkpoint(false);
    });
    assert!(report.complete);
}

/// Injected fsync failure: every interleaving leaves the log poisoned
/// and sticky, with no deadlock on the failure path.
#[test]
fn injected_failure_always_poisons() {
    let report = Checker::new("wal-poison").check(|| {
        flush_vs_checkpoint(true);
    });
    assert!(report.complete);
    assert!(report.executions > 1);
}

/// Mutation kill: dropping the sticky flag on the error path lets the
/// race partner keep writing over the gap — the checker must find it.
#[test]
fn forgetting_to_poison_is_killed() {
    let report = Checker::new("wal-poison-forgotten")
        .mutate("wal.flush.forget_poison")
        .run(|| {
            flush_vs_checkpoint(true);
        });
    let failure = report.assert_failure();
    assert!(
        failure.message.contains("poison"),
        "unexpected failure: {}",
        failure.message
    );
}
