//! Instrumented drop-in replacements for `std::sync` primitives.
//!
//! Inside a model run every operation is a scheduling point handled by
//! the controller (the private `sched` module); atomics go through the
//! per-location store-buffer memory model, locks and channels through
//! the scheduler's blocking protocol. **Outside** a model run (or when
//! the object was created outside the current execution) every
//! primitive falls back to its plain `std` twin, so code compiled
//! against this module — e.g. `tecore-server` built with its
//! `model-check` feature — still behaves normally in ordinary tests.
//!
//! The one exception is [`mpsc`], which is model-only: channels must be
//! created inside a model closure.
//!
//! Create primitives *inside* the model closure: an object created
//! outside the current execution is invisible to the scheduler and will
//! be driven through the fallback path even when used by model threads.

use std::sync::Arc as StdArc;

pub use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

use crate::sched::{cur_ctx, Controller, Ctx};

/// Plain re-export: `Arc` needs no instrumentation (refcount ops are
/// not part of any protocol we check).
pub use std::sync::Arc;

/// Instrumented atomic integers and `Ordering`.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::sched::cur_ctx;

    macro_rules! int_atomic {
        ($(#[$doc:meta])* $Name:ident, $Std:ident, $Int:ty) => {
            $(#[$doc])*
            pub struct $Name {
                fallback: std::sync::atomic::$Std,
                model: Option<(u64, usize)>,
            }

            impl $Name {
                /// Create the atomic (registers a model location when a
                /// model execution is active on this thread).
                pub fn new(v: $Int) -> Self {
                    Self::named(stringify!($Name), v)
                }

                /// Like [`Self::new`] but with a location name shown in
                /// interleaving traces.
                pub fn named(name: &str, v: $Int) -> Self {
                    let model = cur_ctx()
                        .map(|c| (c.exec, c.ctrl.register_loc(c.me, name.to_string(), v as u64)));
                    Self {
                        fallback: std::sync::atomic::$Std::new(v),
                        model,
                    }
                }

                fn ctx(&self) -> Option<(crate::sched::Ctx, usize)> {
                    let (exec, loc) = self.model?;
                    let ctx = cur_ctx()?;
                    if ctx.exec == exec {
                        Some((ctx, loc))
                    } else {
                        None
                    }
                }

                /// Atomic load under `ord`.
                pub fn load(&self, ord: Ordering) -> $Int {
                    match self.ctx() {
                        Some((c, loc)) => c.ctrl.atomic_load(c.me, loc, ord) as $Int,
                        None => self.fallback.load(ord),
                    }
                }

                /// Atomic store under `ord`.
                pub fn store(&self, v: $Int, ord: Ordering) {
                    match self.ctx() {
                        Some((c, loc)) => c.ctrl.atomic_store(c.me, loc, v as u64, ord),
                        None => self.fallback.store(v, ord),
                    }
                }

                /// Atomic add; returns the previous value.
                pub fn fetch_add(&self, v: $Int, ord: Ordering) -> $Int {
                    match self.ctx() {
                        Some((c, loc)) => c.ctrl.atomic_rmw(c.me, loc, ord, |x| {
                            (x as $Int).wrapping_add(v) as u64
                        }) as $Int,
                        None => self.fallback.fetch_add(v, ord),
                    }
                }

                /// Atomic subtract; returns the previous value.
                pub fn fetch_sub(&self, v: $Int, ord: Ordering) -> $Int {
                    match self.ctx() {
                        Some((c, loc)) => c.ctrl.atomic_rmw(c.me, loc, ord, |x| {
                            (x as $Int).wrapping_sub(v) as u64
                        }) as $Int,
                        None => self.fallback.fetch_sub(v, ord),
                    }
                }

                /// Atomic bitwise or; returns the previous value.
                pub fn fetch_or(&self, v: $Int, ord: Ordering) -> $Int {
                    match self.ctx() {
                        Some((c, loc)) => c.ctrl.atomic_rmw(c.me, loc, ord, |x| {
                            ((x as $Int) | v) as u64
                        }) as $Int,
                        None => self.fallback.fetch_or(v, ord),
                    }
                }

                /// Atomic max; returns the previous value.
                pub fn fetch_max(&self, v: $Int, ord: Ordering) -> $Int {
                    match self.ctx() {
                        Some((c, loc)) => c.ctrl.atomic_rmw(c.me, loc, ord, |x| {
                            (x as $Int).max(v) as u64
                        }) as $Int,
                        None => self.fallback.fetch_max(v, ord),
                    }
                }

                /// Atomic swap; returns the previous value.
                pub fn swap(&self, v: $Int, ord: Ordering) -> $Int {
                    match self.ctx() {
                        Some((c, loc)) => c.ctrl.atomic_rmw(c.me, loc, ord, |_| v as u64) as $Int,
                        None => self.fallback.swap(v, ord),
                    }
                }

                /// Compare-exchange (the weak variant is modeled as
                /// strong: no spurious failures).
                pub fn compare_exchange(
                    &self,
                    current: $Int,
                    new: $Int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$Int, $Int> {
                    match self.ctx() {
                        Some((c, loc)) => c
                            .ctrl
                            .atomic_cas(c.me, loc, current as u64, new as u64, success, failure)
                            .map(|v| v as $Int)
                            .map_err(|v| v as $Int),
                        None => self.fallback.compare_exchange(current, new, success, failure),
                    }
                }

                /// See [`Self::compare_exchange`].
                pub fn compare_exchange_weak(
                    &self,
                    current: $Int,
                    new: $Int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$Int, $Int> {
                    self.compare_exchange(current, new, success, failure)
                }
            }

            impl Default for $Name {
                fn default() -> Self {
                    Self::new(0)
                }
            }

            impl std::fmt::Debug for $Name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_tuple(stringify!($Name))
                        .field(&self.load(Ordering::Relaxed))
                        .finish()
                }
            }
        };
    }

    int_atomic!(
        /// Instrumented `AtomicU64`.
        AtomicU64,
        AtomicU64,
        u64
    );
    int_atomic!(
        /// Instrumented `AtomicUsize`.
        AtomicUsize,
        AtomicUsize,
        usize
    );
    int_atomic!(
        /// Instrumented `AtomicU32`.
        AtomicU32,
        AtomicU32,
        u32
    );

    /// Instrumented `AtomicBool` (modeled as a 0/1 location).
    pub struct AtomicBool {
        inner: AtomicU64,
    }

    impl AtomicBool {
        /// Create the atomic.
        pub fn new(v: bool) -> Self {
            Self::named("AtomicBool", v)
        }

        /// Create with a trace name.
        pub fn named(name: &str, v: bool) -> Self {
            AtomicBool {
                inner: AtomicU64::named(name, v as u64),
            }
        }

        /// Atomic load.
        pub fn load(&self, ord: Ordering) -> bool {
            self.inner.load(ord) != 0
        }

        /// Atomic store.
        pub fn store(&self, v: bool, ord: Ordering) {
            self.inner.store(v as u64, ord)
        }

        /// Atomic swap; returns the previous value.
        pub fn swap(&self, v: bool, ord: Ordering) -> bool {
            self.inner.swap(v as u64, ord) != 0
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("AtomicBool")
                .field(&self.load(Ordering::Relaxed))
                .finish()
        }
    }
}

fn obj_ctx(model: &Option<(u64, usize)>) -> Option<(Ctx, usize)> {
    let (exec, id) = (*model)?;
    let ctx = cur_ctx()?;
    if ctx.exec == exec {
        Some((ctx, id))
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Instrumented `std::sync::Mutex`.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    model: Option<(u64, usize)>,
}

/// Guard returned by [`Mutex::lock`]; releasing it is a visible
/// operation in the model.
pub struct MutexGuard<'a, T> {
    // `Drop` releases the std guard first, then performs the model
    // release: no other model thread can acquire until the model-level
    // release is applied, so the real lock is always free by then.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(StdArc<Controller>, usize, usize)>,
}

impl<T> Mutex<T> {
    /// Create the mutex (registers a model lock when an execution is
    /// active on this thread).
    pub fn new(t: T) -> Self {
        Self::named("mutex", t)
    }

    /// Create with a trace name.
    pub fn named(name: &str, t: T) -> Self {
        let model = cur_ctx().map(|c| (c.exec, c.ctrl.register_lock(name.to_string())));
        Mutex {
            inner: std::sync::Mutex::new(t),
            model,
        }
    }

    /// Acquire the mutex, blocking in the model's scheduler.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match obj_ctx(&self.model) {
            Some((c, id)) => {
                c.ctrl.lock_w(c.me, id, true);
                let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                Ok(MutexGuard {
                    inner: Some(g),
                    model: Some((c.ctrl, c.me, id)),
                })
            }
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: Some(g),
                    model: None,
                }),
                Err(pe) => Err(PoisonError::new(MutexGuard {
                    inner: Some(pe.into_inner()),
                    model: None,
                })),
            },
        }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        match obj_ctx(&self.model) {
            Some((c, id)) => {
                if c.ctrl.try_lock_w(c.me, id) {
                    let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                    Ok(MutexGuard {
                        inner: Some(g),
                        model: Some((c.ctrl, c.me, id)),
                    })
                } else {
                    Err(TryLockError::WouldBlock)
                }
            }
            None => match self.inner.try_lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: Some(g),
                    model: None,
                }),
                Err(TryLockError::Poisoned(pe)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                        inner: Some(pe.into_inner()),
                        model: None,
                    })))
                }
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            },
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").field("inner", &self.inner).finish()
    }
}

impl<'a, T> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present until drop")
    }
}

impl<'a, T> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present until drop")
    }
}

impl<'a, T> Drop for MutexGuard<'a, T> {
    fn drop(&mut self) {
        // Drop the std guard first (data release), then perform the
        // model release — no other model thread can run in between, so
        // the real lock is free by the time the scheduler lets a
        // blocked thread retry.
        self.inner = None;
        if let Some((ctrl, me, id)) = self.model.take() {
            ctrl.unlock(me, id, true, std::thread::panicking());
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Instrumented `std::sync::RwLock`.
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
    model: Option<(u64, usize)>,
}

/// Shared guard from [`RwLock::read`] / [`RwLock::try_read`].
pub struct RwLockReadGuard<'a, T> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    model: Option<(StdArc<Controller>, usize, usize)>,
}

/// Exclusive guard from [`RwLock::write`] / [`RwLock::try_write`].
pub struct RwLockWriteGuard<'a, T> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    model: Option<(StdArc<Controller>, usize, usize)>,
}

impl<T> RwLock<T> {
    /// Create the lock (registers a model lock when an execution is
    /// active on this thread).
    pub fn new(t: T) -> Self {
        Self::named("rwlock", t)
    }

    /// Create with a trace name.
    pub fn named(name: &str, t: T) -> Self {
        let model = cur_ctx().map(|c| (c.exec, c.ctrl.register_lock(name.to_string())));
        RwLock {
            inner: std::sync::RwLock::new(t),
            model,
        }
    }

    fn std_read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.try_read() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(pe)) => pe.into_inner(),
            Err(TryLockError::WouldBlock) => {
                unreachable!("model read-lock held but std RwLock write-locked")
            }
        }
    }

    fn std_write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.try_write() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(pe)) => pe.into_inner(),
            Err(TryLockError::WouldBlock) => {
                unreachable!("model write-lock held but std RwLock still locked")
            }
        }
    }

    /// Acquire shared, blocking in the model's scheduler.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        match obj_ctx(&self.model) {
            Some((c, id)) => {
                c.ctrl.lock_r(c.me, id);
                Ok(RwLockReadGuard {
                    inner: Some(self.std_read()),
                    model: Some((c.ctrl, c.me, id)),
                })
            }
            None => match self.inner.read() {
                Ok(g) => Ok(RwLockReadGuard {
                    inner: Some(g),
                    model: None,
                }),
                Err(pe) => Err(PoisonError::new(RwLockReadGuard {
                    inner: Some(pe.into_inner()),
                    model: None,
                })),
            },
        }
    }

    /// Acquire exclusive, blocking in the model's scheduler.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        match obj_ctx(&self.model) {
            Some((c, id)) => {
                c.ctrl.lock_w(c.me, id, false);
                Ok(RwLockWriteGuard {
                    inner: Some(self.std_write()),
                    model: Some((c.ctrl, c.me, id)),
                })
            }
            None => match self.inner.write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    inner: Some(g),
                    model: None,
                }),
                Err(pe) => Err(PoisonError::new(RwLockWriteGuard {
                    inner: Some(pe.into_inner()),
                    model: None,
                })),
            },
        }
    }

    /// Try to acquire shared without blocking.
    pub fn try_read(&self) -> TryLockResult<RwLockReadGuard<'_, T>> {
        match obj_ctx(&self.model) {
            Some((c, id)) => {
                if c.ctrl.try_lock_r(c.me, id) {
                    Ok(RwLockReadGuard {
                        inner: Some(self.std_read()),
                        model: Some((c.ctrl, c.me, id)),
                    })
                } else {
                    Err(TryLockError::WouldBlock)
                }
            }
            None => match self.inner.try_read() {
                Ok(g) => Ok(RwLockReadGuard {
                    inner: Some(g),
                    model: None,
                }),
                Err(TryLockError::Poisoned(pe)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(RwLockReadGuard {
                        inner: Some(pe.into_inner()),
                        model: None,
                    })))
                }
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            },
        }
    }

    /// Try to acquire exclusive without blocking.
    pub fn try_write(&self) -> TryLockResult<RwLockWriteGuard<'_, T>> {
        match obj_ctx(&self.model) {
            Some((c, id)) => {
                if c.ctrl.try_lock_w(c.me, id) {
                    Ok(RwLockWriteGuard {
                        inner: Some(self.std_write()),
                        model: Some((c.ctrl, c.me, id)),
                    })
                } else {
                    Err(TryLockError::WouldBlock)
                }
            }
            None => match self.inner.try_write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    inner: Some(g),
                    model: None,
                }),
                Err(TryLockError::Poisoned(pe)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(RwLockWriteGuard {
                        inner: Some(pe.into_inner()),
                        model: None,
                    })))
                }
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            },
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock")
            .field("inner", &self.inner)
            .finish()
    }
}

impl<'a, T> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present until drop")
    }
}

impl<'a, T> Drop for RwLockReadGuard<'a, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some((ctrl, me, id)) = self.model.take() {
            ctrl.unlock(me, id, false, std::thread::panicking());
        }
    }
}

impl<'a, T> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present until drop")
    }
}

impl<'a, T> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present until drop")
    }
}

impl<'a, T> Drop for RwLockWriteGuard<'a, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some((ctrl, me, id)) = self.model.take() {
            ctrl.unlock(me, id, true, std::thread::panicking());
        }
    }
}

// ---------------------------------------------------------------------------
// mpsc (model-only)
// ---------------------------------------------------------------------------

/// Instrumented `std::sync::mpsc` — **model-only**: channels must be
/// created inside a model closure (there is no fallback path).
///
/// Semantics notes: `recv_timeout` never waits — in a model, "the
/// timeout fired" is just one more schedulable outcome, so it reports
/// `Timeout` immediately whenever the queue is empty and senders are
/// still alive. `sync_channel(0)` (rendezvous) is approximated by
/// capacity 1.
pub mod mpsc {
    use std::collections::VecDeque;
    use std::sync::Arc as StdArc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

    use crate::report::Event;
    use crate::sched::{cur_ctx, view_join, BlockedOn, Controller, Ctx};

    struct Core<T> {
        vals: std::sync::Mutex<VecDeque<T>>,
        ctrl: StdArc<Controller>,
        exec: u64,
        chan: usize,
    }

    impl<T> Core<T> {
        fn ctx(&self) -> Ctx {
            let ctx = cur_ctx().expect("tecore_check::sync::mpsc used outside a model run");
            assert_eq!(
                ctx.exec, self.exec,
                "tecore_check::sync::mpsc channel used outside the execution that created it"
            );
            ctx
        }

        fn push(&self, t: T) {
            self.vals
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(t);
        }

        fn pop(&self) -> Option<T> {
            self.vals
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        core: StdArc<Core<T>>,
    }

    /// Sending half of a bounded channel.
    pub struct SyncSender<T> {
        core: StdArc<Core<T>>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        core: StdArc<Core<T>>,
    }

    fn new_core<T>(name: &str, cap: Option<usize>) -> StdArc<Core<T>> {
        let ctx = cur_ctx().expect("tecore_check::sync::mpsc channels are model-only");
        let chan = ctx.ctrl.register_chan(name.to_string(), cap);
        StdArc::new(Core {
            vals: std::sync::Mutex::new(VecDeque::new()),
            ctrl: ctx.ctrl,
            exec: ctx.exec,
            chan,
        })
    }

    /// Unbounded channel (model-only).
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let core = new_core("chan", None);
        (
            Sender {
                core: StdArc::clone(&core),
            },
            Receiver { core },
        )
    }

    /// Bounded channel (model-only; capacity 0 behaves as 1).
    pub fn sync_channel<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        let core = new_core("sync_chan", Some(cap.max(1)));
        (
            SyncSender {
                core: StdArc::clone(&core),
            },
            Receiver { core },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `t`; fails when the receiver is gone.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let ctx = self.core.ctx();
            let chan = self.core.chan;
            let mut slot = Some(t);
            self.core.ctrl.visible(ctx.me, |g| {
                if !g.chans[chan].recv_alive {
                    g.push_ev(ctx.me, Event::Send { chan, ok: false });
                    return Err(SendError(slot.take().expect("send slot")));
                }
                let view = g.threads[ctx.me].view.clone();
                g.chans[chan].views.push_back(view);
                self.core.push(slot.take().expect("send slot"));
                g.wake(|b| matches!(b, BlockedOn::ChanRecv(x) if *x == chan));
                g.push_ev(ctx.me, Event::Send { chan, ok: true });
                Ok(())
            })
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let chan = self.core.chan;
            self.core.ctrl.quiet(|g| g.chans[chan].senders += 1);
            Sender {
                core: StdArc::clone(&self.core),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let chan = self.core.chan;
            self.core.ctrl.quiet(|g| {
                g.chans[chan].senders = g.chans[chan].senders.saturating_sub(1);
                if g.chans[chan].senders == 0 {
                    g.wake(|b| matches!(b, BlockedOn::ChanRecv(x) if *x == chan));
                }
            });
        }
    }

    impl<T> SyncSender<T> {
        /// Enqueue `t`, blocking (in the scheduler) while the channel
        /// is full.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let ctx = self.core.ctx();
            let chan = self.core.chan;
            let mut slot = Some(t);
            self.core
                .ctrl
                .block_on(ctx.me, BlockedOn::ChanSend(chan), |g| {
                    if !g.chans[chan].recv_alive {
                        g.push_ev(ctx.me, Event::Send { chan, ok: false });
                        return Some(Err(SendError(slot.take().expect("send slot"))));
                    }
                    let cap = g.chans[chan].cap.unwrap_or(usize::MAX);
                    if g.chans[chan].views.len() < cap {
                        let view = g.threads[ctx.me].view.clone();
                        g.chans[chan].views.push_back(view);
                        self.core.push(slot.take().expect("send slot"));
                        g.wake(|b| matches!(b, BlockedOn::ChanRecv(x) if *x == chan));
                        g.push_ev(ctx.me, Event::Send { chan, ok: true });
                        Some(Ok(()))
                    } else {
                        None
                    }
                })
        }

        /// Non-blocking send.
        pub fn try_send(&self, t: T) -> Result<(), TrySendError<T>> {
            let ctx = self.core.ctx();
            let chan = self.core.chan;
            let mut slot = Some(t);
            self.core.ctrl.visible(ctx.me, |g| {
                if !g.chans[chan].recv_alive {
                    g.push_ev(ctx.me, Event::Send { chan, ok: false });
                    return Err(TrySendError::Disconnected(slot.take().expect("send slot")));
                }
                let cap = g.chans[chan].cap.unwrap_or(usize::MAX);
                if g.chans[chan].views.len() < cap {
                    let view = g.threads[ctx.me].view.clone();
                    g.chans[chan].views.push_back(view);
                    self.core.push(slot.take().expect("send slot"));
                    g.wake(|b| matches!(b, BlockedOn::ChanRecv(x) if *x == chan));
                    g.push_ev(ctx.me, Event::Send { chan, ok: true });
                    Ok(())
                } else {
                    Err(TrySendError::Full(slot.take().expect("send slot")))
                }
            })
        }
    }

    impl<T> Clone for SyncSender<T> {
        fn clone(&self) -> Self {
            let chan = self.core.chan;
            self.core.ctrl.quiet(|g| g.chans[chan].senders += 1);
            SyncSender {
                core: StdArc::clone(&self.core),
            }
        }
    }

    impl<T> Drop for SyncSender<T> {
        fn drop(&mut self) {
            let chan = self.core.chan;
            self.core.ctrl.quiet(|g| {
                g.chans[chan].senders = g.chans[chan].senders.saturating_sub(1);
                if g.chans[chan].senders == 0 {
                    g.wake(|b| matches!(b, BlockedOn::ChanRecv(x) if *x == chan));
                }
            });
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue, blocking (in the scheduler) while empty; fails once
        /// all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let ctx = self.core.ctx();
            let chan = self.core.chan;
            self.core
                .ctrl
                .block_on(ctx.me, BlockedOn::ChanRecv(chan), |g| {
                    if let Some(view) = g.chans[chan].views.pop_front() {
                        view_join(&mut g.threads[ctx.me].view, &view);
                        g.wake(|b| matches!(b, BlockedOn::ChanSend(x) if *x == chan));
                        g.push_ev(ctx.me, Event::Recv { chan, ok: true });
                        Some(Ok(self.core.pop().expect("value behind view")))
                    } else if g.chans[chan].senders == 0 {
                        g.push_ev(ctx.me, Event::Recv { chan, ok: false });
                        Some(Err(RecvError))
                    } else {
                        None
                    }
                })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let ctx = self.core.ctx();
            let chan = self.core.chan;
            self.core.ctrl.visible(ctx.me, |g| {
                if let Some(view) = g.chans[chan].views.pop_front() {
                    view_join(&mut g.threads[ctx.me].view, &view);
                    g.wake(|b| matches!(b, BlockedOn::ChanSend(x) if *x == chan));
                    g.push_ev(ctx.me, Event::Recv { chan, ok: true });
                    Ok(self.core.pop().expect("value behind view"))
                } else if g.chans[chan].senders == 0 {
                    g.push_ev(ctx.me, Event::Recv { chan, ok: false });
                    Err(TryRecvError::Disconnected)
                } else {
                    g.push_ev(ctx.me, Event::Recv { chan, ok: false });
                    Err(TryRecvError::Empty)
                }
            })
        }

        /// Model semantics: the timeout "fires" immediately whenever
        /// the queue is empty — an always-possible outcome the
        /// scheduler should explore, not a wall-clock wait.
        pub fn recv_timeout(&self, _timeout: Duration) -> Result<T, RecvTimeoutError> {
            match self.try_recv() {
                Ok(v) => Ok(v),
                Err(TryRecvError::Disconnected) => Err(RecvTimeoutError::Disconnected),
                Err(TryRecvError::Empty) => Err(RecvTimeoutError::Timeout),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let chan = self.core.chan;
            self.core.ctrl.quiet(|g| {
                g.chans[chan].recv_alive = false;
                g.wake(|b| matches!(b, BlockedOn::ChanSend(x) if *x == chan));
            });
        }
    }
}
