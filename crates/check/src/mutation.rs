//! Mutation sites: deliberately-weakenable points that prove the
//! checker has teeth.
//!
//! Production code (or a protocol model mirroring it) tags an ordering
//! with a site name:
//!
//! ```ignore
//! cell.store(next, mutation::ordering("cell.publish.release", Ordering::Release));
//! ```
//!
//! Normally the tag is a no-op. A mutation test activates the site with
//! [`crate::Checker::mutate`] (or the `TECORE_CHECK_MUTATE` environment
//! variable, comma-separated) and asserts that the model checker now
//! *fails* with an interleaving trace — if it still passes, the checker
//! would also miss the real bug.

use std::sync::atomic::Ordering;
use std::sync::OnceLock;

use crate::sched::cur_ctx;

fn env_sites() -> &'static [String] {
    static SITES: OnceLock<Vec<String>> = OnceLock::new();
    SITES.get_or_init(|| {
        std::env::var("TECORE_CHECK_MUTATE")
            .ok()
            .map(|v| {
                v.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default()
    })
}

/// Is the mutation site active? Inside a model run this consults the
/// running [`crate::Checker`]'s mutation set; outside, the
/// `TECORE_CHECK_MUTATE` environment variable.
pub fn enabled(site: &str) -> bool {
    if let Some(ctx) = cur_ctx() {
        ctx.ctrl.muts.iter().any(|m| m == site)
    } else {
        env_sites().iter().any(|m| m == site)
    }
}

/// Weaken `ord` to `Relaxed` when `site` is active; otherwise return it
/// unchanged.
pub fn ordering(site: &str, ord: Ordering) -> Ordering {
    if enabled(site) {
        Ordering::Relaxed
    } else {
        ord
    }
}

/// Flip a boolean step when `site` is active — used to model statement
/// reorderings (e.g. ACK-before-journal) rather than ordering
/// weakenings.
pub fn reorder(site: &str) -> bool {
    enabled(site)
}
