//! Instrumented `std::hint`: in a model run, `spin_loop` is a pure
//! scheduling point (the canonical place for retry loops to let the
//! scheduler interleave other threads); outside it maps to the real
//! spin hint.

use crate::report::Event;
use crate::sched::cur_ctx;

/// Scheduling point inside a model run; `std::hint::spin_loop` outside.
pub fn spin_loop() {
    if let Some(ctx) = cur_ctx() {
        let me = ctx.me;
        ctx.ctrl.visible(me, |g| {
            g.push_ev(me, Event::SpinLoop);
        });
    } else {
        std::hint::spin_loop();
    }
}
