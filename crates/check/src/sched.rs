//! The controlled scheduler and execution explorer.
//!
//! One [`Controller`] exists per *execution* (one run of the model
//! closure). Model threads are real OS threads, but the controller's
//! mutex + condvar ensure exactly one is ever running model code: every
//! instrumented operation calls [`Controller::yield_point`], which picks
//! the next thread to perform a visible operation (a recorded branch),
//! parks the current thread if it was not chosen, and wakes the chosen
//! one. Blocking operations ([`Controller::block_on`]) mark the thread
//! blocked and re-try their operation each time they are rescheduled;
//! when no runnable thread remains the execution is reported as a
//! deadlock with its full trace.
//!
//! The [`Checker`] drives executions: depth-first over the branch tree
//! (exhaustive mode), seeded-random (bounded mode), or pinned to a
//! recorded decision sequence (replay mode).

use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

use crate::report::{render_trace, trace_hash, Event, Failure, FailureKind, Report, TraceEv};

// ---------------------------------------------------------------------------
// Views: per-thread / per-message vector clocks over atomic locations.
// ---------------------------------------------------------------------------

/// A view maps location index -> newest store timestamp known. Missing
/// entries mean "timestamp 0" (the initial store is always visible).
pub(crate) type View = Vec<u64>;

pub(crate) fn view_get(v: &View, loc: usize) -> u64 {
    v.get(loc).copied().unwrap_or(0)
}

pub(crate) fn view_set(v: &mut View, loc: usize, ts: u64) {
    if v.len() <= loc {
        v.resize(loc + 1, 0);
    }
    if v[loc] < ts {
        v[loc] = ts;
    }
}

pub(crate) fn view_join(into: &mut View, other: &View) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (i, &ts) in other.iter().enumerate() {
        if into[i] < ts {
            into[i] = ts;
        }
    }
}

fn view_single(loc: usize, ts: u64) -> View {
    let mut v = vec![0; loc + 1];
    v[loc] = ts;
    v
}

fn is_release(ord: StdOrdering) -> bool {
    matches!(
        ord,
        StdOrdering::Release | StdOrdering::AcqRel | StdOrdering::SeqCst
    )
}

fn is_acquire(ord: StdOrdering) -> bool {
    matches!(
        ord,
        StdOrdering::Acquire | StdOrdering::AcqRel | StdOrdering::SeqCst
    )
}

// ---------------------------------------------------------------------------
// Execution state.
// ---------------------------------------------------------------------------

/// One store in a location's history. `msg` is the view a reader joins
/// when it acquires this store (the writer's full view for release-ish
/// stores, just the store itself for relaxed ones).
pub(crate) struct Store {
    pub(crate) val: u64,
    pub(crate) msg: View,
}

pub(crate) struct LocState {
    pub(crate) name: String,
    pub(crate) stores: Vec<Store>,
}

pub(crate) struct LockSt {
    pub(crate) name: String,
    pub(crate) writer: Option<usize>,
    pub(crate) readers: usize,
    /// Release view: joined by every acquirer, merged on every release.
    pub(crate) sync: View,
}

pub(crate) struct ChanSt {
    pub(crate) name: String,
    /// One release-view per queued value (value payloads live in the
    /// channel object itself; both queues move in lockstep under the
    /// controller's state lock).
    pub(crate) views: VecDeque<View>,
    pub(crate) senders: usize,
    pub(crate) recv_alive: bool,
    pub(crate) cap: Option<usize>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum BlockedOn {
    Lock(usize),
    RLock(usize),
    WLock(usize),
    ChanRecv(usize),
    ChanSend(usize),
    Join(usize),
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    Blocked(BlockedOn),
    Finished,
}

pub(crate) struct ThreadSt {
    pub(crate) name: String,
    pub(crate) status: Status,
    pub(crate) view: View,
}

/// One recorded scheduling/data decision with `n` alternatives.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Branch {
    n: u32,
    chosen: u32,
}

pub(crate) enum Decider {
    Dfs { path: Vec<Branch>, pos: usize },
    Rng(u64),
    Replay { sched: Vec<u32>, pos: usize },
}

pub(crate) struct ExecState {
    pub(crate) threads: Vec<ThreadSt>,
    pub(crate) active: usize,
    pub(crate) mem: Vec<LocState>,
    pub(crate) locks: Vec<LockSt>,
    pub(crate) chans: Vec<ChanSt>,
    /// SeqCst approximation: per-location floor every SeqCst access
    /// joins into / reads from.
    pub(crate) sc: View,
    pub(crate) trace: Vec<TraceEv>,
    pub(crate) choices: Vec<u32>,
    steps: usize,
    max_steps: usize,
    pub(crate) truncated: bool,
    pub(crate) abort: bool,
    pub(crate) failure: Option<Failure>,
    pub(crate) decider: Decider,
    preemptions: usize,
    preemption_bound: Option<usize>,
    execution: u64,
    exec_seed: Option<u64>,
}

impl ExecState {
    fn new(
        decider: Decider,
        max_steps: usize,
        preemption_bound: Option<usize>,
        execution: u64,
        exec_seed: Option<u64>,
    ) -> Self {
        ExecState {
            threads: vec![ThreadSt {
                name: "main".to_string(),
                status: Status::Runnable,
                view: Vec::new(),
            }],
            active: 0,
            mem: Vec::new(),
            locks: Vec::new(),
            chans: Vec::new(),
            sc: Vec::new(),
            trace: Vec::new(),
            choices: Vec::new(),
            steps: 0,
            max_steps,
            truncated: false,
            abort: false,
            failure: None,
            decider,
            preemptions: 0,
            preemption_bound,
            execution,
            exec_seed,
        }
    }

    pub(crate) fn wake(&mut self, pred: impl Fn(&BlockedOn) -> bool) {
        for t in &mut self.threads {
            if let Status::Blocked(b) = &t.status {
                if pred(b) {
                    t.status = Status::Runnable;
                }
            }
        }
    }

    pub(crate) fn push_ev(&mut self, thread: usize, ev: Event) {
        self.trace.push(TraceEv { thread, ev });
    }

    fn fail(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            let thread_names: Vec<String> = self.threads.iter().map(|t| t.name.clone()).collect();
            let loc_names: Vec<String> = self.mem.iter().map(|l| l.name.clone()).collect();
            let lock_names: Vec<String> = self.locks.iter().map(|l| l.name.clone()).collect();
            let chan_names: Vec<String> = self.chans.iter().map(|c| c.name.clone()).collect();
            let trace = render_trace(
                &self.trace,
                &thread_names,
                &loc_names,
                &lock_names,
                &chan_names,
            );
            self.failure = Some(Failure {
                kind,
                message,
                trace,
                execution: self.execution,
                schedule: self.choices.clone(),
                seed: self.exec_seed,
            });
        }
        self.abort = true;
    }
}

// ---------------------------------------------------------------------------
// Thread-local context: which controller/execution/thread am I?
// ---------------------------------------------------------------------------

/// Token panicked with to unwind model threads when an execution aborts.
pub(crate) struct Abort;

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) ctrl: Arc<Controller>,
    pub(crate) exec: u64,
    pub(crate) me: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn cur_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Suppress default panic output for model threads: panics inside a
/// model are captured, turned into [`Failure`]s and re-rendered with
/// their interleaving trace, so the default hook would only add noise
/// (aborting executions unwind via panics as well).
fn install_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_model = CTX.with(|c| c.borrow().is_some());
            if in_model || info.payload().is::<Abort>() {
                return;
            }
            prev(info);
        }));
    });
}

fn payload_msg(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    if x == 0 {
        0x9e37_79b9_7f4a_7c15
    } else {
        x
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Controller: one per execution.
// ---------------------------------------------------------------------------

/// Coordinates the model threads of a single execution. See the module
/// docs for the scheduling protocol.
pub(crate) struct Controller {
    state: Mutex<ExecState>,
    cv: Condvar,
    /// Mutation sites active for this run (see [`crate::mutation`]).
    pub(crate) muts: Vec<String>,
    /// Globally unique execution id; instrumented objects remember the
    /// id they were created under and fall back to plain `std`
    /// behaviour when used outside it.
    pub(crate) exec_id: u64,
}

fn next_exec_id() -> u64 {
    static NEXT: StdAtomicU64 = StdAtomicU64::new(1);
    NEXT.fetch_add(1, StdOrdering::Relaxed)
}

impl Controller {
    fn new(state: ExecState, muts: Vec<String>) -> Self {
        Controller {
            state: Mutex::new(state),
            cv: Condvar::new(),
            muts,
            exec_id: next_exec_id(),
        }
    }

    pub(crate) fn st(&self) -> MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait_cv<'a>(&'a self, g: MutexGuard<'a, ExecState>) -> MutexGuard<'a, ExecState> {
        self.cv.wait(g).unwrap_or_else(|e| e.into_inner())
    }

    /// Draw the next decision among `n` alternatives.
    pub(crate) fn choose(&self, g: &mut ExecState, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let c = if n == 1 {
            // Trivial branch: recorded in `choices` (so replay schedules
            // stay aligned) but never consulted by the decider.
            if let Decider::Replay { pos, .. } = &mut g.decider {
                *pos += 1;
            }
            0
        } else {
            match &mut g.decider {
                Decider::Dfs { path, pos } => {
                    let c = if *pos < path.len() {
                        (path[*pos].chosen as usize).min(n - 1)
                    } else {
                        path.push(Branch {
                            n: n as u32,
                            chosen: 0,
                        });
                        0
                    };
                    *pos += 1;
                    c
                }
                Decider::Rng(s) => {
                    *s = xorshift(*s);
                    (*s % n as u64) as usize
                }
                Decider::Replay { sched, pos } => {
                    let c = sched.get(*pos).copied().unwrap_or(0) as usize;
                    *pos += 1;
                    c.min(n - 1)
                }
            }
        };
        g.choices.push(c as u32);
        c
    }

    /// Pick the next active thread. `me_runnable` is false when the
    /// caller just blocked or finished. Sets `abort` + a deadlock
    /// failure when nothing is runnable but threads are still blocked.
    fn schedule_next(&self, g: &mut ExecState, me: usize, me_runnable: bool) {
        let run: Vec<usize> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if run.is_empty() {
            if g.threads.iter().all(|t| t.status == Status::Finished) {
                g.active = usize::MAX;
                return;
            }
            let mut msg = String::from("deadlock: no runnable thread;");
            for (i, t) in g.threads.iter().enumerate() {
                if let Status::Blocked(b) = &t.status {
                    let what = match b {
                        BlockedOn::Lock(l) => format!("mutex '{}'", g.locks[*l].name),
                        BlockedOn::RLock(l) => format!("read-lock '{}'", g.locks[*l].name),
                        BlockedOn::WLock(l) => format!("write-lock '{}'", g.locks[*l].name),
                        BlockedOn::ChanRecv(c) => format!("recv on '{}'", g.chans[*c].name),
                        BlockedOn::ChanSend(c) => format!("send on '{}'", g.chans[*c].name),
                        BlockedOn::Join(t2) => format!("join of t{t2}"),
                    };
                    msg.push_str(&format!(" t{} '{}' waits on {};", i, t.name, what));
                }
            }
            g.fail(FailureKind::Deadlock, msg);
            return;
        }
        let opts = match g.preemption_bound {
            Some(b) if me_runnable && g.preemptions >= b => vec![me],
            _ => run,
        };
        let idx = self.choose(g, opts.len());
        let next = opts[idx];
        if me_runnable && next != me {
            g.preemptions += 1;
        }
        g.active = next;
    }

    fn abort_unwind(&self, g: MutexGuard<'_, ExecState>) -> ! {
        self.cv.notify_all();
        drop(g);
        panic_any(Abort)
    }

    /// Block until this thread is the active one (or the execution
    /// aborts, in which case it unwinds).
    fn wait_active<'a>(
        &'a self,
        mut g: MutexGuard<'a, ExecState>,
        me: usize,
    ) -> MutexGuard<'a, ExecState> {
        loop {
            if g.abort {
                self.abort_unwind(g);
            }
            if g.active == me {
                return g;
            }
            g = self.wait_cv(g);
        }
    }

    /// The scheduling point before every visible operation: charge a
    /// step, pick who runs next, park if it is not us.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut g = self.st();
        if g.abort {
            self.abort_unwind(g);
        }
        g.steps += 1;
        if g.steps > g.max_steps {
            g.truncated = true;
            g.abort = true;
            self.abort_unwind(g);
        }
        self.schedule_next(&mut g, me, true);
        if g.abort {
            self.abort_unwind(g);
        }
        if g.active != me {
            self.cv.notify_all();
            g = self.wait_active(g, me);
        }
        drop(g);
    }

    /// Perform a non-blocking visible operation: yield, then apply `f`
    /// atomically under the state lock.
    pub(crate) fn visible<R>(&self, me: usize, f: impl FnOnce(&mut ExecState) -> R) -> R {
        self.yield_point(me);
        let mut g = self.st();
        if g.abort {
            self.abort_unwind(g);
        }
        let r = f(&mut g);
        self.cv.notify_all();
        r
    }

    /// Apply `f` without a scheduling point and without unwinding on
    /// abort — safe to call from `Drop` impls during unwinding.
    pub(crate) fn quiet(&self, f: impl FnOnce(&mut ExecState)) {
        let mut g = self.st();
        if g.abort {
            return;
        }
        f(&mut g);
        self.cv.notify_all();
    }

    /// Perform a blocking operation: retry `try_op` each time this
    /// thread is scheduled, parking as `on` in between.
    pub(crate) fn block_on<R>(
        &self,
        me: usize,
        on: BlockedOn,
        mut try_op: impl FnMut(&mut ExecState) -> Option<R>,
    ) -> R {
        self.yield_point(me);
        let mut g = self.st();
        loop {
            if g.abort {
                self.abort_unwind(g);
            }
            if let Some(r) = try_op(&mut g) {
                self.cv.notify_all();
                return r;
            }
            g.threads[me].status = Status::Blocked(on.clone());
            self.schedule_next(&mut g, me, false);
            if g.abort {
                self.abort_unwind(g);
            }
            self.cv.notify_all();
            g = self.wait_active(g, me);
        }
    }

    // -- thread lifecycle ---------------------------------------------------

    /// Register a child thread (visible op on the parent); the child
    /// inherits the parent's view (spawn is a release edge).
    pub(crate) fn register_thread(&self, parent: usize, name: String) -> usize {
        self.visible(parent, |g| {
            let view = g.threads[parent].view.clone();
            let id = g.threads.len();
            g.threads.push(ThreadSt {
                name,
                status: Status::Runnable,
                view,
            });
            g.push_ev(parent, Event::Spawn { child: id });
            id
        })
    }

    /// First scheduling of a freshly spawned thread.
    pub(crate) fn wait_first(&self, me: usize) {
        let g = self.st();
        let g = self.wait_active(g, me);
        drop(g);
    }

    /// Mark a thread finished, wake its joiners, hand off the schedule.
    pub(crate) fn finish_thread(&self, me: usize) {
        let mut g = self.st();
        g.threads[me].status = Status::Finished;
        if g.abort {
            self.cv.notify_all();
            return;
        }
        g.push_ev(me, Event::Finished);
        g.wake(|b| matches!(b, BlockedOn::Join(t) if *t == me));
        self.schedule_next(&mut g, me, false);
        self.cv.notify_all();
    }

    /// Record a panic unwinding *through* (not out of) a model thread —
    /// used by `thread::scope` so children can abort before the real
    /// `std` scope tries to join them. Does not mark the thread
    /// finished; the payload keeps propagating.
    pub(crate) fn abort_with_panic(&self, me: usize, p: &(dyn Any + Send)) {
        let mut g = self.st();
        if !p.is::<Abort>() {
            let msg = format!(
                "thread t{} '{}' panicked: {}",
                me,
                g.threads[me].name,
                payload_msg(p)
            );
            g.fail(FailureKind::Panic, msg);
        }
        g.abort = true;
        self.cv.notify_all();
    }

    /// A thread unwound: either an abort (quietly finish) or a real
    /// panic (record the failure and abort the execution).
    pub(crate) fn thread_panicked(&self, me: usize, p: Box<dyn Any + Send>) {
        let mut g = self.st();
        if !p.is::<Abort>() {
            let msg = format!(
                "thread t{} '{}' panicked: {}",
                me,
                g.threads[me].name,
                payload_msg(p.as_ref())
            );
            g.fail(FailureKind::Panic, msg);
        }
        g.abort = true;
        g.threads[me].status = Status::Finished;
        self.cv.notify_all();
    }

    /// Model-join: block until `child` finishes, then acquire its view.
    pub(crate) fn join_thread(&self, me: usize, child: usize) {
        self.block_on(me, BlockedOn::Join(child), |g| {
            if g.threads[child].status == Status::Finished {
                let cv = g.threads[child].view.clone();
                view_join(&mut g.threads[me].view, &cv);
                g.push_ev(me, Event::Join { child });
                Some(())
            } else {
                None
            }
        })
    }

    /// Wait (on the runner thread) until every model thread finished.
    fn drive(&self) {
        let mut g = self.st();
        loop {
            if g.threads.iter().all(|t| t.status == Status::Finished) {
                return;
            }
            g = self.wait_cv(g);
        }
    }

    // -- atomic memory ------------------------------------------------------

    /// Register an atomic location (not a scheduling point; creation is
    /// ordinary data flow). The initial store carries the creator's view.
    pub(crate) fn register_loc(&self, me: usize, name: String, init: u64) -> usize {
        let mut g = self.st();
        let loc = g.mem.len();
        let mut msg = g.threads[me].view.clone();
        view_set(&mut msg, loc, 0);
        view_set(&mut g.threads[me].view, loc, 0);
        g.mem.push(LocState {
            name,
            stores: vec![Store { val: init, msg }],
        });
        loc
    }

    pub(crate) fn atomic_store(&self, me: usize, loc: usize, val: u64, ord: StdOrdering) {
        self.visible(me, |g| {
            let ts = g.mem[loc].stores.len() as u64;
            view_set(&mut g.threads[me].view, loc, ts);
            let msg = if is_release(ord) {
                g.threads[me].view.clone()
            } else {
                view_single(loc, ts)
            };
            if ord == StdOrdering::SeqCst {
                let v = g.threads[me].view.clone();
                view_join(&mut g.sc, &v);
            }
            g.mem[loc].stores.push(Store { val, msg });
            g.push_ev(me, Event::Store { loc, val, ord, ts });
        })
    }

    pub(crate) fn atomic_load(&self, me: usize, loc: usize, ord: StdOrdering) -> u64 {
        self.visible(me, |g| {
            let latest = (g.mem[loc].stores.len() - 1) as u64;
            let mut floor = view_get(&g.threads[me].view, loc);
            if ord == StdOrdering::SeqCst {
                floor = floor.max(view_get(&g.sc, loc));
            }
            // Candidate stores are those not obsolete under the view;
            // index 0 = the newest (DFS explores SC-like runs first).
            let n = (latest - floor + 1) as usize;
            let k = self.choose(g, n);
            let ts = latest - k as u64;
            let (val, msg) = {
                let s = &g.mem[loc].stores[ts as usize];
                (
                    s.val,
                    if is_acquire(ord) {
                        Some(s.msg.clone())
                    } else {
                        None
                    },
                )
            };
            view_set(&mut g.threads[me].view, loc, ts);
            if let Some(m) = msg {
                view_join(&mut g.threads[me].view, &m);
            }
            g.push_ev(
                me,
                Event::Load {
                    loc,
                    val,
                    ord,
                    ts,
                    latest,
                },
            );
            val
        })
    }

    /// Read-modify-write: always reads the latest store (RMW atomicity)
    /// and extends its release sequence (`msg` carries the previous
    /// store's view forward).
    pub(crate) fn atomic_rmw(
        &self,
        me: usize,
        loc: usize,
        ord: StdOrdering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        self.visible(me, |g| {
            let ts = g.mem[loc].stores.len() as u64;
            let (old, mut msg) = {
                let prev = &g.mem[loc].stores[ts as usize - 1];
                (prev.val, prev.msg.clone())
            };
            if is_acquire(ord) {
                let m = msg.clone();
                view_join(&mut g.threads[me].view, &m);
            }
            view_set(&mut g.threads[me].view, loc, ts);
            view_set(&mut msg, loc, ts);
            if is_release(ord) {
                let v = g.threads[me].view.clone();
                view_join(&mut msg, &v);
            }
            if ord == StdOrdering::SeqCst {
                let v = g.threads[me].view.clone();
                view_join(&mut g.sc, &v);
            }
            let new = f(old);
            g.mem[loc].stores.push(Store { val: new, msg });
            g.push_ev(me, Event::Rmw { loc, old, new, ord });
            old
        })
    }

    pub(crate) fn atomic_cas(
        &self,
        me: usize,
        loc: usize,
        current: u64,
        new: u64,
        success: StdOrdering,
        failure: StdOrdering,
    ) -> Result<u64, u64> {
        self.visible(me, |g| {
            let ts = g.mem[loc].stores.len() as u64;
            let (old, prev_msg) = {
                let prev = &g.mem[loc].stores[ts as usize - 1];
                (prev.val, prev.msg.clone())
            };
            if old == current {
                let mut msg = prev_msg;
                if is_acquire(success) {
                    let m = msg.clone();
                    view_join(&mut g.threads[me].view, &m);
                }
                view_set(&mut g.threads[me].view, loc, ts);
                view_set(&mut msg, loc, ts);
                if is_release(success) {
                    let v = g.threads[me].view.clone();
                    view_join(&mut msg, &v);
                }
                if success == StdOrdering::SeqCst {
                    let v = g.threads[me].view.clone();
                    view_join(&mut g.sc, &v);
                }
                g.mem[loc].stores.push(Store { val: new, msg });
                g.push_ev(
                    me,
                    Event::Rmw {
                        loc,
                        old,
                        new,
                        ord: success,
                    },
                );
                Ok(old)
            } else {
                // A failed CAS is a load of the latest store.
                if is_acquire(failure) {
                    view_join(&mut g.threads[me].view, &prev_msg);
                }
                view_set(&mut g.threads[me].view, loc, ts - 1);
                g.push_ev(
                    me,
                    Event::CasFail {
                        loc,
                        expected: current,
                        actual: old,
                    },
                );
                Err(old)
            }
        })
    }

    // -- locks --------------------------------------------------------------

    pub(crate) fn register_lock(&self, name: String) -> usize {
        let mut g = self.st();
        let id = g.locks.len();
        g.locks.push(LockSt {
            name,
            writer: None,
            readers: 0,
            sync: Vec::new(),
        });
        id
    }

    pub(crate) fn lock_w(&self, me: usize, lock: usize, mutex: bool) {
        let on = if mutex {
            BlockedOn::Lock(lock)
        } else {
            BlockedOn::WLock(lock)
        };
        self.block_on(me, on, |g| {
            if g.locks[lock].writer.is_none() && g.locks[lock].readers == 0 {
                g.locks[lock].writer = Some(me);
                let s = g.locks[lock].sync.clone();
                view_join(&mut g.threads[me].view, &s);
                g.push_ev(me, Event::LockAcq { lock, write: true });
                Some(())
            } else {
                None
            }
        })
    }

    pub(crate) fn try_lock_w(&self, me: usize, lock: usize) -> bool {
        self.visible(me, |g| {
            if g.locks[lock].writer.is_none() && g.locks[lock].readers == 0 {
                g.locks[lock].writer = Some(me);
                let s = g.locks[lock].sync.clone();
                view_join(&mut g.threads[me].view, &s);
                g.push_ev(me, Event::LockAcq { lock, write: true });
                true
            } else {
                g.push_ev(me, Event::TryLockFail { lock, write: true });
                false
            }
        })
    }

    pub(crate) fn lock_r(&self, me: usize, lock: usize) {
        self.block_on(me, BlockedOn::RLock(lock), |g| {
            if g.locks[lock].writer.is_none() {
                g.locks[lock].readers += 1;
                let s = g.locks[lock].sync.clone();
                view_join(&mut g.threads[me].view, &s);
                g.push_ev(me, Event::LockAcq { lock, write: false });
                Some(())
            } else {
                None
            }
        })
    }

    pub(crate) fn try_lock_r(&self, me: usize, lock: usize) -> bool {
        self.visible(me, |g| {
            if g.locks[lock].writer.is_none() {
                g.locks[lock].readers += 1;
                let s = g.locks[lock].sync.clone();
                view_join(&mut g.threads[me].view, &s);
                g.push_ev(me, Event::LockAcq { lock, write: false });
                true
            } else {
                g.push_ev(me, Event::TryLockFail { lock, write: false });
                false
            }
        })
    }

    pub(crate) fn unlock(&self, me: usize, lock: usize, write: bool, during_panic: bool) {
        let apply = move |g: &mut ExecState| {
            let view = g.threads[me].view.clone();
            let l = &mut g.locks[lock];
            if write {
                l.writer = None;
            } else {
                l.readers = l.readers.saturating_sub(1);
            }
            view_join(&mut l.sync, &view);
            g.push_ev(me, Event::LockRel { lock, write });
            g.wake(|b| {
                matches!(b,
                    BlockedOn::Lock(x) | BlockedOn::RLock(x) | BlockedOn::WLock(x) if *x == lock)
            });
        };
        if during_panic {
            self.quiet(apply);
        } else {
            self.visible(me, apply);
        }
    }

    // -- channels -----------------------------------------------------------

    pub(crate) fn register_chan(&self, name: String, cap: Option<usize>) -> usize {
        let mut g = self.st();
        let id = g.chans.len();
        g.chans.push(ChanSt {
            name,
            views: VecDeque::new(),
            senders: 1,
            recv_alive: true,
            cap,
        });
        id
    }
}

// ---------------------------------------------------------------------------
// Checker: the execution explorer.
// ---------------------------------------------------------------------------

enum Mode {
    Exhaustive,
    Random { seed: u64, executions: u64 },
    Replay { schedule: Vec<u32> },
}

/// Configures and runs model executions. See the crate docs for the
/// exploration strategies; all builders are chainable.
pub struct Checker {
    name: String,
    mode: Mode,
    max_steps: usize,
    max_executions: u64,
    preemption_bound: Option<usize>,
    muts: Vec<String>,
}

fn env_mutations() -> Vec<String> {
    std::env::var("TECORE_CHECK_MUTATE")
        .ok()
        .map(|v| {
            v.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

impl Checker {
    /// Exhaustive DFS checker with default budgets (20k steps per
    /// execution, 2M executions). Mutation sites listed in the
    /// `TECORE_CHECK_MUTATE` environment variable are active.
    pub fn new(name: &str) -> Self {
        Checker {
            name: name.to_string(),
            mode: Mode::Exhaustive,
            max_steps: 20_000,
            max_executions: 2_000_000,
            preemption_bound: None,
            muts: env_mutations(),
        }
    }

    /// Switch to bounded mode: `executions` runs with decisions drawn
    /// from `seed` (each execution derives its own reported sub-seed).
    pub fn random(mut self, seed: u64, executions: u64) -> Self {
        self.mode = Mode::Random { seed, executions };
        self
    }

    /// Replay exactly one execution pinned to a recorded decision
    /// sequence (see [`Failure::schedule`]).
    pub fn replay(mut self, schedule: Vec<u32>) -> Self {
        self.mode = Mode::Replay { schedule };
        self
    }

    /// Per-execution step budget (exceeding it truncates the execution).
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Cap on the number of executions (exhaustive mode stops early and
    /// reports `complete == false`).
    pub fn max_executions(mut self, n: u64) -> Self {
        self.max_executions = n;
        self
    }

    /// CHESS-style preemption bound: at most `n` involuntary context
    /// switches per execution (keeps DFS tractable on larger models).
    pub fn preemptions(mut self, n: usize) -> Self {
        self.preemption_bound = Some(n);
        self
    }

    /// Activate a [`crate::mutation`] site for this run.
    pub fn mutate(mut self, site: &str) -> Self {
        self.muts.push(site.to_string());
        self
    }

    /// Run the model to completion and return the [`Report`]
    /// (first failure stops the exploration).
    pub fn run<F: Fn()>(&self, f: F) -> Report {
        install_hook();
        assert!(
            cur_ctx().is_none(),
            "tecore-check: nested model runs are not supported"
        );
        let mut executions = 0u64;
        let mut truncated = 0u64;
        let mut hashes: HashSet<u64> = HashSet::new();
        let mut failure: Option<Failure> = None;
        let mut complete = false;
        let mut path: Vec<Branch> = Vec::new();
        let mut exec_index = 0u64;
        loop {
            let exec_seed = match &self.mode {
                // Execution 0 uses the seed verbatim so a reported
                // failure seed replays with `.random(seed, 1)`.
                Mode::Random { seed, .. } if exec_index == 0 => Some(*seed),
                Mode::Random { seed, .. } => Some(splitmix(seed ^ splitmix(exec_index))),
                _ => None,
            };
            let decider = match &self.mode {
                Mode::Exhaustive => Decider::Dfs {
                    path: std::mem::take(&mut path),
                    pos: 0,
                },
                Mode::Random { .. } => Decider::Rng(exec_seed.unwrap_or(1)),
                Mode::Replay { schedule } => Decider::Replay {
                    sched: schedule.clone(),
                    pos: 0,
                },
            };
            let ctrl = Arc::new(Controller::new(
                ExecState::new(
                    decider,
                    self.max_steps,
                    self.preemption_bound,
                    exec_index,
                    exec_seed,
                ),
                self.muts.clone(),
            ));
            set_ctx(Some(Ctx {
                ctrl: Arc::clone(&ctrl),
                exec: ctrl.exec_id,
                me: 0,
            }));
            let res = catch_unwind(AssertUnwindSafe(&f));
            match res {
                Ok(()) => ctrl.finish_thread(0),
                Err(p) => ctrl.thread_panicked(0, p),
            }
            ctrl.drive();
            set_ctx(None);
            let mut g = ctrl.st();
            executions += 1;
            if g.truncated {
                truncated += 1;
            }
            hashes.insert(trace_hash(&g.trace));
            if let Some(fl) = g.failure.take() {
                failure = Some(fl);
                break;
            }
            let stop = match &self.mode {
                Mode::Exhaustive => {
                    if let Decider::Dfs { path: p, .. } = &mut g.decider {
                        path = std::mem::take(p);
                    }
                    if !advance(&mut path) {
                        complete = true;
                        true
                    } else {
                        false
                    }
                }
                Mode::Random { executions: n, .. } => exec_index + 1 >= *n,
                Mode::Replay { .. } => true,
            };
            drop(g);
            if stop || executions >= self.max_executions {
                break;
            }
            exec_index += 1;
        }
        Report {
            name: self.name.clone(),
            executions,
            interleavings: hashes.len() as u64,
            truncated,
            complete,
            failure,
        }
    }

    /// [`Checker::run`] + [`Report::assert_pass`]; returns the report.
    pub fn check<F: Fn()>(&self, f: F) -> Report {
        let r = self.run(f);
        r.assert_pass();
        r
    }
}

/// Advance the DFS path to the next unexplored branch; false when the
/// whole tree has been explored.
fn advance(path: &mut Vec<Branch>) -> bool {
    while let Some(b) = path.last_mut() {
        if b.chosen + 1 < b.n {
            b.chosen += 1;
            return true;
        }
        path.pop();
    }
    false
}

/// Record a model-authored marker in the interleaving trace (and act as
/// a scheduling point). No-op outside a model run.
pub fn note(s: &'static str) {
    if let Some(ctx) = cur_ctx() {
        ctx.ctrl.visible(ctx.me, |g| {
            let me = ctx.me;
            g.push_ev(me, Event::Note(s));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfs_advance_enumerates_tree() {
        // Simulated executions each consume two branches (2 and 3
        // alternatives); DFS must visit all 6 leaves exactly once.
        let mut path: Vec<Branch> = Vec::new();
        let mut leaves = 0;
        loop {
            for (pos, n) in [2u32, 3u32].into_iter().enumerate() {
                if pos >= path.len() {
                    path.push(Branch { n, chosen: 0 });
                }
            }
            leaves += 1;
            if !advance(&mut path) {
                break;
            }
        }
        assert_eq!(leaves, 6);
    }

    #[test]
    fn views_join_and_grow() {
        let mut a = vec![1, 0, 3];
        view_join(&mut a, &vec![0, 5, 1, 7]);
        assert_eq!(a, vec![1, 5, 3, 7]);
        assert_eq!(view_get(&a, 99), 0);
        view_set(&mut a, 5, 2);
        assert_eq!(a[5], 2);
        // view_set never moves a view backwards.
        view_set(&mut a, 5, 1);
        assert_eq!(a[5], 2);
    }

    #[test]
    fn splitmix_and_xorshift_nonzero() {
        assert_ne!(splitmix(0), 0);
        assert_ne!(xorshift(0), 0);
    }
}
