//! Execution traces and checker reports.
//!
//! Every visible operation a model performs is recorded as an [`Event`].
//! When an execution fails (assertion, deadlock, step overrun) the event
//! list is rendered into a human-readable interleaving trace and attached
//! to the [`Failure`]; passing executions only contribute a hash used to
//! count distinct interleavings.

use std::fmt::Write as _;
use std::sync::atomic::Ordering;

/// One visible operation in an execution trace.
#[derive(Clone, Debug)]
pub enum Event {
    /// Atomic store of `val` at timestamp `ts`.
    Store {
        /// Location index (see the trace header for names).
        loc: usize,
        /// Value written.
        val: u64,
        /// Memory ordering used.
        ord: Ordering,
        /// Timestamp assigned to the new store.
        ts: u64,
    },
    /// Atomic load observing the store with timestamp `ts`.
    Load {
        /// Location index.
        loc: usize,
        /// Value read.
        val: u64,
        /// Memory ordering used.
        ord: Ordering,
        /// Timestamp of the store that was read.
        ts: u64,
        /// Timestamp of the newest store at that moment — `ts < latest`
        /// means the load observed a stale value.
        latest: u64,
    },
    /// Atomic read-modify-write (`fetch_add`, `swap`, successful CAS, …).
    Rmw {
        /// Location index.
        loc: usize,
        /// Value read (the latest store).
        old: u64,
        /// Value written.
        new: u64,
        /// Memory ordering used.
        ord: Ordering,
    },
    /// Failed compare-exchange (acts as a load of the latest store).
    CasFail {
        /// Location index.
        loc: usize,
        /// Expected value.
        expected: u64,
        /// Actual (latest) value.
        actual: u64,
    },
    /// Lock acquired (`write` distinguishes writer vs reader side).
    LockAcq {
        /// Lock index.
        lock: usize,
        /// True for `Mutex::lock` / `RwLock::write`.
        write: bool,
    },
    /// Lock released.
    LockRel {
        /// Lock index.
        lock: usize,
        /// True for the writer side.
        write: bool,
    },
    /// `try_lock`/`try_read`/`try_write` that would block.
    TryLockFail {
        /// Lock index.
        lock: usize,
        /// True for the writer side.
        write: bool,
    },
    /// Channel send (`ok == false`: receiver disconnected).
    Send {
        /// Channel index.
        chan: usize,
        /// Whether the value was enqueued.
        ok: bool,
    },
    /// Channel receive (`ok == false`: empty/disconnected).
    Recv {
        /// Channel index.
        chan: usize,
        /// Whether a value was dequeued.
        ok: bool,
    },
    /// New model thread registered.
    Spawn {
        /// Thread index of the child.
        child: usize,
    },
    /// Joined a finished model thread.
    Join {
        /// Thread index of the joined child.
        child: usize,
    },
    /// `hint::spin_loop()` — a pure yield point.
    SpinLoop,
    /// `thread::yield_now()`.
    Yield,
    /// Thread finished.
    Finished,
    /// Model-authored marker (see [`crate::note`]).
    Note(&'static str),
}

/// A recorded event together with the thread that performed it.
#[derive(Clone, Debug)]
pub(crate) struct TraceEv {
    pub thread: usize,
    pub ev: Event,
}

/// Why an execution failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure).
    Panic,
    /// No runnable thread remained while some were still blocked.
    Deadlock,
}

/// A failing execution: what went wrong plus everything needed to
/// reproduce it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Panic or deadlock.
    pub kind: FailureKind,
    /// Panic message / deadlock description.
    pub message: String,
    /// Rendered interleaving trace (one line per visible operation).
    pub trace: String,
    /// Zero-based index of the failing execution within the run.
    pub execution: u64,
    /// The decision sequence of the failing execution; feed to
    /// [`crate::Checker::replay`] to re-run exactly this interleaving.
    pub schedule: Vec<u32>,
    /// Per-execution seed (bounded/random mode only); feed to
    /// `Checker::random(seed, 1)` to replay.
    pub seed: Option<u64>,
}

/// Outcome of a [`crate::Checker`] run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Checker name (for messages).
    pub name: String,
    /// Executions performed.
    pub executions: u64,
    /// Distinct interleavings observed (by trace hash).
    pub interleavings: u64,
    /// Executions cut short by the step budget.
    pub truncated: u64,
    /// True when exhaustive DFS ran the decision tree dry (every
    /// interleaving within the budgets was explored).
    pub complete: bool,
    /// The first failing execution, if any.
    pub failure: Option<Failure>,
}

impl Report {
    /// Panic with the rendered trace if the run failed.
    pub fn assert_pass(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "model '{}' failed ({:?}) on execution {}:\n{}\n{}",
                self.name, f.kind, f.execution, f.message, f.trace
            );
        }
    }

    /// Panic unless the run failed; returns the failure for further
    /// inspection (mutation tests assert on the trace contents).
    pub fn assert_failure(&self) -> &Failure {
        match &self.failure {
            Some(f) => f,
            None => panic!(
                "model '{}' unexpectedly passed ({} executions, {} interleavings)",
                self.name, self.executions, self.interleavings
            ),
        }
    }
}

fn ord_str(ord: Ordering) -> &'static str {
    match ord {
        Ordering::Relaxed => "Relaxed",
        Ordering::Acquire => "Acquire",
        Ordering::Release => "Release",
        Ordering::AcqRel => "AcqRel",
        Ordering::SeqCst => "SeqCst",
        _ => "?",
    }
}

/// Render the interleaving trace: a header naming every location, lock
/// and channel, then one line per event.
pub(crate) fn render_trace(
    trace: &[TraceEv],
    threads: &[String],
    locs: &[String],
    locks: &[String],
    chans: &[String],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "interleaving trace ({} events):", trace.len());
    for te in trace {
        let who = threads.get(te.thread).map(String::as_str).unwrap_or("?");
        let name = |v: &[String], i: usize| -> String {
            v.get(i).cloned().unwrap_or_else(|| format!("#{i}"))
        };
        let line = match &te.ev {
            Event::Store { loc, val, ord, ts } => {
                format!(
                    "store   {} <- {} ({}, ts {})",
                    name(locs, *loc),
                    val,
                    ord_str(*ord),
                    ts
                )
            }
            Event::Load {
                loc,
                val,
                ord,
                ts,
                latest,
            } => {
                let stale = if ts < latest {
                    format!("  [stale: ts {ts} < {latest}]")
                } else {
                    String::new()
                };
                format!(
                    "load    {} -> {} ({}, ts {}){}",
                    name(locs, *loc),
                    val,
                    ord_str(*ord),
                    ts,
                    stale
                )
            }
            Event::Rmw { loc, old, new, ord } => {
                format!(
                    "rmw     {}: {} -> {} ({})",
                    name(locs, *loc),
                    old,
                    new,
                    ord_str(*ord)
                )
            }
            Event::CasFail {
                loc,
                expected,
                actual,
            } => {
                format!(
                    "cas-fail {}: expected {}, saw {}",
                    name(locs, *loc),
                    expected,
                    actual
                )
            }
            Event::LockAcq { lock, write } => {
                format!(
                    "{} {}",
                    if *write { "lock-w  " } else { "lock-r  " },
                    name(locks, *lock)
                )
            }
            Event::LockRel { lock, write } => {
                format!(
                    "{} {}",
                    if *write { "unlock-w" } else { "unlock-r" },
                    name(locks, *lock)
                )
            }
            Event::TryLockFail { lock, write } => {
                format!(
                    "try-{} {} -> WouldBlock",
                    if *write { "w" } else { "r" },
                    name(locks, *lock)
                )
            }
            Event::Send { chan, ok } => {
                format!(
                    "send    {}{}",
                    name(chans, *chan),
                    if *ok { "" } else { " -> disconnected" }
                )
            }
            Event::Recv { chan, ok } => {
                format!(
                    "recv    {}{}",
                    name(chans, *chan),
                    if *ok { "" } else { " -> none" }
                )
            }
            Event::Spawn { child } => {
                format!(
                    "spawn   t{} '{}'",
                    child,
                    threads.get(*child).map(String::as_str).unwrap_or("?")
                )
            }
            Event::Join { child } => format!("join    t{child}"),
            Event::SpinLoop => "spin_loop".to_string(),
            Event::Yield => "yield".to_string(),
            Event::Finished => "finished".to_string(),
            Event::Note(s) => format!("note    {s}"),
        };
        let _ = writeln!(out, "  t{} {:<10}: {}", te.thread, who, line);
    }
    out
}

/// FNV-1a over the shape of the trace — used to count distinct
/// interleavings across executions.
pub(crate) fn trace_hash(trace: &[TraceEv]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for te in trace {
        eat(te.thread as u64);
        match &te.ev {
            Event::Store { loc, val, ts, .. } => {
                eat(1);
                eat(*loc as u64);
                eat(*val);
                eat(*ts);
            }
            Event::Load { loc, val, ts, .. } => {
                eat(2);
                eat(*loc as u64);
                eat(*val);
                eat(*ts);
            }
            Event::Rmw { loc, old, new, .. } => {
                eat(3);
                eat(*loc as u64);
                eat(*old);
                eat(*new);
            }
            Event::CasFail { loc, actual, .. } => {
                eat(4);
                eat(*loc as u64);
                eat(*actual);
            }
            Event::LockAcq { lock, write } => {
                eat(5);
                eat(*lock as u64);
                eat(*write as u64);
            }
            Event::LockRel { lock, write } => {
                eat(6);
                eat(*lock as u64);
                eat(*write as u64);
            }
            Event::TryLockFail { lock, write } => {
                eat(7);
                eat(*lock as u64);
                eat(*write as u64);
            }
            Event::Send { chan, ok } => {
                eat(8);
                eat(*chan as u64);
                eat(*ok as u64);
            }
            Event::Recv { chan, ok } => {
                eat(9);
                eat(*chan as u64);
                eat(*ok as u64);
            }
            Event::Spawn { child } => {
                eat(10);
                eat(*child as u64);
            }
            Event::Join { child } => {
                eat(11);
                eat(*child as u64);
            }
            Event::SpinLoop => eat(12),
            Event::Yield => eat(13),
            Event::Finished => eat(14),
            Event::Note(s) => {
                eat(15);
                eat(s.len() as u64);
            }
        }
    }
    h
}
