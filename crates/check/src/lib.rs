//! # tecore-check — deterministic concurrency model checking
//!
//! A loom-style model checker for the hand-rolled concurrent structures in
//! this workspace (`SnapshotCell`, `ShardedDictionary`, the writer loop's
//! journal-before-ACK protocol, WAL poisoning). Like the `crates/shims/*`
//! stand-ins it is completely offline: no dependencies beyond `std`.
//!
//! ## How it works
//!
//! A *model* is a closure using the instrumented primitives from
//! [`sync`], [`thread`] and [`hint`] instead of their `std` twins. The
//! [`Checker`] runs the closure many times; each run is one *execution*
//! under a controlled scheduler:
//!
//! * Model threads are real OS threads, but the scheduler's controller
//!   (a mutex + condvar) lets **exactly one** run at a time. Every
//!   instrumented operation — an atomic load/store, a lock acquire or
//!   release, a channel send/recv, `hint::spin_loop()` — is a *scheduling
//!   point*: the running thread stops, the scheduler picks who performs
//!   the next visible operation, and only that thread resumes.
//! * Each scheduling decision (and each weak-memory load candidate, see
//!   below) is a recorded *branch*. In exhaustive mode the checker
//!   explores branches by depth-first search over the decision tree:
//!   replay the recorded prefix, take the next untried alternative at the
//!   deepest branch, repeat until the tree is exhausted. In bounded mode
//!   it instead draws decisions from a seeded xorshift generator, so any
//!   failing execution is replayable from its reported seed.
//! * Atomics are modeled with **per-location store buffers** and
//!   per-thread *views* (vector clocks over locations): a load may read
//!   any store not yet obsolete under the thread's view, an `Acquire`
//!   load joins the release-view attached to the store it reads, a
//!   `Release` store attaches the writer's full view, and `Relaxed`
//!   stores attach nothing — so genuine release/acquire bugs (stale or
//!   torn publications) are observable outcomes, not just timing luck.
//! * Assertion failures, deadlocks (no runnable thread) and step-budget
//!   overruns are caught and reported with the **full interleaving
//!   trace** that produced them, ready to paste into a bug report.
//!
//! ## Writing a model
//!
//! ```
//! use tecore_check::sync::atomic::{AtomicU64, Ordering};
//! use tecore_check::{thread, Checker};
//!
//! let report = Checker::new("message-passing").run(|| {
//!     let data = std::sync::Arc::new(AtomicU64::new(0));
//!     let flag = std::sync::Arc::new(AtomicU64::new(0));
//!     let (d, f) = (data.clone(), flag.clone());
//!     let t = thread::spawn(move || {
//!         d.store(42, Ordering::Relaxed);
//!         f.store(1, Ordering::Release);
//!     });
//!     if flag.load(Ordering::Acquire) == 1 {
//!         assert_eq!(data.load(Ordering::Relaxed), 42);
//!     }
//!     t.join().unwrap();
//! });
//! report.assert_pass();
//! ```
//!
//! Replace `Ordering::Release`/`Acquire` with `Relaxed` above and the
//! checker finds the interleaving where the reader sees `flag == 1` but
//! stale `data == 0`, and prints it.
//!
//! ## Replaying a failure
//!
//! * Exhaustive mode is deterministic: re-running the same checker on the
//!   same model reproduces the failure immediately (the DFS stops at the
//!   first failing execution). [`Failure::schedule`] carries the exact
//!   decision sequence; feed it to [`Checker::replay`] to re-run *only*
//!   that interleaving, e.g. under a debugger.
//! * Bounded mode reports [`Failure::seed`]; `Checker::new(name)
//!   .random(seed, 1)` replays the failing execution.
//!
//! ## Mutation testing
//!
//! [`mutation::ordering`] marks an ordering that a test may deliberately
//! weaken to `Relaxed` ([`Checker::mutate`] or the `TECORE_CHECK_MUTATE`
//! environment variable). The protocol models under `tests/` prove the
//! checker's teeth this way: weakening the `SnapshotCell` publish store
//! or reordering ACK-before-journal must make the model fail with a
//! trace.

#![forbid(unsafe_code)]

pub mod hint;
pub mod mutation;
mod report;
mod sched;
pub mod sync;
pub mod thread;

pub use report::{Event, Failure, FailureKind, Report};
pub use sched::{note, Checker};

/// Run `f` under the exhaustive checker with default budgets and panic
/// (printing the interleaving trace) if any execution fails.
///
/// Shorthand for `Checker::new("model").check(f)`.
pub fn model<F: Fn()>(f: F) {
    Checker::new("model").check(f);
}
