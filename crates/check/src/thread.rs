//! Instrumented `std::thread`: model threads are real OS threads whose
//! execution is serialized by the controller. `spawn`/`scope` register
//! the child with the scheduler (a release edge from the parent); joins
//! block in the scheduler and acquire the child's final view.
//!
//! Unlike [`crate::sync`], this module is model-only: spawning outside
//! a model run panics (ordinary code should use `std::thread`).

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::sched::{cur_ctx, set_ctx, Controller, Ctx};

fn run_child<T>(ctrl: Arc<Controller>, exec: u64, me: usize, f: impl FnOnce() -> T) -> Option<T> {
    set_ctx(Some(Ctx {
        ctrl: Arc::clone(&ctrl),
        exec,
        me,
    }));
    let waiter = Arc::clone(&ctrl);
    let res = catch_unwind(AssertUnwindSafe(move || {
        waiter.wait_first(me);
        f()
    }));
    let out = match res {
        Ok(v) => {
            ctrl.finish_thread(me);
            Some(v)
        }
        Err(p) => {
            ctrl.thread_panicked(me, p);
            None
        }
    };
    set_ctx(None);
    out
}

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    real: Option<std::thread::JoinHandle<Option<T>>>,
    id: usize,
}

impl<T> JoinHandle<T> {
    /// Join: blocks in the scheduler until the child finishes, then
    /// returns its result (Err if the child panicked).
    pub fn join(mut self) -> std::thread::Result<T> {
        let ctx = cur_ctx().expect("JoinHandle::join outside a model run");
        ctx.ctrl.join_thread(ctx.me, self.id);
        match self.real.take().expect("join consumes the handle").join() {
            Ok(Some(v)) => Ok(v),
            Ok(None) => Err(Box::new("model thread panicked") as Box<dyn Any + Send>),
            Err(e) => Err(e),
        }
    }
}

/// Spawn a model thread (model-only; panics outside a run).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_named("thread", f)
}

/// [`spawn`] with a thread name shown in interleaving traces.
pub fn spawn_named<F, T>(name: &str, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let ctx = cur_ctx().expect("tecore_check::thread::spawn outside a model run");
    let id = ctx.ctrl.register_thread(ctx.me, name.to_string());
    let ctrl = Arc::clone(&ctx.ctrl);
    let exec = ctx.exec;
    let real = std::thread::spawn(move || run_child(ctrl, exec, id, f));
    JoinHandle {
        real: Some(real),
        id,
    }
}

/// A scope for spawning model threads that borrow from the enclosing
/// stack frame; all children are (model- and OS-) joined before
/// [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    std: &'scope std::thread::Scope<'scope, 'env>,
    ctx: Ctx,
    children: RefCell<Vec<usize>>,
}

/// Handle to a scoped model thread.
pub struct ScopedJoinHandle<'scope, T> {
    real: Option<std::thread::ScopedJoinHandle<'scope, Option<T>>>,
    id: usize,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Join the scoped thread (see [`JoinHandle::join`]). The scope's
    /// implicit join of an already-joined child is a no-op.
    pub fn join(mut self) -> std::thread::Result<T> {
        let ctx = cur_ctx().expect("ScopedJoinHandle::join outside a model run");
        ctx.ctrl.join_thread(ctx.me, self.id);
        match self.real.take().expect("join consumes the handle").join() {
            Ok(Some(v)) => Ok(v),
            Ok(None) => Err(Box::new("model thread panicked") as Box<dyn Any + Send>),
            Err(e) => Err(e),
        }
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped model thread.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.spawn_named("scoped", f)
    }

    /// [`Scope::spawn`] with a thread name shown in traces.
    pub fn spawn_named<F, T>(&self, name: &str, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let id = self.ctx.ctrl.register_thread(self.ctx.me, name.to_string());
        self.children.borrow_mut().push(id);
        let ctrl = Arc::clone(&self.ctx.ctrl);
        let exec = self.ctx.exec;
        let real = self.std.spawn(move || run_child(ctrl, exec, id, f));
        ScopedJoinHandle {
            real: Some(real),
            id,
        }
    }
}

/// Instrumented `std::thread::scope` (model-only).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let ctx = cur_ctx().expect("tecore_check::thread::scope outside a model run");
    std::thread::scope(|s| {
        let sc = Scope {
            std: s,
            ctx: ctx.clone(),
            children: RefCell::new(Vec::new()),
        };
        match catch_unwind(AssertUnwindSafe(|| f(&sc))) {
            Ok(r) => {
                // Model-join every child before the std scope's real
                // join, so the scheduler drains them first.
                let children = sc.children.borrow().clone();
                for id in children {
                    ctx.ctrl.join_thread(ctx.me, id);
                }
                r
            }
            Err(p) => {
                // Abort the execution *before* the std scope joins the
                // children, or blocked children would never unwind.
                ctx.ctrl.abort_with_panic(ctx.me, p.as_ref());
                resume_unwind(p)
            }
        }
    })
}

/// Scheduling point that does nothing else (maps to
/// `std::thread::yield_now` outside a model run).
pub fn yield_now() {
    if let Some(ctx) = cur_ctx() {
        let me = ctx.me;
        ctx.ctrl.visible(me, |g| {
            g.push_ev(me, crate::report::Event::Yield);
        });
    } else {
        std::thread::yield_now();
    }
}
