//! Lazy (cutting-plane) grounding of constraint violations.
//!
//! RockIt's core scalability trick — and hence nRockIt's — is **cutting
//! plane inference** (CPI): instead of grounding every constraint
//! eagerly, solve a relaxed problem, then ground only the constraint
//! instances the current solution *violates*, add them, and repeat.
//!
//! This module provides the "find violated groundings" primitive: given
//! a world (truth assignment over the atom store), enumerate the
//! constraint groundings whose clause is violated, i.e. all body atoms
//! true, conditions satisfied, and
//!
//! * deriving consequent: head atom false (or missing),
//! * checking consequent: check fails.
//!
//! Only body atoms that are **true in the world** are joined, which makes
//! each CPI round proportional to the *conflicting* part of the KG, not
//! to the whole cross product.

use tecore_logic::formula::Weight;

use crate::atoms::{AtomId, AtomStore};
use crate::clause::{ClauseOrigin, ClauseWeight, GroundClause, Lit};
use crate::compile::{CConsequent, CompiledProgram};
use crate::grounder::{consequent_holds, enumerate_matches, resolve_entity, Frontier};

/// Finds all constraint groundings violated by `world`.
///
/// `world[atom.index()]` is the current truth value. Only formulas with
/// non-deriving consequents and *deriving hard formulas* (inclusion
/// dependencies) are considered — inference-rule clauses are assumed to
/// be grounded eagerly (they create the hidden atoms).
pub fn violated_clauses(
    store: &AtomStore,
    program: &CompiledProgram,
    world: &[bool],
) -> Vec<GroundClause> {
    let mut out = Vec::new();
    let horizon = store.len();
    // Dead atoms (retracted by an incremental delta) are not part of
    // the world, whatever their stale assignment bit says.
    let truthy = |id: AtomId| store.is_alive(id) && world[id.index()];
    for cf in &program.formulas {
        let is_constraint = !cf.consequent.derives() || matches!(cf.weight, Weight::Hard);
        if !is_constraint {
            continue;
        }
        enumerate_matches(
            store,
            cf,
            horizon,
            Frontier::All,
            Some(&truthy),
            &mut |chosen, bindings| {
                let violated = match &cf.consequent {
                    CConsequent::Quad {
                        subject,
                        predicate,
                        object,
                        time,
                    } => {
                        // Head must exist and be true; anything else violates.
                        let s = resolve_entity(subject, bindings);
                        let p = resolve_entity(predicate, bindings);
                        let o = resolve_entity(object, bindings);
                        match (s, p, o) {
                            (Some(s), Some(p), Some(o)) => {
                                let iv = match time {
                                    Some(t) => t.eval(&|v| bindings.interval(v)),
                                    None => {
                                        // Same default policy as the eager
                                        // grounder: intersection else hull.
                                        let mut iter =
                                            chosen.iter().map(|&a| store.atom(a).interval);
                                        iter.next().map(|first| {
                                            let (inter, hull) =
                                                iter.fold((Some(first), first), |(i, h), iv| {
                                                    (i.and_then(|x| x.intersection(iv)), h.hull(iv))
                                                });
                                            inter.unwrap_or(hull)
                                        })
                                    }
                                };
                                match iv {
                                    Some(iv) => match store.lookup(s, p, o, iv) {
                                        Some(head) => !truthy(head),
                                        None => true,
                                    },
                                    None => false, // empty intersection: nothing required
                                }
                            }
                            _ => false,
                        }
                    }
                    other => !consequent_holds(other, bindings),
                };
                if violated {
                    let mut lits: Vec<Lit> = chosen.iter().map(|&a| Lit::neg(a)).collect();
                    if let CConsequent::Quad {
                        subject,
                        predicate,
                        object,
                        time,
                    } = &cf.consequent
                    {
                        // Re-resolve the head atom to add the positive lit if
                        // it exists (it always does after eager rule
                        // grounding).
                        if let (Some(s), Some(p), Some(o)) = (
                            resolve_entity(subject, bindings),
                            resolve_entity(predicate, bindings),
                            resolve_entity(object, bindings),
                        ) {
                            let iv = match time {
                                Some(t) => t.eval(&|v| bindings.interval(v)),
                                None => {
                                    let mut iter = chosen.iter().map(|&a| store.atom(a).interval);
                                    iter.next().map(|first| {
                                        let (inter, hull) =
                                            iter.fold((Some(first), first), |(i, h), iv| {
                                                (i.and_then(|x| x.intersection(iv)), h.hull(iv))
                                            });
                                        inter.unwrap_or(hull)
                                    })
                                }
                            };
                            if let Some(head) = iv
                                .and_then(|iv| store.lookup(s, p, o, iv))
                                .filter(|&h| store.is_alive(h))
                            {
                                lits.push(Lit::pos(head));
                            }
                        }
                    }
                    let weight = match cf.weight {
                        Weight::Hard => ClauseWeight::Hard,
                        Weight::Soft(w) => ClauseWeight::Soft(w),
                    };
                    if let Some(clause) =
                        GroundClause::new(lits, weight, ClauseOrigin::Formula(cf.index))
                    {
                        out.push(clause);
                    }
                }
            },
        );
    }
    // The same violation can be found through symmetric matches; dedup.
    out.sort_by(|a, b| (origin_key(a.origin), &a.lits).cmp(&(origin_key(b.origin), &b.lits)));
    out.dedup_by(|a, b| a.origin == b.origin && a.lits == b.lits);
    out
}

fn origin_key(o: ClauseOrigin) -> usize {
    match o {
        ClauseOrigin::Formula(i) => i,
        ClauseOrigin::Evidence => usize::MAX - 1,
        ClauseOrigin::Prior => usize::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grounder::{ground, GroundConfig};
    use tecore_kg::parser::parse_graph;
    use tecore_logic::LogicProgram;

    const RANIERI: &str = "\
        (CR, coach, Chelsea, [2000,2004]) 0.9\n\
        (CR, coach, Leicester, [2015,2017]) 0.7\n\
        (CR, playsFor, Palermo, [1984,1986]) 0.5\n\
        (CR, birthDate, 1951, [1951,2017]) 1.0\n\
        (CR, coach, Napoli, [2001,2003]) 0.6\n";

    const PROGRAM: &str = "\
        f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5\n\
        c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf\n";

    #[test]
    fn finds_chelsea_napoli_clash() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PROGRAM).unwrap();
        let config = GroundConfig {
            ground_constraints: false,
            ..GroundConfig::default()
        };
        let g = ground(&graph, &program, &config).unwrap();
        // World: everything true.
        let world = vec![true; g.store.len()];
        let violated = violated_clauses(&g.store, &g.program, &world);
        // c2 violated once (Chelsea/Napoli, deduped across symmetry);
        // f1's clause is satisfied because the hidden head is true.
        assert_eq!(violated.len(), 1);
        assert_eq!(violated[0].origin, ClauseOrigin::Formula(1));
        assert!(violated[0].weight.is_hard());
    }

    #[test]
    fn no_violations_after_removing_napoli() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PROGRAM).unwrap();
        let config = GroundConfig {
            ground_constraints: false,
            ..GroundConfig::default()
        };
        let g = ground(&graph, &program, &config).unwrap();
        let napoli = g.dict.lookup("Napoli").unwrap();
        let mut world = vec![true; g.store.len()];
        for (id, atom) in g.store.iter() {
            if atom.object == napoli {
                world[id.index()] = false;
            }
        }
        let violated = violated_clauses(&g.store, &g.program, &world);
        assert!(violated.is_empty());
    }

    #[test]
    fn rule_head_false_counts_for_hard_inclusion() {
        // An inclusion dependency (hard, quad head): violated when the
        // body is true but the head atom is false.
        let graph = parse_graph("(a, rel, b, [1,2]) 0.9\n").unwrap();
        let program =
            LogicProgram::parse("quad(x, rel, y, t) -> quad(x, drv, y, t) w = inf").unwrap();
        let g = ground(&graph, &program, &GroundConfig::default()).unwrap();
        // Hidden head exists after eager grounding. World: body true,
        // head false.
        let q = g.dict.lookup("drv").unwrap();
        let mut world = vec![true; g.store.len()];
        for (id, atom) in g.store.iter() {
            if atom.predicate == q {
                world[id.index()] = false;
            }
        }
        let violated = violated_clauses(&g.store, &g.program, &world);
        assert_eq!(violated.len(), 1);
        // The clause offers the positive head literal as a repair.
        assert!(violated[0].lits.iter().any(|l| l.positive));
        // Satisfied world → nothing.
        let world = vec![true; g.store.len()];
        assert!(violated_clauses(&g.store, &g.program, &world).is_empty());
    }

    #[test]
    fn body_atoms_false_in_world_do_not_fire() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PROGRAM).unwrap();
        let g = ground(
            &graph,
            &program,
            &GroundConfig {
                ground_constraints: false,
                ..GroundConfig::default()
            },
        )
        .unwrap();
        let world = vec![false; g.store.len()];
        assert!(violated_clauses(&g.store, &g.program, &world).is_empty());
    }
}
