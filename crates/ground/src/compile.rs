//! Compilation of formulas against a dictionary: constants are interned
//! to symbols, a join order is planned, and conditions are scheduled at
//! the earliest position where their variables are bound.

use tecore_kg::{Dictionary, Symbol};
use tecore_logic::atom::{CmpOp, Comparison, Condition, QuadAtom, TemporalCond};
use tecore_logic::formula::{Consequent, Formula, Weight};
use tecore_logic::term::{Term, TimeTerm, VarId};
use tecore_logic::validate::check_formula;
use tecore_logic::{LogicError, LogicProgram};
use tecore_temporal::Interval;

/// A compiled entity term: variable or interned symbol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CTerm {
    /// Variable slot.
    Var(VarId),
    /// Interned constant.
    Sym(Symbol),
}

/// A compiled body time argument. Bodies only support variables and
/// literals (interval *expressions* appear in heads and conditions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CTime {
    /// Interval variable.
    Var(VarId),
    /// Exact literal interval.
    Lit(Interval),
}

/// A compiled body pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct CPattern {
    /// Subject slot.
    pub subject: CTerm,
    /// Predicate slot.
    pub predicate: CTerm,
    /// Object slot.
    pub object: CTerm,
    /// Optional exact time slot.
    pub time: Option<CTime>,
}

impl CPattern {
    /// Variables introduced by this pattern.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        for t in [&self.subject, &self.predicate, &self.object] {
            if let CTerm::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        if let Some(CTime::Var(v)) = &self.time {
            if !out.contains(v) {
                out.push(*v);
            }
        }
        out
    }

    /// Number of constant slots (selectivity heuristic).
    pub fn const_count(&self) -> usize {
        let mut n = 0;
        for t in [&self.subject, &self.predicate, &self.object] {
            if matches!(t, CTerm::Sym(_)) {
                n += 1;
            }
        }
        if matches!(self.time, Some(CTime::Lit(_))) {
            n += 1;
        }
        n
    }
}

/// A compiled condition.
#[derive(Debug, Clone, PartialEq)]
pub enum CCondition {
    /// Allen relation between time terms.
    Temporal(TemporalCond),
    /// Arithmetic comparison.
    Numeric(Comparison),
    /// Entity (in)equality with interned constants.
    EntityCmp {
        /// Left operand.
        left: CTerm,
        /// `=` or `!=`.
        op: CmpOp,
        /// Right operand.
        right: CTerm,
    },
}

impl CCondition {
    fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        match self {
            CCondition::Temporal(tc) => {
                tc.left.collect_vars(&mut out);
                tc.right.collect_vars(&mut out);
            }
            CCondition::Numeric(c) => {
                c.left.collect_vars(&mut out);
                c.right.collect_vars(&mut out);
            }
            CCondition::EntityCmp { left, right, .. } => {
                for t in [left, right] {
                    if let CTerm::Var(v) = t {
                        if !out.contains(v) {
                            out.push(*v);
                        }
                    }
                }
            }
        }
        out
    }
}

/// A compiled consequent.
#[derive(Debug, Clone, PartialEq)]
pub enum CConsequent {
    /// Derive a quad (rules, inclusion dependencies). The head time term
    /// is evaluated per grounding; `None` means "default policy"
    /// (intersection of the body intervals, falling back to their hull).
    Quad {
        /// Subject.
        subject: CTerm,
        /// Predicate.
        predicate: CTerm,
        /// Object.
        object: CTerm,
        /// Head time expression.
        time: Option<TimeTerm>,
    },
    /// Temporal check.
    Temporal(TemporalCond),
    /// Entity (in)equality check.
    EntityCmp {
        /// Left operand.
        left: CTerm,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: CTerm,
    },
    /// Numeric check.
    Numeric(Comparison),
    /// Denial.
    False,
}

impl CConsequent {
    /// Does this consequent derive atoms (rule-like)?
    pub fn derives(&self) -> bool {
        matches!(self, CConsequent::Quad { .. })
    }
}

/// A formula compiled for grounding.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFormula {
    /// Index of the source formula in the program.
    pub index: usize,
    /// Source name (`f1`, `c2`, ...).
    pub name: Option<String>,
    /// Weight.
    pub weight: Weight,
    /// Body patterns in source order.
    pub body: Vec<CPattern>,
    /// Join order: a permutation of `0..body.len()`.
    pub join_order: Vec<usize>,
    /// Conditions.
    pub conditions: Vec<CCondition>,
    /// `schedule[k]` lists conditions evaluable after the `k`-th join
    /// step (0-based position in `join_order`).
    pub schedule: Vec<Vec<usize>>,
    /// Consequent.
    pub consequent: CConsequent,
    /// Total number of variables in the formula.
    pub n_vars: usize,
}

/// A compiled program.
#[derive(Debug, Clone, Default)]
pub struct CompiledProgram {
    /// Compiled formulas, in program order.
    pub formulas: Vec<CompiledFormula>,
}

impl CompiledProgram {
    /// Validates and compiles every formula of `program`, interning
    /// constants into `dict` (head constants may introduce new terms —
    /// e.g. `worksFor`, `TeenPlayer` in the paper's rules).
    pub fn compile(program: &LogicProgram, dict: &mut Dictionary) -> Result<Self, LogicError> {
        let mut formulas = Vec::with_capacity(program.len());
        for (index, f) in program.formulas().iter().enumerate() {
            check_formula(f)?;
            formulas.push(compile_formula(index, f, dict)?);
        }
        Ok(CompiledProgram { formulas })
    }
}

fn compile_term(t: &Term, dict: &mut Dictionary) -> CTerm {
    match t {
        Term::Var(v) => CTerm::Var(*v),
        Term::Const(c) => CTerm::Sym(dict.intern(c)),
    }
}

fn compile_body_time(t: &TimeTerm, f: &Formula) -> Result<CTime, LogicError> {
    match t {
        TimeTerm::Var(v) => Ok(CTime::Var(*v)),
        TimeTerm::Lit(iv) => Ok(CTime::Lit(*iv)),
        TimeTerm::Intersect(..) | TimeTerm::Hull(..) => Err(LogicError::Validation {
            formula: f.name.clone(),
            message: "interval expressions are not allowed in body time positions \
                      (bind a variable and add a condition instead)"
                .into(),
        }),
    }
}

fn compile_formula(
    index: usize,
    f: &Formula,
    dict: &mut Dictionary,
) -> Result<CompiledFormula, LogicError> {
    let mut body = Vec::with_capacity(f.body.len());
    for atom in &f.body {
        body.push(compile_pattern(atom, f, dict)?);
    }
    let conditions: Vec<CCondition> = f
        .conditions
        .iter()
        .map(|c| compile_condition(c, dict))
        .collect();
    let consequent = match &f.consequent {
        Consequent::Quad(q) => CConsequent::Quad {
            subject: compile_term(&q.subject, dict),
            predicate: compile_term(&q.predicate, dict),
            object: compile_term(&q.object, dict),
            time: q.time.clone(),
        },
        Consequent::Temporal(tc) => CConsequent::Temporal(tc.clone()),
        Consequent::EntityCmp { left, op, right } => CConsequent::EntityCmp {
            left: compile_term(left, dict),
            op: *op,
            right: compile_term(right, dict),
        },
        Consequent::Numeric(c) => CConsequent::Numeric(c.clone()),
        Consequent::False => CConsequent::False,
    };

    let join_order = plan_join_order(&body);
    let schedule = schedule_conditions(&body, &join_order, &conditions);

    Ok(CompiledFormula {
        index,
        name: f.name.clone(),
        weight: f.weight,
        body,
        join_order,
        conditions,
        schedule,
        consequent,
        n_vars: f.vars.len(),
    })
}

fn compile_pattern(
    atom: &QuadAtom,
    f: &Formula,
    dict: &mut Dictionary,
) -> Result<CPattern, LogicError> {
    Ok(CPattern {
        subject: compile_term(&atom.subject, dict),
        predicate: compile_term(&atom.predicate, dict),
        object: compile_term(&atom.object, dict),
        time: match &atom.time {
            Some(t) => Some(compile_body_time(t, f)?),
            None => None,
        },
    })
}

fn compile_condition(c: &Condition, dict: &mut Dictionary) -> CCondition {
    match c {
        Condition::Temporal(tc) => CCondition::Temporal(tc.clone()),
        Condition::Numeric(cmp) => CCondition::Numeric(cmp.clone()),
        Condition::EntityCmp { left, op, right } => CCondition::EntityCmp {
            left: compile_term(left, dict),
            op: *op,
            right: compile_term(right, dict),
        },
    }
}

/// Greedy join-order planning: start from the most selective pattern
/// (most constants), then repeatedly choose the pattern sharing the most
/// already-bound variables (tie-break: more constants, then source
/// order). This keeps joins index-backed: a shared variable means the
/// next lookup can use the subject/object hash indexes.
pub(crate) fn plan_join_order(body: &[CPattern]) -> Vec<usize> {
    let n = body.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound: Vec<VarId> = Vec::new();
    for _ in 0..n {
        let mut best: Option<(usize, usize, usize)> = None; // (shared, consts, idx)
        for (i, p) in body.iter().enumerate() {
            if used[i] {
                continue;
            }
            let shared = p.vars().iter().filter(|v| bound.contains(v)).count();
            let consts = p.const_count();
            let candidate = (shared, consts, i);
            best = Some(match best {
                None => candidate,
                Some(b) => {
                    // prefer more shared vars, then more constants, then
                    // earlier source position (note: reversed on idx).
                    if (candidate.0, candidate.1, std::cmp::Reverse(candidate.2))
                        > (b.0, b.1, std::cmp::Reverse(b.2))
                    {
                        candidate
                    } else {
                        b
                    }
                }
            });
        }
        let (_, _, idx) = best.expect("non-empty body");
        used[idx] = true;
        for v in body[idx].vars() {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
        order.push(idx);
    }
    order
}

/// Schedules each condition at the earliest join step after which all
/// its variables are bound.
pub(crate) fn schedule_conditions(
    body: &[CPattern],
    join_order: &[usize],
    conditions: &[CCondition],
) -> Vec<Vec<usize>> {
    let mut schedule: Vec<Vec<usize>> = vec![Vec::new(); join_order.len()];
    let mut bound: Vec<VarId> = Vec::new();
    let mut remaining: Vec<usize> = (0..conditions.len()).collect();
    for (step, &pat) in join_order.iter().enumerate() {
        for v in body[pat].vars() {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
        remaining.retain(|&ci| {
            let ready = conditions[ci].vars().iter().all(|v| bound.contains(v));
            if ready {
                schedule[step].push(ci);
            }
            !ready
        });
    }
    debug_assert!(
        remaining.is_empty(),
        "validation guarantees bound conditions"
    );
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use tecore_logic::parser::parse_formula;

    fn compile_one(src: &str) -> (CompiledFormula, Dictionary) {
        let f = parse_formula(src).unwrap();
        let mut dict = Dictionary::new();
        let cf = compile_formula(0, &f, &mut dict).unwrap();
        (cf, dict)
    }

    #[test]
    fn constants_interned_including_head() {
        let (_, dict) =
            compile_one("f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5");
        assert!(dict.lookup("playsFor").is_some());
        assert!(dict.lookup("worksFor").is_some(), "head constant interned");
    }

    #[test]
    fn join_order_prefers_selective_start_and_shared_vars() {
        let (cf, _) = compile_one(
            "quad(x, coach, Chelsea, t) ^ quad(x, coach, z, t') ^ quad(z, locatedIn, w1, t') \
             -> false",
        );
        // Pattern 0 has two constants — starts the join.
        assert_eq!(cf.join_order[0], 0);
        // Pattern 1 shares x with 0; pattern 2 shares z with 1 only.
        assert_eq!(cf.join_order, vec![0, 1, 2]);
    }

    #[test]
    fn conditions_scheduled_at_earliest_step() {
        let (cf, _) = compile_one(
            "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf",
        );
        // After the 2nd pattern all of y, z are bound: the inequality
        // runs at step 1, not at the end.
        assert!(cf.schedule[1].contains(&0));
        assert!(cf.schedule[0].is_empty());
    }

    #[test]
    fn body_interval_expression_rejected() {
        let f = parse_formula("quad(x, p1, y, t ∩ t') ^ quad(x, p2, y, t') -> false");
        // t ∩ t' in body time position: parseable, but compilation must
        // reject it. (If the parser already rejects it, that's fine too.)
        if let Ok(f) = f {
            let mut dict = Dictionary::new();
            assert!(compile_formula(0, &f, &mut dict).is_err());
        }
    }

    #[test]
    fn compiled_program_full_paper_set() {
        let program = LogicProgram::parse(
            "f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5\n\
             f2: quad(x, worksFor, y, t) ^ quad(y, locatedIn, z, t') ^ overlaps(t, t') \
                 -> quad(x, livesIn, z, t ∩ t') w = 1.6\n\
             c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z \
                 -> disjoint(t, t') w = inf\n",
        )
        .unwrap();
        let mut dict = Dictionary::new();
        let cp = CompiledProgram::compile(&program, &mut dict).unwrap();
        assert_eq!(cp.formulas.len(), 3);
        assert!(cp.formulas[0].consequent.derives());
        assert!(!cp.formulas[2].consequent.derives());
        assert_eq!(cp.formulas[1].body.len(), 2);
    }

    #[test]
    fn pattern_vars_and_consts() {
        let (cf, _) = compile_one("quad(x, coach, Chelsea, [2000,2004]) -> false");
        let p = &cf.body[0];
        assert_eq!(p.vars().len(), 1);
        assert_eq!(p.const_count(), 3);
    }
}
