//! # tecore-ground
//!
//! The grounding engine of TeCoRe: turns a uTKG plus a logic program
//! into a **ground weighted program** — the common input of both the MLN
//! backend (`tecore-mln`) and the PSL backend (`tecore-psl`).
//!
//! In the paper's terms this implements the translation
//! `map(θ(G), F ∪ C)` up to the point where a solver takes over: every
//! temporal fact becomes a ground **quad atom** (§2, "Temporal
//! Inference"), inference rules and constraints are grounded against the
//! evidence (and against derived atoms, to fixpoint), and every grounding
//! becomes a weighted **ground clause**:
//!
//! * rule `b₁ ∧ … ∧ bₙ ∧ cond → h, w` with satisfied condition becomes
//!   the clause `¬b₁ ∨ … ∨ ¬bₙ ∨ h` with weight `w`;
//! * a *violated* constraint grounding becomes `¬b₁ ∨ … ∨ ¬bₙ`
//!   (hard or soft) — "you cannot keep all of these facts";
//! * evidence atom `a` with confidence `p` becomes a soft unit clause
//!   `(a)` with weight `ln(p/(1−p))`;
//! * every derived (hidden) atom gets a small closed-world prior `(¬a)`.
//!
//! Grounding is **semi-naive**: each round only considers body matches
//! that use at least one atom derived in the previous round, so rule
//! chains (`playsFor → worksFor → livesIn`) terminate in as many rounds
//! as the dependency depth.
//!
//! The module [`violation`] implements the *lazy* grounding used by
//! cutting-plane inference (RockIt's key trick): given a candidate
//! world, produce only the constraint groundings that world violates.

#![forbid(unsafe_code)]

pub mod atoms;
pub mod bindings;
pub mod clause;
pub mod compile;
pub mod component;
pub mod grounder;
pub mod incremental;
pub mod planner;
pub mod solver;
pub mod violation;

pub use atoms::{AtomId, AtomKind, AtomStore, GroundAtom};
pub use bindings::Bindings;
pub use clause::{ClauseId, ClauseOrigin, ClauseRef, ClauseStore, ClauseWeight, GroundClause, Lit};
pub use compile::{CompiledFormula, CompiledProgram};
pub use component::{ComponentIndex, ComponentView, Partition};
pub use grounder::{ground, GroundConfig, Grounding, GroundingStats};
pub use incremental::DeltaStats;
pub use planner::{FormulaPlan, JoinPlanner};
pub use solver::{
    evaluate_world, ComponentMode, MapSolver, MapState, SolveError, SolveOpts, SolverCaps,
};
