//! Full (semi-naive) grounding of a program against a uTKG.

use std::fmt;
use std::time::{Duration, Instant};

use tecore_kg::fxhash::{FxHashMap, FxHashSet};
use tecore_kg::{Dictionary, FactId, Symbol, UtkGraph};
use tecore_logic::atom::CmpOp;
use tecore_logic::formula::Weight;
use tecore_logic::term::{TimeTerm, VarId};
use tecore_logic::{LogicError, LogicProgram};
use tecore_temporal::Interval;

use crate::atoms::{AtomId, AtomStore};
use crate::bindings::Bindings;
use crate::clause::{ClauseOrigin, ClauseStore, ClauseWeight, GroundClause, Lit};
use crate::compile::{
    CCondition, CConsequent, CPattern, CTerm, CTime, CompiledFormula, CompiledProgram,
};
use crate::planner::{self, FormulaPlan, JoinPlanner};

/// Grounding configuration.
#[derive(Debug, Clone)]
pub struct GroundConfig {
    /// Pin confidence-1 facts as hard evidence (default: `false`, so a
    /// conflict between two "certain" facts stays resolvable).
    pub pin_certain: bool,
    /// Closed-world prior weight on hidden atoms (soft unit clause
    /// `¬h`). Keeps unsupported derivations false in the MAP state.
    pub hidden_prior: f64,
    /// Safety valve on semi-naive rounds (rule-chain depth).
    pub max_rounds: usize,
    /// Emit per-evidence-atom soft unit clauses (default `true`).
    pub emit_evidence_units: bool,
    /// Ground constraint formulas eagerly (default `true`; cutting-plane
    /// inference sets this to `false` and grounds violations lazily).
    pub ground_constraints: bool,
    /// Enumerate each round's body matches with one worker thread per
    /// formula (default: `true` when the crate is built with the
    /// `parallel` feature). Output is byte-identical to the serial
    /// path — per-formula match streams are merged in formula order —
    /// and small stores fall back to serial to dodge spawn overhead.
    /// Without the `parallel` feature this flag is ignored.
    pub parallel: bool,
    /// Worker-thread count for parallel matching. `None` (the default)
    /// auto-detects: the `TECORE_GROUND_WORKERS` environment variable
    /// if set (read once per process), else the machine's available
    /// parallelism. One worker means serial.
    pub parallel_workers: Option<usize>,
    /// Join-order planner: cost-based over live cardinality statistics
    /// (default), or the compiler's syntactic heuristic. Either choice
    /// grounds the same clause multiset; only the enumeration work
    /// differs.
    pub planner: JoinPlanner,
    /// On incremental deltas, re-plan join orders when some predicate's
    /// fact count has drifted by more than this relative fraction since
    /// the current plans were chosen (cost-based planner only).
    pub replan_drift: f64,
}

impl Default for GroundConfig {
    fn default() -> Self {
        GroundConfig {
            pin_certain: false,
            hidden_prior: 0.05,
            max_rounds: 16,
            emit_evidence_units: true,
            ground_constraints: true,
            parallel: cfg!(feature = "parallel"),
            parallel_workers: None,
            planner: JoinPlanner::default(),
            replan_drift: 0.5,
        }
    }
}

/// Statistics of one grounding run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroundingStats {
    /// Semi-naive rounds executed.
    pub rounds: usize,
    /// Total body matches found (before consequent evaluation).
    pub body_matches: usize,
    /// Ground clauses emitted (excluding evidence units and priors).
    pub formula_clauses: usize,
    /// Evidence atoms created.
    pub evidence_atoms: usize,
    /// Hidden atoms created.
    pub hidden_atoms: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl fmt::Display for GroundingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "grounding: {} rounds, {} matches, {} formula clauses, \
             {} evidence atoms, {} hidden atoms, {:?}",
            self.rounds,
            self.body_matches,
            self.formula_clauses,
            self.evidence_atoms,
            self.hidden_atoms,
            self.elapsed
        )
    }
}

/// The result of grounding: the ground weighted program both backends
/// consume.
///
/// A `Grounding` is a *persistent* structure: besides the clause
/// program it carries a fact→atom→clause dependency index (materialised
/// lazily on the first delta — batch resolves never build it), so
/// [`Grounding::apply_delta`](crate::incremental) can consume a
/// [`tecore_kg::Delta`] and update the materialisation in place —
/// re-running the binding search only around the changed facts — rather
/// than re-grounding the whole graph.
#[derive(Debug, Clone)]
pub struct Grounding {
    /// All ground atoms.
    pub store: AtomStore,
    /// All ground clauses (formula groundings + evidence units +
    /// priors), held in one flat CSR arena shared zero-copy with every
    /// backend. Invariant: every live clause references live atoms
    /// only.
    pub clauses: ClauseStore,
    /// Dictionary covering the graph *and* head constants.
    pub dict: Dictionary,
    /// The compiled program (used again by cutting-plane inference).
    pub program: CompiledProgram,
    /// Evidence fact → atom mapping.
    pub fact_atoms: FxHashMap<FactId, AtomId>,
    /// Run statistics.
    pub stats: GroundingStats,
    /// Graph epoch this grounding materialises.
    pub(crate) epoch: u64,
    /// Formula-clause dedup signatures (kept so deltas never re-emit a
    /// live clause).
    pub(crate) seen: FxHashSet<(usize, Vec<Lit>)>,
    /// atom id → clause ids of every clause naming it. Built lazily on
    /// the first `apply_delta` (see `Grounding::ensure_dep_index`):
    /// batch resolves never pay for it.
    pub(crate) atom_clauses: Vec<Vec<u32>>,
    /// atom id → number of live formula clauses deriving it (positive
    /// head literal); a hidden atom dies when this reaches zero. Built
    /// together with `atom_clauses`.
    pub(crate) support: Vec<u32>,
    /// Has the dependency index been materialised yet?
    pub(crate) dep_built: bool,
    /// Conflict-component index over the clause arena. Like the
    /// dependency index it is built lazily — on the first component
    /// partition — and maintained by the incremental emit/retract paths
    /// from then on; monolithic solves never pay for it.
    pub(crate) components: Option<crate::component::ComponentIndex>,
    /// Were constraint formulas grounded eagerly
    /// ([`GroundConfig::ground_constraints`])? When `true`, every
    /// violated constraint grounding of the keep-everything world is
    /// already a clause in the arena, so consumers (conflict
    /// explanation) can read it off instead of re-running the match
    /// search.
    pub(crate) eager_constraints: bool,
    /// The join plan each formula was grounded with (chosen order,
    /// estimated vs observed match counts) — surfaced via
    /// `DebugStats::plans`.
    pub plans: Vec<FormulaPlan>,
    /// Per-predicate fact counts at plan time; incremental deltas
    /// re-plan when the live counts drift too far from this
    /// ([`GroundConfig::replan_drift`]).
    pub(crate) plan_fingerprint: Vec<(Symbol, usize)>,
}

impl Grounding {
    /// Number of ground atoms (solver variables); dead atoms keep their
    /// slot so assignment vectors stay index-stable across deltas.
    pub fn num_atoms(&self) -> usize {
        self.store.len()
    }

    /// The graph epoch this grounding reflects.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Runs one conflict-component partitioning pass over the live
    /// clauses, building the [`ComponentIndex`](crate::ComponentIndex)
    /// on first use (everything starts dirty) and updating it
    /// incrementally afterwards via
    /// [`apply_delta`](Grounding::apply_delta).
    pub fn partition_components(&mut self) -> crate::component::Partition {
        let index = self.components.get_or_insert_with(|| {
            crate::component::ComponentIndex::build(&self.clauses, self.store.len())
        });
        // Deltas may have interned atoms the incremental hooks never
        // mentioned (e.g. clause-free ones); the store count is the
        // authoritative width.
        index.ensure_atoms(self.store.len());
        index.partition(&self.clauses)
    }

    /// Marks every component clean — called by the solve driver after
    /// all dirty components were re-solved and their merged state
    /// cached. A no-op until the index exists.
    pub fn clear_component_dirty(&mut self) {
        if let Some(index) = &mut self.components {
            index.clear_dirty();
        }
    }

    /// The component index, if one has been materialised (tests and
    /// diagnostics).
    pub fn component_index(&self) -> Option<&crate::component::ComponentIndex> {
        self.components.as_ref()
    }

    /// Were constraint formulas grounded eagerly? (`false` under a
    /// lazy-grounding backend, where violations are searched per world
    /// instead of being materialised in the arena.)
    pub fn constraints_grounded_eagerly(&self) -> bool {
        self.eager_constraints
    }
}

/// Grounds `program` against `graph`.
pub fn ground(
    graph: &UtkGraph,
    program: &LogicProgram,
    config: &GroundConfig,
) -> Result<Grounding, LogicError> {
    let start = Instant::now();
    let mut dict = graph.dict().clone();
    let mut compiled = CompiledProgram::compile(program, &mut dict)?;
    // Re-plan join orders from the graph's live cardinalities before
    // any matching happens. Any plan grounds the same clause multiset
    // (the frontier discipline and clause dedup are keyed on body
    // positions, not join steps), so this only moves work.
    let mut plans = planner::plan_program(&mut compiled, graph.cardinalities(), config.planner);
    let plan_fingerprint = planner::fingerprint(graph.cardinalities());

    let mut store = AtomStore::new();
    let mut fact_atoms = FxHashMap::with_capacity_and_hasher(graph.len(), Default::default());
    for (fid, fact) in graph.iter() {
        let id = store.intern_evidence(
            fact.subject,
            fact.predicate,
            fact.object,
            fact.interval,
            fact.confidence.log_odds(),
            fid,
        );
        fact_atoms.insert(fid, id);
    }
    let evidence_atoms = store.len();

    let mut clauses = ClauseStore::with_capacity(graph.len() * 2, graph.len() * 2);
    let mut seen: FxHashSet<(usize, Vec<Lit>)> = FxHashSet::default();
    let mut stats = GroundingStats {
        evidence_atoms,
        ..GroundingStats::default()
    };

    // Semi-naive fixpoint over the formulas.
    let mut delta_start = 0usize;
    loop {
        stats.rounds += 1;
        if stats.rounds > config.max_rounds {
            break;
        }
        let horizon = store.len();
        if delta_start >= horizon {
            break;
        }
        // Buffered matches: (formula idx, body atoms, head key).
        // Formulas are independent given the frozen store snapshot, so
        // each can be matched by its own worker; merging per-formula
        // buffers in formula order keeps the output identical to the
        // serial enumeration.
        let active: Vec<&CompiledFormula> = compiled
            .formulas
            .iter()
            .filter(|cf| cf.consequent.derives() || config.ground_constraints)
            .collect();
        let per_formula = map_formulas(
            &active,
            |cf| {
                let mut local: Vec<(usize, Vec<AtomId>, Option<HeadKey>)> = Vec::new();
                let mut matches = 0usize;
                for delta_pos in 0..cf.body.len() {
                    enumerate_matches(
                        &store,
                        cf,
                        horizon,
                        Frontier::Range {
                            start: delta_start,
                            pos: delta_pos,
                        },
                        None,
                        &mut |chosen, bindings| {
                            matches += 1;
                            collect_match(cf, chosen, bindings, &store, &mut local);
                        },
                    );
                }
                (local, matches)
            },
            config.parallel && store.len() >= PARALLEL_STORE_THRESHOLD,
            config.parallel_workers,
        );
        let mut pending: Vec<(usize, Vec<AtomId>, Option<HeadKey>)> = Vec::new();
        for (cf, (local, matches)) in active.iter().zip(per_formula) {
            stats.body_matches += matches;
            plans[cf.index].actual_matches += matches;
            pending.extend(local);
        }
        // Apply buffered matches: intern head atoms, emit clauses.
        for (fidx, body_atoms, head) in pending {
            let cf = &compiled.formulas[fidx];
            let mut lits: Vec<Lit> = body_atoms.iter().map(|&a| Lit::neg(a)).collect();
            if let Some(key) = head {
                let (head_id, _new) =
                    store.intern_hidden(key.subject, key.predicate, key.object, key.interval);
                lits.push(Lit::pos(head_id));
            }
            let weight = match cf.weight {
                Weight::Hard => ClauseWeight::Hard,
                Weight::Soft(w) => ClauseWeight::Soft(w),
            };
            if let Some(clause) = GroundClause::new(lits, weight, ClauseOrigin::Formula(fidx)) {
                if seen.insert((fidx, clause.lits.clone())) {
                    stats.formula_clauses += 1;
                    clauses.push(clause);
                }
            }
        }
        if store.len() == horizon {
            break; // no new atoms: no new matches possible next round
        }
        delta_start = horizon;
    }

    // Evidence unit clauses — emitted straight into the arena (no
    // per-clause `Vec<Lit>` intermediates).
    if config.emit_evidence_units {
        for (id, atom) in store.iter() {
            if let crate::atoms::AtomKind::Evidence { log_odds, .. } = &atom.kind {
                let (lit, weight) = evidence_unit(id, *log_odds, config);
                clauses.push_lits(&[lit], weight, ClauseOrigin::Evidence);
            }
        }
    }
    // Closed-world priors on hidden atoms.
    if config.hidden_prior > 0.0 {
        for (id, atom) in store.iter() {
            if !atom.kind.is_evidence() {
                let (lit, weight) = prior_unit(id, config);
                clauses.push_lits(&[lit], weight, ClauseOrigin::Prior);
            }
        }
    }

    stats.hidden_atoms = store.hidden_count();
    stats.elapsed = start.elapsed();
    // The atom→clause dependency index (what apply_delta walks to
    // retract exactly the clauses a changed fact touches) is *not*
    // built here: batch resolves never use it, so it materialises
    // lazily on the first delta (`Grounding::ensure_dep_index`).
    Ok(Grounding {
        store,
        clauses,
        dict,
        program: compiled,
        fact_atoms,
        stats,
        epoch: graph.epoch(),
        seen,
        atom_clauses: Vec::new(),
        support: Vec::new(),
        dep_built: false,
        components: None,
        eager_constraints: config.ground_constraints,
        plans,
        plan_fingerprint,
    })
}

/// The soft (or pinned-hard) unit clause encoding one evidence atom's
/// combined confidence — shared by the batch grounder and the
/// incremental delta path. Returned as raw parts so both callers emit
/// straight into the [`ClauseStore`] arena.
pub(crate) fn evidence_unit(
    id: AtomId,
    log_odds: f64,
    config: &GroundConfig,
) -> (Lit, ClauseWeight) {
    if config.pin_certain && log_odds >= 20.0 {
        return (Lit::pos(id), ClauseWeight::Hard);
    }
    // A confidence of exactly 0.5 has log-odds 0; keep a positive bias
    // strictly larger than the hidden-atom prior so the MAP state never
    // deletes an uninformative fact gratuitously (removed facts are
    // reported as conflicts, and "keep the fact plus its rule
    // derivations" must beat "silently drop it").
    if log_odds.abs() <= 1e-9 {
        (
            Lit::pos(id),
            ClauseWeight::Soft((4.0 * config.hidden_prior).max(0.2)),
        )
    } else if log_odds > 0.0 {
        (Lit::pos(id), ClauseWeight::Soft(log_odds))
    } else {
        (Lit::neg(id), ClauseWeight::Soft(-log_odds))
    }
}

/// The closed-world prior unit clause on a hidden atom.
pub(crate) fn prior_unit(id: AtomId, config: &GroundConfig) -> (Lit, ClauseWeight) {
    (Lit::neg(id), ClauseWeight::Soft(config.hidden_prior))
}

/// Stores smaller than this are always matched serially: thread spawn
/// costs more than the whole enumeration at that size.
const PARALLEL_STORE_THRESHOLD: usize = 1024;

/// Applies `f` to every formula, fanning out one scoped worker thread
/// per formula when `parallel` holds (requires the `parallel` feature;
/// the environment ships no rayon, so this is plain `std::thread::scope`
/// with the same collect-in-order semantics a `par_iter().map().collect()`
/// would have). Results come back in formula order either way.
#[cfg(feature = "parallel")]
fn map_formulas<'a, R, F>(
    formulas: &[&'a CompiledFormula],
    f: F,
    parallel: bool,
    workers_override: Option<usize>,
) -> Vec<R>
where
    R: Send,
    F: Fn(&'a CompiledFormula) -> R + Sync,
{
    if !parallel || formulas.len() < 2 {
        return formulas.iter().map(|&cf| f(cf)).collect();
    }
    // Worker count: explicit config override, else `TECORE_GROUND_WORKERS`
    // (ops knob, read once per process so the serial path never pays
    // env-var I/O and there is no repeated getenv to race against),
    // else the machine's parallelism. One core ⇒ serial: spawning
    // would be pure overhead.
    static ENV_WORKERS: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    let cores = workers_override
        .or_else(|| {
            *ENV_WORKERS.get_or_init(|| {
                std::env::var("TECORE_GROUND_WORKERS")
                    .ok()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
            })
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let workers = cores.min(formulas.len());
    if workers < 2 {
        return formulas.iter().map(|&cf| f(cf)).collect();
    }
    let f = &f;
    // Strided distribution: worker `w` takes formulas w, w+W, w+2W, ...
    // Results are re-slotted by index, so the caller sees formula order
    // regardless of completion order.
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None)
        .take(formulas.len())
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || -> Vec<(usize, R)> {
                    formulas
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, &cf)| (i, f(cf)))
                        .collect()
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("grounder worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every formula produced a result"))
        .collect()
}

/// Serial fallback when the crate is built without the `parallel`
/// feature (the `parallel` flag and worker count are ignored).
#[cfg(not(feature = "parallel"))]
fn map_formulas<'a, R, F>(
    formulas: &[&'a CompiledFormula],
    f: F,
    _parallel: bool,
    _workers_override: Option<usize>,
) -> Vec<R>
where
    R: Send,
    F: Fn(&'a CompiledFormula) -> R + Sync,
{
    formulas.iter().map(|&cf| f(cf)).collect()
}

/// Ground key of a pending head atom.
pub(crate) struct HeadKey {
    pub(crate) subject: Symbol,
    pub(crate) predicate: Symbol,
    pub(crate) object: Symbol,
    pub(crate) interval: Interval,
}

/// Evaluates the consequent for a completed body match and records the
/// resulting pending clause (if any).
pub(crate) fn collect_match(
    cf: &CompiledFormula,
    chosen: &[AtomId],
    bindings: &Bindings,
    store: &AtomStore,
    pending: &mut Vec<(usize, Vec<AtomId>, Option<HeadKey>)>,
) {
    match &cf.consequent {
        CConsequent::Quad {
            subject,
            predicate,
            object,
            time,
        } => {
            let s = resolve_entity(subject, bindings);
            let p = resolve_entity(predicate, bindings);
            let o = resolve_entity(object, bindings);
            let (Some(s), Some(p), Some(o)) = (s, p, o) else {
                return;
            };
            let interval = match head_time(time.as_ref(), bindings, chosen, store) {
                Some(iv) => iv,
                None => return, // empty intersection: no derivation
            };
            pending.push((
                cf.index,
                chosen.to_vec(),
                Some(HeadKey {
                    subject: s,
                    predicate: p,
                    object: o,
                    interval,
                }),
            ));
        }
        other => {
            if !consequent_holds(other, bindings) {
                pending.push((cf.index, chosen.to_vec(), None));
            }
        }
    }
}

/// Default head-time policy: explicit expression if present, otherwise
/// the intersection of the body intervals, otherwise their hull.
fn head_time(
    time: Option<&TimeTerm>,
    bindings: &Bindings,
    chosen: &[AtomId],
    store: &AtomStore,
) -> Option<Interval> {
    if let Some(t) = time {
        return t.eval(&|v: VarId| bindings.interval(v));
    }
    let mut iter = chosen.iter().map(|&a| store.atom(a).interval);
    let first = iter.next()?;
    let mut inter = Some(first);
    let mut hull = first;
    for iv in iter {
        inter = inter.and_then(|i| i.intersection(iv));
        hull = hull.hull(iv);
    }
    Some(inter.unwrap_or(hull))
}

/// Evaluates a non-deriving consequent under complete bindings.
pub(crate) fn consequent_holds(c: &CConsequent, bindings: &Bindings) -> bool {
    match c {
        CConsequent::Quad { .. } => unreachable!("deriving consequent"),
        CConsequent::Temporal(tc) => tc.eval(&|v| bindings.interval(v)).unwrap_or(false),
        CConsequent::Numeric(cmp) => cmp.eval(&|v| bindings.interval(v)).unwrap_or(false),
        CConsequent::EntityCmp { left, op, right } => {
            match (
                resolve_entity(left, bindings),
                resolve_entity(right, bindings),
            ) {
                (Some(l), Some(r)) => match op {
                    CmpOp::Eq => l == r,
                    CmpOp::Ne => l != r,
                    _ => false,
                },
                _ => false,
            }
        }
        CConsequent::False => false,
    }
}

#[inline]
pub(crate) fn resolve_entity(t: &CTerm, bindings: &Bindings) -> Option<Symbol> {
    match t {
        CTerm::Sym(s) => Some(*s),
        CTerm::Var(v) => bindings.entity(*v),
    }
}

/// Evaluates one scheduled condition.
pub(crate) fn eval_condition(c: &CCondition, bindings: &Bindings) -> bool {
    match c {
        CCondition::Temporal(tc) => tc.eval(&|v| bindings.interval(v)).unwrap_or(false),
        CCondition::Numeric(cmp) => cmp.eval(&|v| bindings.interval(v)).unwrap_or(false),
        CCondition::EntityCmp { left, op, right } => {
            match (
                resolve_entity(left, bindings),
                resolve_entity(right, bindings),
            ) {
                (Some(l), Some(r)) => match op {
                    CmpOp::Eq => l == r,
                    CmpOp::Ne => l != r,
                    _ => false,
                },
                _ => false,
            }
        }
    }
}

/// The semi-naive "at least one new atom" discipline for one
/// enumeration pass.
///
/// A match is admitted when body position `pos` binds a *new* atom
/// while every body position before `pos` binds an *old* one — run once
/// per body position, this produces each new match exactly once. What
/// "new" means is the variants' difference: the batch grounder's rounds
/// append atoms, so newness is an id range; the incremental delta path
/// revives atoms at arbitrary old ids, so newness is a membership set.
#[derive(Clone, Copy)]
pub(crate) enum Frontier<'a> {
    /// No restriction: enumerate every match once.
    All,
    /// New = atoms with `id >= start` (batch semi-naive rounds).
    Range { start: usize, pos: usize },
    /// New = atoms flagged in `new` (incremental deltas; the slice may
    /// be shorter than the store — missing entries are old).
    Set { new: &'a [bool], pos: usize },
}

impl Frontier<'_> {
    /// May `id` occupy body position `pat_idx` under this discipline?
    #[inline]
    fn admits(&self, pat_idx: usize, id: AtomId) -> bool {
        let (is_new, pos) = match *self {
            Frontier::All => return true,
            Frontier::Range { start, pos } => (id.index() >= start, pos),
            Frontier::Set { new, pos } => (new.get(id.index()).copied().unwrap_or(false), pos),
        };
        if pat_idx == pos {
            is_new
        } else if pat_idx < pos {
            !is_new
        } else {
            true
        }
    }
}

/// Enumerates all body matches of `cf` against `store`.
///
/// * `horizon` — only atoms with `id < horizon` participate (atoms
///   created during the current round are next round's delta);
/// * `frontier` — the semi-naive newness discipline (see [`Frontier`]);
///   [`Frontier::All`] enumerates everything once.
/// * `filter` — optional per-atom admission test (used by cutting-plane
///   violation search with "atom is true in the current world", and by
///   the incremental path to skip dead atoms).
pub(crate) fn enumerate_matches(
    store: &AtomStore,
    cf: &CompiledFormula,
    horizon: usize,
    frontier: Frontier<'_>,
    filter: Option<&dyn Fn(AtomId) -> bool>,
    on_match: &mut dyn FnMut(&[AtomId], &Bindings),
) {
    let mut bindings = Bindings::new(cf.n_vars);
    let mut chosen: Vec<AtomId> = vec![AtomId(0); cf.body.len()];
    descend(
        store,
        cf,
        horizon,
        frontier,
        filter,
        0,
        &mut bindings,
        &mut chosen,
        on_match,
    );
}

#[allow(clippy::too_many_arguments)]
fn descend(
    store: &AtomStore,
    cf: &CompiledFormula,
    horizon: usize,
    frontier: Frontier<'_>,
    filter: Option<&dyn Fn(AtomId) -> bool>,
    step: usize,
    bindings: &mut Bindings,
    chosen: &mut Vec<AtomId>,
    on_match: &mut dyn FnMut(&[AtomId], &Bindings),
) {
    if step == cf.body.len() {
        // `chosen` is indexed by body position (not join order).
        on_match(chosen, bindings);
        return;
    }
    let pat_idx = cf.join_order[step];
    let pattern = &cf.body[pat_idx];

    // Candidate list via the most selective available index.
    let s = resolve_entity(&pattern.subject, bindings);
    let p = resolve_entity(&pattern.predicate, bindings);
    let o = resolve_entity(&pattern.object, bindings);
    let candidates: Candidates = match (s, p, o) {
        (Some(s), Some(p), _) => Candidates::Slice(store.with_subject_predicate(s, p)),
        (_, Some(p), Some(o)) => Candidates::Slice(store.with_predicate_object(p, o)),
        (_, Some(p), None) => Candidates::Slice(store.with_predicate(p)),
        _ => Candidates::Range(0..store.len() as u32),
    };

    let admit = |id: AtomId| -> bool {
        if id.index() >= horizon {
            return false;
        }
        if !frontier.admits(pat_idx, id) {
            return false;
        }
        if let Some(f) = filter {
            if !f(id) {
                return false;
            }
        }
        true
    };

    let visit = |id: AtomId,
                 bindings: &mut Bindings,
                 chosen: &mut Vec<AtomId>,
                 on_match: &mut dyn FnMut(&[AtomId], &Bindings)| {
        if !admit(id) {
            return;
        }
        let atom = store.atom(id);
        let Some(undo) = try_match(pattern, atom, bindings) else {
            return;
        };
        // Scheduled conditions for this step.
        let ok = cf.schedule[step]
            .iter()
            .all(|&ci| eval_condition(&cf.conditions[ci], bindings));
        if ok {
            chosen[pat_idx] = id;
            descend(
                store,
                cf,
                horizon,
                frontier,
                filter,
                step + 1,
                bindings,
                chosen,
                on_match,
            );
        }
        undo_bindings(bindings, &undo);
    };

    match candidates {
        Candidates::Slice(ids) => {
            for &id in ids {
                visit(id, bindings, chosen, on_match);
            }
        }
        Candidates::Range(r) => {
            for raw in r {
                visit(AtomId(raw), bindings, chosen, on_match);
            }
        }
    }
}

enum Candidates<'a> {
    Slice(&'a [AtomId]),
    Range(std::ops::Range<u32>),
}

/// Binding undo log: `(var, was_entity)` entries for fresh bindings.
type Undo = Vec<(VarId, bool)>;

fn try_match(
    pattern: &CPattern,
    atom: &crate::atoms::GroundAtom,
    bindings: &mut Bindings,
) -> Option<Undo> {
    let mut undo: Undo = Vec::with_capacity(4);
    let bind_entity = |term: &CTerm, value: Symbol, b: &mut Bindings, undo: &mut Undo| -> bool {
        match term {
            CTerm::Sym(s) => *s == value,
            CTerm::Var(v) => {
                if b.entity(*v).is_none() {
                    undo.push((*v, true));
                }
                b.bind_entity(*v, value)
            }
        }
    };
    let ok = bind_entity(&pattern.subject, atom.subject, bindings, &mut undo)
        && bind_entity(&pattern.predicate, atom.predicate, bindings, &mut undo)
        && bind_entity(&pattern.object, atom.object, bindings, &mut undo)
        && match &pattern.time {
            None => true,
            Some(CTime::Lit(iv)) => *iv == atom.interval,
            Some(CTime::Var(v)) => {
                if bindings.interval(*v).is_none() {
                    undo.push((*v, false));
                }
                bindings.bind_interval(*v, atom.interval)
            }
        };
    if ok {
        Some(undo)
    } else {
        undo_bindings(bindings, &undo);
        None
    }
}

fn undo_bindings(bindings: &mut Bindings, undo: &Undo) {
    for &(v, is_entity) in undo {
        if is_entity {
            bindings.unbind_entity(v);
        } else {
            bindings.unbind_interval(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tecore_kg::parser::parse_graph;

    const RANIERI: &str = "\
        (CR, coach, Chelsea, [2000,2004]) 0.9\n\
        (CR, coach, Leicester, [2015,2017]) 0.7\n\
        (CR, playsFor, Palermo, [1984,1986]) 0.5\n\
        (CR, birthDate, 1951, [1951,2017]) 1.0\n\
        (CR, coach, Napoli, [2001,2003]) 0.6\n";

    const PAPER_PROGRAM: &str = "\
        f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5\n\
        f2: quad(x, worksFor, y, t) ^ quad(y, locatedIn, z, t') ^ overlaps(t, t') \
            -> quad(x, livesIn, z, t ∩ t') w = 1.6\n\
        f3: quad(x, playsFor, y, t) ^ quad(x, birthDate, z, t') ^ t - t' < 20 \
            -> quad(x, type, TeenPlayer) w = 2.9\n\
        c1: quad(x, birthDate, y, t) ^ quad(x, deathDate, z, t') -> before(t, t') w = inf\n\
        c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf\n\
        c3: quad(x, bornIn, y, t) ^ quad(x, bornIn, z, t') ^ overlap(t, t') -> y = z w = inf\n";

    fn ground_paper() -> Grounding {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        ground(&graph, &program, &GroundConfig::default()).unwrap()
    }

    #[test]
    fn running_example_atoms() {
        let g = ground_paper();
        // 5 evidence atoms + 1 derived worksFor(CR, Palermo, [1984,1986]).
        assert_eq!(g.stats.evidence_atoms, 5);
        assert_eq!(g.stats.hidden_atoms, 1);
        let works_for = g.dict.lookup("worksFor").unwrap();
        let derived: Vec<_> = g
            .store
            .iter()
            .filter(|(_, a)| a.predicate == works_for)
            .collect();
        assert_eq!(derived.len(), 1);
        assert_eq!(derived[0].1.interval, Interval::new(1984, 1986).unwrap());
    }

    #[test]
    fn running_example_clauses() {
        let g = ground_paper();
        // Formula clauses: 1 from f1 (rule grounding), 1 from c2 (the
        // Chelsea/Napoli clash). f2, f3, c1, c3 fire nothing.
        assert_eq!(g.stats.formula_clauses, 2);
        let c2_clauses: Vec<_> = g
            .clauses
            .iter()
            .filter(|c| c.origin == ClauseOrigin::Formula(4))
            .collect();
        assert_eq!(c2_clauses.len(), 1);
        let clash = c2_clauses[0];
        assert!(clash.weight.is_hard());
        assert_eq!(clash.len(), 2);
        // The clause names the Chelsea and Napoli atoms negatively.
        let chelsea = g.dict.lookup("Chelsea").unwrap();
        let napoli = g.dict.lookup("Napoli").unwrap();
        let objs: Vec<Symbol> = clash
            .lits
            .iter()
            .map(|l| {
                assert!(!l.positive);
                g.store.atom(l.atom).object
            })
            .collect();
        assert!(objs.contains(&chelsea));
        assert!(objs.contains(&napoli));
    }

    #[test]
    fn evidence_units_and_priors() {
        let g = ground_paper();
        let units = g
            .clauses
            .iter()
            .filter(|c| c.origin == ClauseOrigin::Evidence)
            .count();
        assert_eq!(units, 5);
        let priors = g
            .clauses
            .iter()
            .filter(|c| c.origin == ClauseOrigin::Prior)
            .count();
        assert_eq!(priors, 1);
        // Total: 2 formula + 5 evidence + 1 prior.
        assert_eq!(g.clauses.len(), 8);
    }

    #[test]
    fn pin_certain_makes_birthdate_hard() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = GroundConfig {
            pin_certain: true,
            ..GroundConfig::default()
        };
        let g = ground(&graph, &program, &config).unwrap();
        let hard_units = g
            .clauses
            .iter()
            .filter(|c| c.origin == ClauseOrigin::Evidence && c.weight.is_hard())
            .count();
        assert_eq!(hard_units, 1); // only the birthDate fact has conf 1.0
    }

    #[test]
    fn rule_chain_fixpoint() {
        // f1 derives worksFor; f2 then derives livesIn from the derived
        // atom — requires the second semi-naive round.
        let graph = parse_graph(
            "(CR, playsFor, Palermo, [1984,1986]) 0.5\n\
             (Palermo, locatedIn, Sicily, [1900,2020]) 0.9\n",
        )
        .unwrap();
        let program = LogicProgram::parse(
            "f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5\n\
             f2: quad(x, worksFor, y, t) ^ quad(y, locatedIn, z, t') ^ overlap(t, t') \
                 -> quad(x, livesIn, z, t ∩ t') w = 1.6\n",
        )
        .unwrap();
        let g = ground(&graph, &program, &GroundConfig::default()).unwrap();
        let lives_in = g.dict.lookup("livesIn").unwrap();
        let derived: Vec<_> = g
            .store
            .iter()
            .filter(|(_, a)| a.predicate == lives_in)
            .collect();
        assert_eq!(derived.len(), 1, "livesIn derived through the chain");
        assert_eq!(derived[0].1.interval, Interval::new(1984, 1986).unwrap());
        assert!(g.stats.rounds >= 2);
        // worksFor + livesIn hidden.
        assert_eq!(g.stats.hidden_atoms, 2);
    }

    #[test]
    fn no_duplicate_clauses_across_rounds() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let g = ground(&graph, &program, &GroundConfig::default()).unwrap();
        let mut sigs: Vec<(usize, Vec<Lit>)> = g
            .clauses
            .iter()
            .filter_map(|c| match c.origin {
                ClauseOrigin::Formula(i) => Some((i, c.lits.to_vec())),
                _ => None,
            })
            .collect();
        let before = sigs.len();
        sigs.sort();
        sigs.dedup();
        assert_eq!(sigs.len(), before);
    }

    #[test]
    fn symmetric_constraint_grounding_deduped() {
        // c2 matches (Chelsea, Napoli) and (Napoli, Chelsea); both yield
        // the same clause which must appear once.
        let g = ground_paper();
        let c2: Vec<_> = g
            .clauses
            .iter()
            .filter(|c| c.origin == ClauseOrigin::Formula(4))
            .collect();
        assert_eq!(c2.len(), 1);
    }

    #[test]
    fn timeless_head_defaults_to_body_intersection() {
        let graph = parse_graph(
            "(a, relA, b, [10,20]) 0.9\n\
             (a, relB, c, [15,30]) 0.9\n",
        )
        .unwrap();
        let program = LogicProgram::parse(
            "quad(x, relA, y, t) ^ quad(x, relB, z, t') -> quad(x, both, z) w = 1.0",
        )
        .unwrap();
        let g = ground(&graph, &program, &GroundConfig::default()).unwrap();
        let both = g.dict.lookup("both").unwrap();
        let (_, atom) = g.store.iter().find(|(_, a)| a.predicate == both).unwrap();
        assert_eq!(atom.interval, Interval::new(15, 20).unwrap());
    }

    #[test]
    fn timeless_head_falls_back_to_hull() {
        let graph = parse_graph(
            "(a, relA, b, [10,12]) 0.9\n\
             (a, relB, c, [20,22]) 0.9\n",
        )
        .unwrap();
        let program = LogicProgram::parse(
            "quad(x, relA, y, t) ^ quad(x, relB, z, t') -> quad(x, both, z) w = 1.0",
        )
        .unwrap();
        let g = ground(&graph, &program, &GroundConfig::default()).unwrap();
        let both = g.dict.lookup("both").unwrap();
        let (_, atom) = g.store.iter().find(|(_, a)| a.predicate == both).unwrap();
        assert_eq!(atom.interval, Interval::new(10, 22).unwrap());
    }

    #[test]
    fn skip_constraints_config() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = GroundConfig {
            ground_constraints: false,
            ..GroundConfig::default()
        };
        let g = ground(&graph, &program, &config).unwrap();
        // Only the f1 rule clause remains; c2's clash is deferred.
        assert_eq!(g.stats.formula_clauses, 1);
    }

    #[test]
    fn negative_evidence_weight_for_low_confidence() {
        let graph = parse_graph("(a, p, b, [1,2]) 0.2\n").unwrap();
        let program = LogicProgram::new();
        let g = ground(&graph, &program, &GroundConfig::default()).unwrap();
        let unit = g
            .clauses
            .iter()
            .find(|c| c.origin == ClauseOrigin::Evidence)
            .unwrap();
        // conf 0.2 → negative log-odds → unit clause prefers ¬a.
        assert!(!unit.lits[0].positive);
    }

    #[test]
    fn parallel_flag_grounds_identically() {
        // The parallel path must be byte-identical to the serial one
        // (per-formula buffers merged in formula order). With the
        // `parallel` feature off this still checks flag inertness.
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let serial = ground(
            &graph,
            &program,
            &GroundConfig {
                parallel: false,
                ..GroundConfig::default()
            },
        )
        .unwrap();
        let parallel = ground(
            &graph,
            &program,
            &GroundConfig {
                parallel: true,
                ..GroundConfig::default()
            },
        )
        .unwrap();
        assert_eq!(serial.clauses, parallel.clauses);
        assert_eq!(serial.stats.body_matches, parallel.stats.body_matches);
        assert_eq!(serial.num_atoms(), parallel.num_atoms());
    }

    /// Same check over a store large enough to cross
    /// [`PARALLEL_STORE_THRESHOLD`], so the threaded path really runs
    /// when the `parallel` feature is enabled.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_threads_match_serial_on_large_store() {
        let mut text = String::new();
        for i in 0..1500u32 {
            let player = i % 500;
            let club = i % 11;
            let start = 1980 + i64::from(i % 25);
            text.push_str(&format!(
                "(p{player}, playsFor, c{club}, [{start},{}]) 0.8\n",
                start + 3
            ));
        }
        let graph = parse_graph(&text).unwrap();
        let program = LogicProgram::parse(
            "f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5\n\
             cSpell: quad(x, playsFor, y, t) ^ quad(x, playsFor, z, t') ^ y != z \
                 -> disjoint(t, t') w = inf\n",
        )
        .unwrap();
        let serial = ground(
            &graph,
            &program,
            &GroundConfig {
                parallel: false,
                ..GroundConfig::default()
            },
        )
        .unwrap();
        let parallel = ground(
            &graph,
            &program,
            &GroundConfig {
                parallel: true,
                // Force real fan-out even on single-core CI machines.
                parallel_workers: Some(4),
                ..GroundConfig::default()
            },
        )
        .unwrap();
        assert!(graph.len() >= PARALLEL_STORE_THRESHOLD);
        assert_eq!(serial.clauses, parallel.clauses);
        assert_eq!(serial.stats.body_matches, parallel.stats.body_matches);
    }

    #[test]
    fn literal_interval_in_body_matches_exactly() {
        let graph = parse_graph(
            "(CR, coach, Chelsea, [2000,2004]) 0.9\n\
             (CR, coach, Chelsea, [2000,2005]) 0.9\n",
        )
        .unwrap();
        let program = LogicProgram::parse(
            "quad(x, coach, y, [2000,2004]) -> quad(x, type, Coach2004) w = 1.0",
        )
        .unwrap();
        let g = ground(&graph, &program, &GroundConfig::default()).unwrap();
        assert_eq!(g.stats.formula_clauses, 1);
    }
}
