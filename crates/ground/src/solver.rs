//! The **MAP-solver backend interface** — the seam between grounding
//! and inference.
//!
//! TeCoRe's central architectural claim (paper §4–§5) is that temporal
//! conflict resolution is MAP inference over a probabilistic-logic
//! grounding with *interchangeable* substrates: an expressive MLN stack
//! or a scalable PSL relaxation. This module makes that seam a real,
//! object-safe trait: every backend consumes the same [`Grounding`]
//! (produced here in `tecore-ground`) and returns the same [`MapState`].
//!
//! The trait lives in this crate — *below* the substrate crates — so
//! that `tecore-mln` and `tecore-psl` implement it in their own trees
//! and `tecore-core` can dispatch through `dyn MapSolver` without a
//! per-backend `match` anywhere in its pipeline. New substrates (e.g. a
//! sharded or approximate solver) plug in by implementing [`MapSolver`]
//! and registering with `tecore_core::registry::SolverRegistry`; no
//! existing crate needs to change.

use std::fmt;

use tecore_logic::validate::Expressivity;

use crate::component::ComponentView;
use crate::grounder::Grounding;

/// What a backend can do — consulted by the translator and pipeline
/// instead of matching on a backend enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverCaps {
    /// The logic fragment the backend accepts; the translator validates
    /// every formula against this before grounding (paper §2.1: "special
    /// care is taken to verify that the input adheres to the
    /// expressivity of the solver").
    pub expressivity: Expressivity,
    /// `true` if the solver grounds constraint violations lazily
    /// (cutting-plane style); the translator then defers eager
    /// constraint grounding.
    pub lazy_grounding: bool,
    /// `true` if [`MapState::soft_values`] is populated with per-atom
    /// soft truth values (PSL); the pipeline uses them as confidences
    /// for derived facts instead of sampling marginals.
    pub soft_values: bool,
    /// `true` if the solver is exact (its cost is the true MAP optimum).
    pub exact: bool,
    /// `true` if the solver genuinely consumes
    /// [`SolveOpts::warm_start`] — seeding its search/iteration from
    /// the previous [`MapState`] instead of a cold initialisation. The
    /// incremental pipeline only offers a warm start to backends that
    /// declare it; others receive `None`.
    pub warm_start: bool,
    /// `true` if the solver implements
    /// [`MapSolver::solve_component`] — MAP inference over one
    /// conflict-component sub-view in its local atom id space. The
    /// component-wise solve driver only dispatches per component to
    /// backends that declare it (and that do *not* declare
    /// [`SolverCaps::lazy_grounding`] — a lazily grounded arena does
    /// not contain every atom coupling, so its clause-connectivity
    /// partition would be unsound); everyone else gets the monolithic
    /// [`MapSolver::solve`].
    pub components: bool,
}

impl SolverCaps {
    /// Caps of a classical eager MLN/MaxSAT solver.
    pub fn mln() -> Self {
        SolverCaps {
            expressivity: Expressivity::Mln,
            lazy_grounding: false,
            soft_values: false,
            exact: false,
            warm_start: false,
            components: false,
        }
    }

    /// Caps of a PSL-style convex solver with soft truth values.
    pub fn psl() -> Self {
        SolverCaps {
            expressivity: Expressivity::Psl,
            lazy_grounding: false,
            soft_values: true,
            exact: false,
            warm_start: false,
            components: false,
        }
    }
}

/// How the solve driver treats conflict components (see
/// `tecore-ground::component`). Carried on [`SolveOpts`] so one solve
/// can override the session default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ComponentMode {
    /// Partition when the backend supports it
    /// ([`SolverCaps::components`] without
    /// [`SolverCaps::lazy_grounding`]) and the problem actually splits;
    /// a single-component problem falls back to one monolithic solve.
    #[default]
    Auto,
    /// Partition whenever the backend supports it, even when the
    /// partition is a single component (useful for conformance tests
    /// and benchmarks that want the component path exercised
    /// unconditionally).
    Components,
    /// Never partition: always one monolithic [`MapSolver::solve`].
    Monolithic,
}

/// Per-solve options passed through [`MapSolver::solve`].
///
/// Deliberately open-ended: options that *every* backend must interpret
/// belong here; backend-specific tuning belongs in the solver value
/// itself (constructed from its own config types).
#[derive(Debug, Clone, Default)]
pub struct SolveOpts<'a> {
    /// Overrides the solver's own seed for stochastic backends; `None`
    /// keeps the configured seed. Deterministic backends ignore it.
    pub seed: Option<u64>,
    /// A previous MAP state of (an earlier epoch of) the same
    /// grounding, offered as a starting point. Atom ids are stable
    /// across deltas, so `warm_start.assignment[i]` still describes
    /// atom `i`; atoms beyond its length are new. Backends whose
    /// [`SolverCaps::warm_start`] is `false` may ignore it; backends
    /// declaring the capability must seed from it.
    ///
    /// In a [`MapSolver::solve_component`] call the state is in the
    /// component's *local* atom id space (the driver remaps it).
    pub warm_start: Option<&'a MapState>,
    /// Conflict-component treatment. Interpreted by the solve *driver*
    /// (`tecore-core`), not by individual backends — a backend handed
    /// these opts through [`MapSolver::solve`] is already on the
    /// monolithic path and ignores the field.
    pub component_mode: ComponentMode,
}

/// The result of MAP inference, backend-agnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct MapState {
    /// Truth value per ground atom, indexed by `AtomId::index()`.
    pub assignment: Vec<bool>,
    /// Total violated soft weight of `assignment` (lower is better).
    pub cost: f64,
    /// All hard clauses satisfied?
    pub feasible: bool,
    /// Clauses in the solver's final active set (== grounding size for
    /// eager backends; the cutting-plane solver reports its lazily
    /// activated subset).
    pub active_clauses: usize,
    /// Per-atom soft truth values in `[0, 1]`, when the backend computes
    /// them (see [`SolverCaps::soft_values`]).
    pub soft_values: Option<Vec<f64>>,
}

/// A failed MAP solve.
///
/// Infeasibility is *not* an error (it is reported in
/// [`MapState::feasible`]); errors are malformed inputs or solver-side
/// resource failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The grounding violates an invariant the solver relies on.
    InvalidGrounding(String),
    /// The solver gave up (budget exhausted, numerical failure, ...).
    Backend(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::InvalidGrounding(msg) => write!(f, "invalid grounding: {msg}"),
            SolveError::Backend(msg) => write!(f, "backend failure: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// A MAP inference backend over a ground weighted program.
///
/// Object safety is load-bearing: the pipeline holds `dyn MapSolver`
/// and the registry hands out `Arc<dyn MapSolver>`, so a backend added
/// by a downstream crate is indistinguishable from a built-in one.
///
/// Implementations must be deterministic given their configuration (all
/// in-tree backends are seeded) and must uphold the state contract the
/// pipeline enforces: `assignment` (and `soft_values`, when present)
/// have exactly `grounding.num_atoms()` entries, and `soft_values` is
/// `Some` iff [`SolverCaps::soft_values`] is declared.
pub trait MapSolver: fmt::Debug + Send + Sync {
    /// Stable identifier used for registry lookup and statistics output
    /// (`"mln-exact"`, `"mln-walksat"`, `"mln-cpi"`, `"psl-admm"`, ...).
    fn name(&self) -> &str;

    /// The backend's capabilities; drives translator validation and
    /// pipeline behaviour.
    fn caps(&self) -> SolverCaps;

    /// Computes the MAP state of `grounding`.
    fn solve(&self, grounding: &Grounding, opts: &SolveOpts<'_>) -> Result<MapState, SolveError>;

    /// Computes the MAP state of one conflict-component sub-view, in
    /// the component's **local** atom id space: the returned
    /// `assignment` (and `soft_values`, when declared) must have
    /// exactly [`ComponentView::num_atoms`] entries, and
    /// `opts.warm_start` — when offered — is already local.
    ///
    /// Only called when [`SolverCaps::components`] is declared; the
    /// default implementation reports the backend as incapable, which
    /// keeps external solvers source-compatible (they stay on the
    /// monolithic path unless they opt in through their caps).
    fn solve_component(
        &self,
        view: &ComponentView<'_>,
        opts: &SolveOpts<'_>,
    ) -> Result<MapState, SolveError> {
        let _ = (view, opts);
        Err(SolveError::Backend(format!(
            "solver `{}` does not implement component sub-solves",
            self.name()
        )))
    }
}

/// Total violated soft weight and number of violated hard clauses of
/// `world` over the live clauses of `clauses`.
///
/// Shared by backends that need to grade a discrete world against the
/// common clause representation (e.g. PSL scoring its rounding) without
/// depending on another backend's problem types.
pub fn evaluate_world(clauses: &crate::clause::ClauseStore, world: &[bool]) -> (f64, usize) {
    let mut cost = 0.0;
    let mut hard_violations = 0usize;
    for clause in clauses.iter() {
        if !clause.satisfied_by(world) {
            match clause.weight {
                crate::clause::ClauseWeight::Hard => hard_violations += 1,
                crate::clause::ClauseWeight::Soft(w) => cost += w,
            }
        }
    }
    (cost, hard_violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::AtomId;
    use crate::clause::{ClauseOrigin, ClauseWeight, GroundClause, Lit};

    #[test]
    fn caps_presets() {
        assert_eq!(SolverCaps::mln().expressivity, Expressivity::Mln);
        assert!(!SolverCaps::mln().soft_values);
        assert_eq!(SolverCaps::psl().expressivity, Expressivity::Psl);
        assert!(SolverCaps::psl().soft_values);
    }

    #[test]
    fn evaluate_world_costs() {
        let ground_clauses = vec![
            GroundClause::new(
                vec![Lit::pos(AtomId(0))],
                ClauseWeight::Soft(2.0),
                ClauseOrigin::Evidence,
            )
            .unwrap(),
            GroundClause::new(
                vec![Lit::neg(AtomId(0)), Lit::pos(AtomId(1))],
                ClauseWeight::Hard,
                ClauseOrigin::Evidence,
            )
            .unwrap(),
        ];
        let clauses = crate::clause::ClauseStore::from_ground_clauses(&ground_clauses);
        // Satisfy both.
        assert_eq!(evaluate_world(&clauses, &[true, true]), (0.0, 0));
        // Violate the hard implication.
        assert_eq!(evaluate_world(&clauses, &[true, false]), (0.0, 1));
        // Violate the soft unit only.
        assert_eq!(evaluate_world(&clauses, &[false, false]), (2.0, 0));
    }

    #[test]
    fn solve_error_display() {
        let e = SolveError::InvalidGrounding("bad atom".into());
        assert!(e.to_string().contains("bad atom"));
        let e = SolveError::Backend("budget".into());
        assert!(e.to_string().contains("budget"));
    }
}
