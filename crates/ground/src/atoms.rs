//! Ground atoms and the interning atom store.

use tecore_kg::fxhash::FxHashMap;
use tecore_kg::{FactId, Symbol};
use tecore_temporal::Interval;

/// Identifier of a ground atom within one [`AtomStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(pub u32);

impl AtomId {
    /// Index into the store's atom table.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// How an atom is justified.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomKind {
    /// Backed by one or more evidence facts of the uTKG. `log_odds` is
    /// the combined evidence weight (independent evidence adds in
    /// log-odds space); `facts` are the contributing fact ids.
    Evidence {
        /// Combined evidence weight.
        log_odds: f64,
        /// Contributing facts (usually one).
        facts: Vec<FactId>,
    },
    /// Introduced by a rule/inclusion-dependency head: a *hidden* atom
    /// whose truth the solver decides.
    Hidden,
}

impl AtomKind {
    /// Is this an evidence atom?
    pub fn is_evidence(&self) -> bool {
        matches!(self, AtomKind::Evidence { .. })
    }
}

/// A ground quad atom `quad(s, p, o, [t_b, t_e])`.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundAtom {
    /// Subject symbol.
    pub subject: Symbol,
    /// Predicate symbol.
    pub predicate: Symbol,
    /// Object symbol.
    pub object: Symbol,
    /// Validity interval.
    pub interval: Interval,
    /// Evidence or hidden.
    pub kind: AtomKind,
}

/// Interning store of ground atoms with the secondary indexes the join
/// engine needs (by predicate, by subject+predicate, by
/// predicate+object). Indexes are maintained incrementally on insert.
///
/// Atom ids are positional (they index solver assignment vectors), so
/// the incremental grounder never deletes atoms: an atom whose last
/// justification disappears is marked **dead** and skipped by the
/// binding search, and *revived* in place if a later delta re-asserts
/// the same ground statement.
#[derive(Debug, Default, Clone)]
pub struct AtomStore {
    atoms: Vec<GroundAtom>,
    alive: Vec<bool>,
    dead_count: usize,
    interned: FxHashMap<(Symbol, Symbol, Symbol, Interval), AtomId>,
    by_pred: FxHashMap<Symbol, Vec<AtomId>>,
    by_sp: FxHashMap<(Symbol, Symbol), Vec<AtomId>>,
    by_po: FxHashMap<(Symbol, Symbol), Vec<AtomId>>,
}

impl AtomStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        AtomStore::default()
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The atom for an id.
    pub fn atom(&self, id: AtomId) -> &GroundAtom {
        &self.atoms[id.index()]
    }

    /// Looks up an atom by its ground key.
    pub fn lookup(&self, s: Symbol, p: Symbol, o: Symbol, interval: Interval) -> Option<AtomId> {
        self.interned.get(&(s, p, o, interval)).copied()
    }

    /// Interns an evidence atom, merging confidence if the same ground
    /// statement was asserted more than once (independent evidence adds
    /// in log-odds space).
    pub fn intern_evidence(
        &mut self,
        s: Symbol,
        p: Symbol,
        o: Symbol,
        interval: Interval,
        log_odds: f64,
        fact: FactId,
    ) -> AtomId {
        if let Some(&id) = self.interned.get(&(s, p, o, interval)) {
            if !self.is_alive(id) {
                // A retracted atom re-asserted by new evidence comes
                // back to life in its old slot.
                self.revive(
                    id,
                    AtomKind::Evidence {
                        log_odds,
                        facts: vec![fact],
                    },
                );
                return id;
            }
            match &mut self.atoms[id.index()].kind {
                AtomKind::Evidence { log_odds: w, facts } => {
                    *w += log_odds;
                    facts.push(fact);
                }
                kind @ AtomKind::Hidden => {
                    // A derived atom later confirmed by evidence is
                    // upgraded to evidence.
                    *kind = AtomKind::Evidence {
                        log_odds,
                        facts: vec![fact],
                    };
                }
            }
            return id;
        }
        self.insert(GroundAtom {
            subject: s,
            predicate: p,
            object: o,
            interval,
            kind: AtomKind::Evidence {
                log_odds,
                facts: vec![fact],
            },
        })
    }

    /// Interns a hidden (derived) atom; returns `(id, was_new)` —
    /// `was_new` also covers a dead atom revived in place.
    pub fn intern_hidden(
        &mut self,
        s: Symbol,
        p: Symbol,
        o: Symbol,
        interval: Interval,
    ) -> (AtomId, bool) {
        if let Some(&id) = self.interned.get(&(s, p, o, interval)) {
            if !self.is_alive(id) {
                self.revive(id, AtomKind::Hidden);
                return (id, true);
            }
            return (id, false);
        }
        let id = self.insert(GroundAtom {
            subject: s,
            predicate: p,
            object: o,
            interval,
            kind: AtomKind::Hidden,
        });
        (id, true)
    }

    fn insert(&mut self, atom: GroundAtom) -> AtomId {
        let id = AtomId(u32::try_from(self.atoms.len()).expect("atom store overflow"));
        self.interned.insert(
            (atom.subject, atom.predicate, atom.object, atom.interval),
            id,
        );
        self.by_pred.entry(atom.predicate).or_default().push(id);
        self.by_sp
            .entry((atom.subject, atom.predicate))
            .or_default()
            .push(id);
        self.by_po
            .entry((atom.predicate, atom.object))
            .or_default()
            .push(id);
        self.atoms.push(atom);
        self.alive.push(true);
        id
    }

    /// Is the atom live (still justified by evidence or a derivation)?
    #[inline]
    pub fn is_alive(&self, id: AtomId) -> bool {
        self.alive.get(id.index()).copied().unwrap_or(false)
    }

    /// Number of dead (retracted) atoms.
    pub fn dead_count(&self) -> usize {
        self.dead_count
    }

    /// Marks an atom dead. The id stays valid (assignment vectors keep
    /// their width); the binding search skips it.
    pub(crate) fn kill(&mut self, id: AtomId) {
        if std::mem::replace(&mut self.alive[id.index()], false) {
            self.dead_count += 1;
        }
    }

    /// Revives a dead atom in place with a fresh justification.
    pub(crate) fn revive(&mut self, id: AtomId, kind: AtomKind) {
        if !std::mem::replace(&mut self.alive[id.index()], true) {
            self.dead_count -= 1;
        }
        self.atoms[id.index()].kind = kind;
    }

    /// Mutable access to an atom's justification (incremental updates).
    pub(crate) fn kind_mut(&mut self, id: AtomId) -> &mut AtomKind {
        &mut self.atoms[id.index()].kind
    }

    /// Iterates over all atoms, dead ones included (ids are dense).
    pub fn iter(&self) -> impl Iterator<Item = (AtomId, &GroundAtom)> {
        self.atoms
            .iter()
            .enumerate()
            .map(|(i, a)| (AtomId(i as u32), a))
    }

    /// Iterates over live atoms only.
    pub fn iter_alive(&self) -> impl Iterator<Item = (AtomId, &GroundAtom)> {
        self.iter().filter(|(id, _)| self.alive[id.index()])
    }

    /// Atoms with the given predicate.
    pub fn with_predicate(&self, p: Symbol) -> &[AtomId] {
        self.by_pred.get(&p).map_or(&[], Vec::as_slice)
    }

    /// Atoms with the given subject and predicate.
    pub fn with_subject_predicate(&self, s: Symbol, p: Symbol) -> &[AtomId] {
        self.by_sp.get(&(s, p)).map_or(&[], Vec::as_slice)
    }

    /// Atoms with the given predicate and object.
    pub fn with_predicate_object(&self, p: Symbol, o: Symbol) -> &[AtomId] {
        self.by_po.get(&(p, o)).map_or(&[], Vec::as_slice)
    }

    /// Number of live evidence atoms.
    pub fn evidence_count(&self) -> usize {
        self.iter_alive()
            .filter(|(_, a)| a.kind.is_evidence())
            .count()
    }

    /// Number of live hidden atoms.
    pub fn hidden_count(&self) -> usize {
        self.len() - self.dead_count - self.evidence_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: i64, b: i64) -> Interval {
        Interval::new(a, b).unwrap()
    }

    #[test]
    fn intern_evidence_merges_duplicates() {
        let mut store = AtomStore::new();
        let (s, p, o) = (Symbol(0), Symbol(1), Symbol(2));
        let a = store.intern_evidence(s, p, o, iv(1, 2), 1.0, FactId(0));
        let b = store.intern_evidence(s, p, o, iv(1, 2), 0.5, FactId(1));
        assert_eq!(a, b);
        assert_eq!(store.len(), 1);
        match &store.atom(a).kind {
            AtomKind::Evidence { log_odds, facts } => {
                assert!((log_odds - 1.5).abs() < 1e-12);
                assert_eq!(facts.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn hidden_then_evidence_upgrade() {
        let mut store = AtomStore::new();
        let (s, p, o) = (Symbol(0), Symbol(1), Symbol(2));
        let (h, new) = store.intern_hidden(s, p, o, iv(1, 2));
        assert!(new);
        let (h2, new2) = store.intern_hidden(s, p, o, iv(1, 2));
        assert_eq!(h, h2);
        assert!(!new2);
        let e = store.intern_evidence(s, p, o, iv(1, 2), 2.0, FactId(7));
        assert_eq!(e, h);
        assert!(store.atom(e).kind.is_evidence());
        assert_eq!(store.evidence_count(), 1);
        assert_eq!(store.hidden_count(), 0);
    }

    #[test]
    fn distinct_intervals_distinct_atoms() {
        let mut store = AtomStore::new();
        let (s, p, o) = (Symbol(0), Symbol(1), Symbol(2));
        let a = store.intern_evidence(s, p, o, iv(1, 2), 1.0, FactId(0));
        let b = store.intern_evidence(s, p, o, iv(1, 3), 1.0, FactId(1));
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn indexes() {
        let mut store = AtomStore::new();
        let (s1, s2, p, o1, o2) = (Symbol(0), Symbol(1), Symbol(2), Symbol(3), Symbol(4));
        store.intern_evidence(s1, p, o1, iv(1, 2), 1.0, FactId(0));
        store.intern_evidence(s1, p, o2, iv(3, 4), 1.0, FactId(1));
        store.intern_evidence(s2, p, o1, iv(5, 6), 1.0, FactId(2));
        assert_eq!(store.with_predicate(p).len(), 3);
        assert_eq!(store.with_subject_predicate(s1, p).len(), 2);
        assert_eq!(store.with_predicate_object(p, o1).len(), 2);
        assert!(store.with_predicate(Symbol(99)).is_empty());
        assert_eq!(store.lookup(s1, p, o1, iv(1, 2)), Some(AtomId(0)));
        assert_eq!(store.lookup(s1, p, o1, iv(9, 9)), None);
    }
}
