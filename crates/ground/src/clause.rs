//! Ground clauses: the weighted CNF both backends optimise over.

use std::fmt;

use crate::atoms::AtomId;

/// A literal: an atom or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit {
    /// The atom.
    pub atom: AtomId,
    /// `true` for the atom itself, `false` for its negation.
    pub positive: bool,
}

impl Lit {
    /// Positive literal.
    pub const fn pos(atom: AtomId) -> Lit {
        Lit {
            atom,
            positive: true,
        }
    }

    /// Negative literal.
    pub const fn neg(atom: AtomId) -> Lit {
        Lit {
            atom,
            positive: false,
        }
    }

    /// The opposite literal.
    #[must_use]
    pub const fn negated(self) -> Lit {
        Lit {
            atom: self.atom,
            positive: !self.positive,
        }
    }

    /// Truth value under an assignment.
    #[inline]
    pub fn satisfied_by(self, value: bool) -> bool {
        self.positive == value
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.positive {
            write!(f, "¬")?;
        }
        write!(f, "a{}", self.atom.0)
    }
}

/// Clause weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClauseWeight {
    /// Must be satisfied in every model.
    Hard,
    /// May be violated at this (positive, finite) cost.
    Soft(f64),
}

impl ClauseWeight {
    /// Is this a hard clause?
    pub fn is_hard(self) -> bool {
        matches!(self, ClauseWeight::Hard)
    }

    /// The soft cost, if any.
    pub fn soft(self) -> Option<f64> {
        match self {
            ClauseWeight::Hard => None,
            ClauseWeight::Soft(w) => Some(w),
        }
    }
}

/// Where a ground clause came from, for reporting and for the conflict
/// statistics of the demo's results screen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClauseOrigin {
    /// Grounding of the program formula with this index.
    Formula(usize),
    /// Evidence unit clause for a uTKG fact.
    Evidence,
    /// Closed-world prior on a hidden atom.
    Prior,
}

/// A weighted ground clause (disjunction of literals).
#[derive(Debug, Clone, PartialEq)]
pub struct GroundClause {
    /// The disjuncts. Invariant: sorted, duplicate-free (see
    /// [`GroundClause::new`]).
    pub lits: Vec<Lit>,
    /// Hard or soft weight.
    pub weight: ClauseWeight,
    /// Provenance.
    pub origin: ClauseOrigin,
}

impl GroundClause {
    /// Builds a clause, normalising literal order and dropping duplicate
    /// literals. Returns `None` for tautologies (`a ∨ ¬a`).
    pub fn new(mut lits: Vec<Lit>, weight: ClauseWeight, origin: ClauseOrigin) -> Option<Self> {
        lits.sort_unstable();
        lits.dedup();
        for w in lits.windows(2) {
            if w[0].atom == w[1].atom {
                return None; // contains both a and ¬a
            }
        }
        Some(GroundClause {
            lits,
            weight,
            origin,
        })
    }

    /// Is the clause satisfied by `assignment` (indexed by atom id)?
    pub fn satisfied_by(&self, assignment: &[bool]) -> bool {
        self.lits
            .iter()
            .any(|l| l.satisfied_by(assignment[l.atom.index()]))
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Is the clause empty (unsatisfiable)?
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Signature for deduplication: the sorted literals.
    pub fn signature(&self) -> &[Lit] {
        &self.lits
    }
}

impl fmt::Display for GroundClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{l}")?;
        }
        match self.weight {
            ClauseWeight::Hard => write!(f, " [hard]"),
            ClauseWeight::Soft(w) => write!(f, " [{w}]"),
        }
    }
}

/// Identifier of a clause slot within one [`ClauseStore`].
pub type ClauseId = u32;

/// A borrowed view of one live clause in a [`ClauseStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClauseRef<'a> {
    /// The clause's slot id (stable across retractions of *other*
    /// clauses).
    pub id: ClauseId,
    /// The literals (sorted, duplicate-free).
    pub lits: &'a [Lit],
    /// Hard or soft weight.
    pub weight: ClauseWeight,
    /// Provenance.
    pub origin: ClauseOrigin,
}

impl ClauseRef<'_> {
    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Is the clause empty (unsatisfiable)?
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Is the clause satisfied by `assignment` (indexed by atom id)?
    pub fn satisfied_by(&self, assignment: &[bool]) -> bool {
        self.lits
            .iter()
            .any(|l| l.satisfied_by(assignment[l.atom.index()]))
    }
}

/// The flat **CSR arena** holding every ground clause of a
/// [`Grounding`](crate::Grounding).
///
/// Instead of a `Vec<GroundClause>` of per-clause heap `Vec<Lit>`s, all
/// literals live in one contiguous buffer and each clause is a *slot*
/// in struct-of-arrays offset tables (`starts`/`lens`/`weights`/
/// `origins`). Every consumer — the MaxSAT backends, the HL-MRF
/// builder, world evaluation — reads the arena zero-copy; nothing
/// re-boxes literals per clause.
///
/// Incremental maintenance maps onto the layout directly:
///
/// * **retraction** tombstones the slot (the offset table keeps the
///   entry, [`ClauseStore::iter`] skips it) — other clause ids never
///   move, so the atom→clause dependency index stays valid;
/// * **emission after retractions** revives a free slot in place,
///   reusing its literal region when the new clause fits (the common
///   case: a refreshed evidence unit is exactly as wide as the one it
///   replaces).
///
/// Weights are stored as raw `f64` with `f64::INFINITY` encoding a hard
/// clause — the exact convention the MaxSAT solvers use internally, so
/// their hot loops read the array without conversion.
#[derive(Debug, Clone, Default)]
pub struct ClauseStore {
    /// Per-slot offset of the clause's literals in `lits`.
    starts: Vec<u32>,
    /// Per-slot live literal count.
    lens: Vec<u32>,
    /// Per-slot allocated literal capacity (`>= lens`; slot revival
    /// reuses the region when the new clause fits).
    caps: Vec<u32>,
    /// Per-slot weight; `f64::INFINITY` encodes hard.
    weights: Vec<f64>,
    /// Per-slot provenance.
    origins: Vec<ClauseOrigin>,
    /// Tombstone flags.
    alive: Vec<bool>,
    /// Retracted slots available for reuse.
    free: Vec<u32>,
    /// The shared literal buffer.
    lits: Vec<Lit>,
    /// Live clause count.
    live: usize,
}

impl ClauseStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ClauseStore::default()
    }

    /// Creates an empty store with room for `clauses` slots and `lits`
    /// literals.
    pub fn with_capacity(clauses: usize, lits: usize) -> Self {
        ClauseStore {
            starts: Vec::with_capacity(clauses),
            lens: Vec::with_capacity(clauses),
            caps: Vec::with_capacity(clauses),
            weights: Vec::with_capacity(clauses),
            origins: Vec::with_capacity(clauses),
            alive: Vec::with_capacity(clauses),
            free: Vec::new(),
            lits: Vec::with_capacity(lits),
            live: 0,
        }
    }

    /// Builds a store from a slice of (already normalised) clauses.
    pub fn from_ground_clauses(clauses: &[GroundClause]) -> Self {
        let lits = clauses.iter().map(GroundClause::len).sum();
        let mut store = ClauseStore::with_capacity(clauses.len(), lits);
        for c in clauses {
            store.push_lits(&c.lits, c.weight, c.origin);
        }
        store
    }

    /// Number of **live** clauses.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the store free of live clauses?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of clause slots, tombstones included. Solver-side state
    /// indexed by [`ClauseId`] must be sized by this, not [`len`]
    /// (ids of live clauses range over the whole slot table).
    ///
    /// [`len`]: ClauseStore::len
    pub fn num_slots(&self) -> usize {
        self.starts.len()
    }

    /// Appends a normalised clause, reusing a tombstoned slot when one
    /// is free. Returns the slot id.
    pub fn push(&mut self, clause: GroundClause) -> ClauseId {
        self.push_lits(&clause.lits, clause.weight, clause.origin)
    }

    /// Appends a clause from raw parts. `lits` must already be
    /// normalised (sorted, duplicate-free, no tautology) — the
    /// invariant [`GroundClause::new`] establishes.
    pub fn push_lits(
        &mut self,
        lits: &[Lit],
        weight: ClauseWeight,
        origin: ClauseOrigin,
    ) -> ClauseId {
        debug_assert!(
            lits.windows(2)
                .all(|w| w[0] < w[1] && w[0].atom != w[1].atom),
            "clause literals must be normalised"
        );
        let weight = match weight {
            ClauseWeight::Hard => f64::INFINITY,
            ClauseWeight::Soft(w) => w,
        };
        let n = lits.len() as u32;
        self.live += 1;
        if let Some(id) = self.free.pop() {
            // Revival: reuse the tombstoned slot, and its literal
            // region when the new clause fits.
            let i = id as usize;
            if n > self.caps[i] {
                self.starts[i] = self.lits.len() as u32;
                self.caps[i] = n;
                self.lits.extend_from_slice(lits);
            } else {
                let start = self.starts[i] as usize;
                self.lits[start..start + lits.len()].copy_from_slice(lits);
            }
            self.lens[i] = n;
            self.weights[i] = weight;
            self.origins[i] = origin;
            self.alive[i] = true;
            return id;
        }
        let id = u32::try_from(self.starts.len()).expect("clause store overflow");
        self.starts.push(self.lits.len() as u32);
        self.lens.push(n);
        self.caps.push(n);
        self.weights.push(weight);
        self.origins.push(origin);
        self.alive.push(true);
        self.lits.extend_from_slice(lits);
        id
    }

    /// Tombstones a live clause. Its slot id stays reserved (and may be
    /// handed out again by a later [`push`](ClauseStore::push)); the
    /// literal region is retained for reuse.
    pub fn retract(&mut self, id: ClauseId) {
        assert!(self.alive[id as usize], "retracting a dead clause");
        self.alive[id as usize] = false;
        self.free.push(id);
        self.live -= 1;
    }

    /// Is the slot occupied by a live clause?
    #[inline]
    pub fn is_live(&self, id: ClauseId) -> bool {
        self.alive[id as usize]
    }

    /// The literals of a clause (live or tombstoned — the dependency
    /// index only ever asks about live ids).
    #[inline]
    pub fn lits(&self, id: ClauseId) -> &[Lit] {
        let i = id as usize;
        let start = self.starts[i] as usize;
        &self.lits[start..start + self.lens[i] as usize]
    }

    /// The clause's raw weight: `f64::INFINITY` for hard.
    #[inline]
    pub fn weight_raw(&self, id: ClauseId) -> f64 {
        self.weights[id as usize]
    }

    /// The clause's weight.
    #[inline]
    pub fn weight(&self, id: ClauseId) -> ClauseWeight {
        let w = self.weights[id as usize];
        if w.is_infinite() {
            ClauseWeight::Hard
        } else {
            ClauseWeight::Soft(w)
        }
    }

    /// Is the clause hard?
    #[inline]
    pub fn is_hard(&self, id: ClauseId) -> bool {
        self.weights[id as usize].is_infinite()
    }

    /// The clause's provenance.
    #[inline]
    pub fn origin(&self, id: ClauseId) -> ClauseOrigin {
        self.origins[id as usize]
    }

    /// Number of literals of a clause.
    #[inline]
    pub fn clause_len(&self, id: ClauseId) -> usize {
        self.lens[id as usize] as usize
    }

    /// A borrowed view of a clause.
    pub fn get(&self, id: ClauseId) -> ClauseRef<'_> {
        ClauseRef {
            id,
            lits: self.lits(id),
            weight: self.weight(id),
            origin: self.origin(id),
        }
    }

    /// Iterates over the live clauses in ascending slot order —
    /// insertion order until slots are tombstoned and reused.
    ///
    /// Walks the struct-of-arrays columns with zipped slice iterators
    /// (no per-clause indexed lookups), so full scans — problem
    /// construction, occurrence-index builds, world evaluation — run at
    /// memcpy-like speed.
    pub fn iter(&self) -> impl Iterator<Item = ClauseRef<'_>> {
        self.alive
            .iter()
            .zip(self.starts.iter().zip(&self.lens))
            .zip(self.weights.iter().zip(&self.origins))
            .enumerate()
            .filter_map(|(i, ((&alive, (&start, &len)), (&w, &origin)))| {
                if !alive {
                    return None;
                }
                Some(ClauseRef {
                    id: i as u32,
                    lits: &self.lits[start as usize..start as usize + len as usize],
                    weight: if w.is_infinite() {
                        ClauseWeight::Hard
                    } else {
                        ClauseWeight::Soft(w)
                    },
                    origin,
                })
            })
    }
}

/// Two stores are equal when their live clause sequences agree **in
/// slot order**. Tombstoned slots and literal-buffer layout never
/// participate, but slot *reuse* does affect iteration order — two
/// stores reaching the same live set through different churn histories
/// may compare unequal. Intended for comparing stores built the same
/// way (e.g. serial vs parallel grounding parity).
impl PartialEq for ClauseStore {
    fn eq(&self, other: &Self) -> bool {
        self.live == other.live
            && self
                .iter()
                .zip(other.iter())
                .all(|(a, b)| a.lits == b.lits && a.weight == b.weight && a.origin == b.origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_and_tautology() {
        let c = GroundClause::new(
            vec![
                Lit::neg(AtomId(3)),
                Lit::pos(AtomId(1)),
                Lit::pos(AtomId(1)),
            ],
            ClauseWeight::Hard,
            ClauseOrigin::Formula(0),
        )
        .unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.lits[0], Lit::pos(AtomId(1)));
        let taut = GroundClause::new(
            vec![Lit::pos(AtomId(1)), Lit::neg(AtomId(1))],
            ClauseWeight::Hard,
            ClauseOrigin::Formula(0),
        );
        assert!(taut.is_none());
    }

    #[test]
    fn satisfaction() {
        let c = GroundClause::new(
            vec![Lit::neg(AtomId(0)), Lit::pos(AtomId(1))],
            ClauseWeight::Soft(1.0),
            ClauseOrigin::Formula(0),
        )
        .unwrap();
        assert!(c.satisfied_by(&[false, false]));
        assert!(c.satisfied_by(&[true, true]));
        assert!(!c.satisfied_by(&[true, false]));
    }

    #[test]
    fn lit_ops() {
        let l = Lit::pos(AtomId(5));
        assert_eq!(l.negated(), Lit::neg(AtomId(5)));
        assert_eq!(l.negated().negated(), l);
        assert!(l.satisfied_by(true));
        assert!(!l.satisfied_by(false));
        assert!(Lit::neg(AtomId(5)).satisfied_by(false));
        assert_eq!(l.to_string(), "a5");
        assert_eq!(l.negated().to_string(), "¬a5");
    }

    #[test]
    fn weights() {
        assert!(ClauseWeight::Hard.is_hard());
        assert_eq!(ClauseWeight::Hard.soft(), None);
        assert_eq!(ClauseWeight::Soft(2.5).soft(), Some(2.5));
    }

    #[test]
    fn display() {
        let c = GroundClause::new(
            vec![Lit::neg(AtomId(0)), Lit::pos(AtomId(1))],
            ClauseWeight::Soft(1.5),
            ClauseOrigin::Formula(0),
        )
        .unwrap();
        assert_eq!(c.to_string(), "¬a0 ∨ a1 [1.5]");
    }

    fn soft(lits: Vec<Lit>, w: f64) -> GroundClause {
        GroundClause::new(lits, ClauseWeight::Soft(w), ClauseOrigin::Evidence).unwrap()
    }

    #[test]
    fn store_push_and_access() {
        let mut store = ClauseStore::new();
        let a = store.push(soft(vec![Lit::pos(AtomId(0))], 1.0));
        let b = store.push(soft(vec![Lit::neg(AtomId(0)), Lit::pos(AtomId(1))], 2.0));
        let c = store.push(
            GroundClause::new(
                vec![Lit::neg(AtomId(1))],
                ClauseWeight::Hard,
                ClauseOrigin::Formula(3),
            )
            .unwrap(),
        );
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(store.len(), 3);
        assert_eq!(store.num_slots(), 3);
        assert_eq!(store.lits(b), &[Lit::neg(AtomId(0)), Lit::pos(AtomId(1))]);
        assert_eq!(store.weight(a), ClauseWeight::Soft(1.0));
        assert!(store.is_hard(c));
        assert!(store.weight_raw(c).is_infinite());
        assert_eq!(store.origin(c), ClauseOrigin::Formula(3));
        assert_eq!(store.clause_len(b), 2);
        assert!(store.get(b).satisfied_by(&[false, false]));
        assert!(!store.get(a).satisfied_by(&[false, false]));
    }

    #[test]
    fn store_tombstone_skip_and_revival() {
        let mut store = ClauseStore::new();
        store.push(soft(vec![Lit::pos(AtomId(0))], 1.0));
        let b = store.push(soft(vec![Lit::pos(AtomId(1)), Lit::pos(AtomId(2))], 2.0));
        store.push(soft(vec![Lit::pos(AtomId(3))], 3.0));
        store.retract(b);
        assert_eq!(store.len(), 2);
        assert!(!store.is_live(b));
        let ids: Vec<u32> = store.iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![0, 2], "iteration skips the tombstone");
        // Revival reuses the slot (and its literal region: same width).
        let revived = store.push(soft(vec![Lit::neg(AtomId(4)), Lit::pos(AtomId(5))], 4.0));
        assert_eq!(revived, b);
        assert_eq!(store.lits(b), &[Lit::neg(AtomId(4)), Lit::pos(AtomId(5))]);
        assert_eq!(store.len(), 3);
        assert_eq!(store.num_slots(), 3, "no new slot allocated");
        // A wider clause than the slot's capacity relocates its lits.
        store.retract(b);
        let wide = store.push(soft(
            vec![
                Lit::pos(AtomId(6)),
                Lit::pos(AtomId(7)),
                Lit::pos(AtomId(8)),
            ],
            5.0,
        ));
        assert_eq!(wide, b);
        assert_eq!(store.clause_len(wide), 3);
        assert_eq!(
            store.lits(wide),
            &[
                Lit::pos(AtomId(6)),
                Lit::pos(AtomId(7)),
                Lit::pos(AtomId(8))
            ]
        );
    }

    #[test]
    fn store_equality_ignores_slot_layout() {
        let clauses = [
            soft(vec![Lit::pos(AtomId(0))], 1.0),
            soft(vec![Lit::pos(AtomId(1))], 2.0),
        ];
        let plain = ClauseStore::from_ground_clauses(&clauses);
        // Same live content reached through a retract/revive detour.
        let mut churned = ClauseStore::new();
        let tmp = churned.push(soft(vec![Lit::pos(AtomId(9))], 9.0));
        churned.retract(tmp);
        churned.push(clauses[0].clone());
        churned.push(clauses[1].clone());
        assert_eq!(plain.len(), churned.len());
        // Slot 0 was reused, so ascending-slot iteration differs from
        // insertion order only when reuse reorders — here it does not.
        assert_eq!(plain, churned);
    }

    use proptest::prelude::*;

    /// Strategy for one scripted op: `Some((lits, weight, origin))` =
    /// push, `None` = retract the oldest live clause.
    fn arb_op() -> impl Strategy<Value = Option<(Vec<Lit>, Option<u32>, usize)>> {
        let lit = (0u32..12, prop::bool::ANY).prop_map(|(a, pos)| Lit {
            atom: AtomId(a),
            positive: pos,
        });
        prop::option::of((
            prop::collection::vec(lit, 1..5),
            prop::option::of(1u32..50),
            0usize..3,
        ))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Random push/retract sequences round-trip through the arena
        /// with the exact semantics of the old `Vec<GroundClause>`:
        /// live clauses come back in ascending slot order with
        /// identical lits, weight and origin; tombstones are skipped;
        /// revived slots carry the new clause.
        #[test]
        fn store_roundtrips_against_vec_model(
            ops in prop::collection::vec(arb_op(), 1..40),
        ) {
            let mut store = ClauseStore::new();
            // Model: slot id → live clause (old Vec semantics with
            // explicit tombstones).
            let mut model: Vec<Option<GroundClause>> = Vec::new();
            for op in ops {
                match op {
                    Some((lits, soft_w, origin_pick)) => {
                        let weight = match soft_w {
                            Some(w) => ClauseWeight::Soft(f64::from(w) / 8.0),
                            None => ClauseWeight::Hard,
                        };
                        let origin = [
                            ClauseOrigin::Evidence,
                            ClauseOrigin::Prior,
                            ClauseOrigin::Formula(origin_pick),
                        ][origin_pick];
                        let Some(clause) = GroundClause::new(lits, weight, origin) else {
                            continue; // tautology: neither side stores it
                        };
                        let id = store.push(clause.clone()) as usize;
                        if id == model.len() {
                            model.push(Some(clause));
                        } else {
                            prop_assert!(model[id].is_none(), "reused slot was live");
                            model[id] = Some(clause);
                        }
                    }
                    None => {
                        let Some(id) = model.iter().position(Option::is_some) else {
                            continue;
                        };
                        model[id] = None;
                        store.retract(id as u32);
                    }
                }
                // Live iteration == the model's live slots, in order.
                let live: Vec<(u32, Vec<Lit>, ClauseWeight, ClauseOrigin)> = store
                    .iter()
                    .map(|c| (c.id, c.lits.to_vec(), c.weight, c.origin))
                    .collect();
                let expected: Vec<(u32, Vec<Lit>, ClauseWeight, ClauseOrigin)> = model
                    .iter()
                    .enumerate()
                    .filter_map(|(i, c)| {
                        c.as_ref()
                            .map(|c| (i as u32, c.lits.clone(), c.weight, c.origin))
                    })
                    .collect();
                prop_assert_eq!(live, expected);
                prop_assert_eq!(store.len(), model.iter().flatten().count());
                prop_assert_eq!(store.num_slots(), model.len());
            }
        }
    }
}
