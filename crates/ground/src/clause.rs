//! Ground clauses: the weighted CNF both backends optimise over.

use std::fmt;

use crate::atoms::AtomId;

/// A literal: an atom or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit {
    /// The atom.
    pub atom: AtomId,
    /// `true` for the atom itself, `false` for its negation.
    pub positive: bool,
}

impl Lit {
    /// Positive literal.
    pub const fn pos(atom: AtomId) -> Lit {
        Lit {
            atom,
            positive: true,
        }
    }

    /// Negative literal.
    pub const fn neg(atom: AtomId) -> Lit {
        Lit {
            atom,
            positive: false,
        }
    }

    /// The opposite literal.
    #[must_use]
    pub const fn negated(self) -> Lit {
        Lit {
            atom: self.atom,
            positive: !self.positive,
        }
    }

    /// Truth value under an assignment.
    #[inline]
    pub fn satisfied_by(self, value: bool) -> bool {
        self.positive == value
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.positive {
            write!(f, "¬")?;
        }
        write!(f, "a{}", self.atom.0)
    }
}

/// Clause weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClauseWeight {
    /// Must be satisfied in every model.
    Hard,
    /// May be violated at this (positive, finite) cost.
    Soft(f64),
}

impl ClauseWeight {
    /// Is this a hard clause?
    pub fn is_hard(self) -> bool {
        matches!(self, ClauseWeight::Hard)
    }

    /// The soft cost, if any.
    pub fn soft(self) -> Option<f64> {
        match self {
            ClauseWeight::Hard => None,
            ClauseWeight::Soft(w) => Some(w),
        }
    }
}

/// Where a ground clause came from, for reporting and for the conflict
/// statistics of the demo's results screen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClauseOrigin {
    /// Grounding of the program formula with this index.
    Formula(usize),
    /// Evidence unit clause for a uTKG fact.
    Evidence,
    /// Closed-world prior on a hidden atom.
    Prior,
}

/// A weighted ground clause (disjunction of literals).
#[derive(Debug, Clone, PartialEq)]
pub struct GroundClause {
    /// The disjuncts. Invariant: sorted, duplicate-free (see
    /// [`GroundClause::new`]).
    pub lits: Vec<Lit>,
    /// Hard or soft weight.
    pub weight: ClauseWeight,
    /// Provenance.
    pub origin: ClauseOrigin,
}

impl GroundClause {
    /// Builds a clause, normalising literal order and dropping duplicate
    /// literals. Returns `None` for tautologies (`a ∨ ¬a`).
    pub fn new(mut lits: Vec<Lit>, weight: ClauseWeight, origin: ClauseOrigin) -> Option<Self> {
        lits.sort_unstable();
        lits.dedup();
        for w in lits.windows(2) {
            if w[0].atom == w[1].atom {
                return None; // contains both a and ¬a
            }
        }
        Some(GroundClause {
            lits,
            weight,
            origin,
        })
    }

    /// Is the clause satisfied by `assignment` (indexed by atom id)?
    pub fn satisfied_by(&self, assignment: &[bool]) -> bool {
        self.lits
            .iter()
            .any(|l| l.satisfied_by(assignment[l.atom.index()]))
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Is the clause empty (unsatisfiable)?
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Signature for deduplication: the sorted literals.
    pub fn signature(&self) -> &[Lit] {
        &self.lits
    }
}

impl fmt::Display for GroundClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{l}")?;
        }
        match self.weight {
            ClauseWeight::Hard => write!(f, " [hard]"),
            ClauseWeight::Soft(w) => write!(f, " [{w}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_and_tautology() {
        let c = GroundClause::new(
            vec![
                Lit::neg(AtomId(3)),
                Lit::pos(AtomId(1)),
                Lit::pos(AtomId(1)),
            ],
            ClauseWeight::Hard,
            ClauseOrigin::Formula(0),
        )
        .unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.lits[0], Lit::pos(AtomId(1)));
        let taut = GroundClause::new(
            vec![Lit::pos(AtomId(1)), Lit::neg(AtomId(1))],
            ClauseWeight::Hard,
            ClauseOrigin::Formula(0),
        );
        assert!(taut.is_none());
    }

    #[test]
    fn satisfaction() {
        let c = GroundClause::new(
            vec![Lit::neg(AtomId(0)), Lit::pos(AtomId(1))],
            ClauseWeight::Soft(1.0),
            ClauseOrigin::Formula(0),
        )
        .unwrap();
        assert!(c.satisfied_by(&[false, false]));
        assert!(c.satisfied_by(&[true, true]));
        assert!(!c.satisfied_by(&[true, false]));
    }

    #[test]
    fn lit_ops() {
        let l = Lit::pos(AtomId(5));
        assert_eq!(l.negated(), Lit::neg(AtomId(5)));
        assert_eq!(l.negated().negated(), l);
        assert!(l.satisfied_by(true));
        assert!(!l.satisfied_by(false));
        assert!(Lit::neg(AtomId(5)).satisfied_by(false));
        assert_eq!(l.to_string(), "a5");
        assert_eq!(l.negated().to_string(), "¬a5");
    }

    #[test]
    fn weights() {
        assert!(ClauseWeight::Hard.is_hard());
        assert_eq!(ClauseWeight::Hard.soft(), None);
        assert_eq!(ClauseWeight::Soft(2.5).soft(), Some(2.5));
    }

    #[test]
    fn display() {
        let c = GroundClause::new(
            vec![Lit::neg(AtomId(0)), Lit::pos(AtomId(1))],
            ClauseWeight::Soft(1.5),
            ClauseOrigin::Formula(0),
        )
        .unwrap();
        assert_eq!(c.to_string(), "¬a0 ∨ a1 [1.5]");
    }
}
