//! Conflict components: partitioning the ground problem into
//! independently solvable sub-problems.
//!
//! Ground clauses only interact through shared atoms, so the transitive
//! closure of "appears in a clause with" partitions the live clauses of
//! a [`ClauseStore`] into **conflict components**
//! whose MAP solutions compose exactly: the optimum of the whole
//! problem is the union of the per-component optima, and the total cost
//! is their sum. On real uTKGs (where conflicts are local — two coach
//! spells of one person, not a global tangle) this turns one large MAP
//! instance into thousands of tiny ones, and — crucially for the
//! streaming path — lets an incremental resolve re-solve *only the
//! components a delta touched*, splicing cached solutions for the rest.
//!
//! Three pieces live here:
//!
//! * [`ComponentIndex`] — a union-find over atom ids, built from the
//!   clause arena and maintained incrementally by
//!   [`Grounding::apply_delta`](crate::Grounding) (clause emissions
//!   union their atoms; retractions mark atoms dirty and are counted so
//!   the index can rebuild once coarsening accumulates — union-find
//!   cannot split, so a retraction-heavy history over-merges until the
//!   next rebuild, which costs accuracy of the partition but never
//!   correctness);
//! * [`Partition`] — one concrete partitioning pass: per-component atom
//!   and clause lists plus the global→local atom id remap table;
//! * [`ComponentView`] — a zero-copy sub-view of the arena for one
//!   component, handed to
//!   [`MapSolver::solve_component`](crate::MapSolver::solve_component);
//!   literals are remapped to the component's dense local id space on
//!   the fly (the remap is monotone in atom id, so normalised clauses
//!   stay normalised).

use tecore_kg::fxhash::FxHashMap;

use crate::atoms::AtomId;
use crate::clause::{ClauseId, ClauseStore, Lit};

/// Union-find over ground atoms with a per-atom dirty flag.
///
/// The flag records "this atom's local problem changed since the last
/// [`ComponentIndex::clear_dirty`]"; a component is dirty when any of
/// its member atoms is. Flags are deliberately per-atom rather than
/// per-root so they survive rebuilds (component identities change, the
/// set of touched atoms does not).
#[derive(Debug, Clone, Default)]
pub struct ComponentIndex {
    /// Union-find parent per atom id.
    parent: Vec<u32>,
    /// Union-by-rank.
    rank: Vec<u8>,
    /// Per-atom "local problem changed" flag.
    dirty: Vec<bool>,
    /// Clause retractions since the last rebuild (union-find cannot
    /// split, so retractions coarsen the partition until a rebuild).
    retracted_since_rebuild: usize,
    /// Component count of the most recent [`ComponentIndex::partition`]
    /// pass (`0` before the first) — lets a clean no-dirty resolve
    /// report its component stats without re-partitioning.
    last_count: usize,
}

impl ComponentIndex {
    /// Builds the index from the live clauses of `clauses`, sized for
    /// `num_atoms` atoms. Every atom starts **dirty**: a fresh index
    /// pairs with no cached per-component state, so everything must be
    /// solved once.
    pub fn build(clauses: &ClauseStore, num_atoms: usize) -> Self {
        let mut index = ComponentIndex {
            parent: (0..num_atoms as u32).collect(),
            rank: vec![0; num_atoms],
            dirty: vec![true; num_atoms],
            retracted_since_rebuild: 0,
            last_count: 0,
        };
        // The arena may name atoms past the caller's count (callers can
        // under-size; clause literals are the source of truth).
        let max_named = clauses
            .iter()
            .flat_map(|c| c.lits.iter().map(|l| l.atom.index() + 1))
            .max()
            .unwrap_or(0);
        index.ensure_atoms(max_named);
        index.union_live_clauses(clauses);
        index
    }

    /// Number of atoms the index covers.
    pub fn num_atoms(&self) -> usize {
        self.parent.len()
    }

    /// Extends the tables for atoms `< n` (fresh atoms are singleton
    /// components, dirty).
    pub fn ensure_atoms(&mut self, n: usize) {
        while self.parent.len() < n {
            self.parent.push(self.parent.len() as u32);
            self.rank.push(0);
            self.dirty.push(true);
        }
    }

    /// Root of `a`'s component, with path compression.
    fn find(&mut self, a: u32) -> u32 {
        let mut root = a;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Compress the walked path.
        let mut cur = a;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
    }

    /// Records an emitted clause: unions its atoms into one component
    /// and marks it dirty.
    pub fn note_emit(&mut self, lits: &[Lit]) {
        let Some(first) = lits.first() else {
            return;
        };
        self.ensure_atoms(lits.iter().map(|l| l.atom.index() + 1).max().unwrap_or(0));
        for l in &lits[1..] {
            self.union(first.atom.0, l.atom.0);
        }
        // One member flag suffices: the whole (now united) component
        // reads as dirty.
        self.dirty[first.atom.index()] = true;
    }

    /// Records a retracted clause: every named atom is marked dirty
    /// (after a rebuild they may land in *different* components, each
    /// of which must re-solve), and the coarsening counter advances.
    pub fn note_retract(&mut self, lits: &[Lit]) {
        self.ensure_atoms(lits.iter().map(|l| l.atom.index() + 1).max().unwrap_or(0));
        for l in lits {
            self.dirty[l.atom.index()] = true;
        }
        self.retracted_since_rebuild += 1;
    }

    /// Marks one atom's component dirty without any structural change —
    /// used for net-zero churn ([`tecore_kg::Delta::churned`]) where the
    /// ground problem is untouched but cached per-component solver
    /// state must be conservatively invalidated.
    pub fn note_touched(&mut self, atom: AtomId) {
        self.ensure_atoms(atom.index() + 1);
        self.dirty[atom.index()] = true;
    }

    /// Is the atom's flag set? (Component dirtiness is evaluated by
    /// [`ComponentIndex::partition`]; this exposes the raw flag for
    /// tests and diagnostics.)
    pub fn is_atom_dirty(&self, atom: AtomId) -> bool {
        self.dirty.get(atom.index()).copied().unwrap_or(true)
    }

    /// Is any atom flagged dirty? (`false` means the clause arena is
    /// byte-identical to the one the last cleared solve ran over.)
    pub fn any_dirty(&self) -> bool {
        self.dirty.iter().any(|&d| d)
    }

    /// Component count of the most recent [`ComponentIndex::partition`]
    /// pass (`0` before the first).
    pub fn component_count(&self) -> usize {
        self.last_count
    }

    /// Clears every dirty flag — called by the solve driver once all
    /// dirty components have been re-solved and their states cached.
    pub fn clear_dirty(&mut self) {
        self.dirty.iter_mut().for_each(|d| *d = false);
    }

    /// Re-derives the union structure from the live clauses when
    /// retraction-driven coarsening has accumulated. Dirty flags are
    /// preserved (they describe atoms, not components).
    fn maybe_rebuild(&mut self, clauses: &ClauseStore) {
        if self.retracted_since_rebuild <= 32 || self.retracted_since_rebuild * 4 <= clauses.len() {
            return;
        }
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i as u32;
        }
        self.rank.iter_mut().for_each(|r| *r = 0);
        self.retracted_since_rebuild = 0;
        self.union_live_clauses(clauses);
    }

    fn union_live_clauses(&mut self, clauses: &ClauseStore) {
        for clause in clauses.iter() {
            if let Some(first) = clause.lits.first() {
                for l in &clause.lits[1..] {
                    self.union(first.atom.0, l.atom.0);
                }
            }
        }
    }

    /// Runs one partitioning pass over the live clauses: groups clauses
    /// and their atoms by component (rebuilding the union structure
    /// first if it has coarsened), assigns dense local atom ids in
    /// ascending global order, and evaluates per-component dirtiness.
    ///
    /// The grouped lists are laid out as two flat CSR tables (one
    /// counting-sort pass each) rather than per-component `Vec`s — the
    /// streaming path re-partitions after every delta, and thousands of
    /// tiny allocations per resolve would dominate the dirty-component
    /// solve itself.
    ///
    /// Atoms in no live clause (dead slots, clause-free atoms) belong
    /// to no component; the solve driver fills their assignment from
    /// the warm state or a default.
    pub fn partition(&mut self, clauses: &ClauseStore) -> Partition {
        // Invariant: every atom named by a clause has been announced
        // (`build`, `note_emit`, `note_retract` and `ensure_atoms` all
        // extend the tables) — the hot path must not re-scan every
        // literal to re-derive the atom count.
        debug_assert!(
            clauses
                .iter()
                .flat_map(|c| c.lits)
                .all(|l| l.atom.index() < self.parent.len()),
            "clause names an unannounced atom"
        );
        self.maybe_rebuild(clauses);
        let n = self.parent.len();
        // Pass 1: number the components (dense, in order of first
        // clause appearance), tag every clause and member atom.
        let mut comp_of: Vec<u32> = vec![u32::MAX; n];
        let mut root_comp: FxHashMap<u32, u32> = FxHashMap::default();
        let mut clause_comp: Vec<(ClauseId, u32)> = Vec::with_capacity(clauses.len());
        let mut clause_counts: Vec<u32> = Vec::new();
        for clause in clauses.iter() {
            let Some(first) = clause.lits.first() else {
                // An empty clause belongs to every and no component;
                // the driver must fall back to monolithic solving.
                self.last_count = 0;
                return Partition::unpartitionable(n);
            };
            let root = self.find(first.atom.0);
            let comp = *root_comp.entry(root).or_insert_with(|| {
                clause_counts.push(0);
                (clause_counts.len() - 1) as u32
            });
            clause_counts[comp as usize] += 1;
            clause_comp.push((clause.id, comp));
            for l in clause.lits {
                debug_assert_eq!(self.find(l.atom.0), root, "clause spans components");
                comp_of[l.atom.index()] = comp;
            }
        }
        let count = clause_counts.len();
        // Counting-sort the clause ids into their CSR rows (clause ids
        // stay in ascending slot order within each row: the fill pass
        // runs in arena order).
        let mut clause_starts: Vec<u32> = Vec::with_capacity(count + 1);
        let mut running = 0u32;
        clause_starts.push(0);
        for &c in &clause_counts {
            running += c;
            clause_starts.push(running);
        }
        let mut clause_fill: Vec<u32> = clause_starts[..count].to_vec();
        let mut clause_ids: Vec<ClauseId> = vec![0; running as usize];
        for (ci, comp) in clause_comp {
            let slot = &mut clause_fill[comp as usize];
            clause_ids[*slot as usize] = ci;
            *slot += 1;
        }
        // Pass 2 (counting sort over atoms, ascending): member lists,
        // dense local ids (ascending with global ids, so the remap is
        // monotone and normalised clauses stay normalised), and the
        // per-atom dirty flags folded into per-component dirtiness.
        let mut atom_counts: Vec<u32> = vec![0; count];
        for &comp in comp_of.iter() {
            if comp != u32::MAX {
                atom_counts[comp as usize] += 1;
            }
        }
        let mut atom_starts: Vec<u32> = Vec::with_capacity(count + 1);
        let mut running = 0u32;
        atom_starts.push(0);
        for &c in &atom_counts {
            running += c;
            atom_starts.push(running);
        }
        let mut atom_fill: Vec<u32> = atom_starts[..count].to_vec();
        let mut atoms: Vec<AtomId> = vec![AtomId(0); running as usize];
        let mut local_id: Vec<u32> = vec![0; n];
        let mut dirty: Vec<bool> = vec![false; count];
        for (a, &comp) in comp_of.iter().enumerate() {
            if comp == u32::MAX {
                continue;
            }
            let slot = &mut atom_fill[comp as usize];
            local_id[a] = *slot - atom_starts[comp as usize];
            atoms[*slot as usize] = AtomId(a as u32);
            *slot += 1;
            if self.dirty[a] {
                dirty[comp as usize] = true;
            }
        }
        self.last_count = count;
        Partition {
            comp_of,
            local_id,
            atoms,
            atom_starts,
            clause_ids,
            clause_starts,
            dirty,
            unpartitionable: false,
        }
    }
}

/// One concrete component partitioning of a clause arena — the output
/// of [`ComponentIndex::partition`], consumed by the solve driver.
/// Member and clause lists live in flat CSR tables; components are
/// contiguous rows.
#[derive(Debug, Clone)]
pub struct Partition {
    /// atom id → component index (`u32::MAX` for atoms in no live
    /// clause).
    comp_of: Vec<u32>,
    /// atom id → dense local id within its component.
    local_id: Vec<u32>,
    /// Member atoms, grouped by component, ascending global id within
    /// each row.
    atoms: Vec<AtomId>,
    /// Row offsets into `atoms` (`len() + 1` entries).
    atom_starts: Vec<u32>,
    /// Live clause ids, grouped by component, ascending slot order
    /// within each row.
    clause_ids: Vec<ClauseId>,
    /// Row offsets into `clause_ids` (`len() + 1` entries).
    clause_starts: Vec<u32>,
    /// Per component: does it contain a dirty atom?
    dirty: Vec<bool>,
    /// `true` when the arena contains a clause that cannot be assigned
    /// to a component (an empty clause); the driver must solve
    /// monolithically.
    unpartitionable: bool,
}

impl Partition {
    fn unpartitionable(n: usize) -> Partition {
        Partition {
            comp_of: vec![u32::MAX; n],
            local_id: vec![0; n],
            atoms: Vec::new(),
            atom_starts: vec![0],
            clause_ids: Vec::new(),
            clause_starts: vec![0],
            dirty: Vec::new(),
            unpartitionable: true,
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.dirty.len()
    }

    /// Is the partition empty (no live clauses)?
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Could the clause arena not be partitioned (an empty clause)?
    pub fn is_unpartitionable(&self) -> bool {
        self.unpartitionable
    }

    /// Is component `i` dirty (touched since the last
    /// [`ComponentIndex::clear_dirty`])?
    pub fn is_dirty(&self, i: usize) -> bool {
        self.dirty[i]
    }

    /// Number of dirty components.
    pub fn dirty_count(&self) -> usize {
        self.dirty.iter().filter(|&&d| d).count()
    }

    /// The component of an atom, if it belongs to one.
    pub fn component_of(&self, atom: AtomId) -> Option<usize> {
        match self.comp_of.get(atom.index()) {
            Some(&c) if c != u32::MAX => Some(c as usize),
            _ => None,
        }
    }

    /// Member atoms of component `i` (ascending global id — the local
    /// id space).
    pub fn atoms(&self, i: usize) -> &[AtomId] {
        &self.atoms[self.atom_starts[i] as usize..self.atom_starts[i + 1] as usize]
    }

    /// Live clause ids of component `i` (ascending slot order).
    pub fn clause_ids(&self, i: usize) -> &[ClauseId] {
        &self.clause_ids[self.clause_starts[i] as usize..self.clause_starts[i + 1] as usize]
    }

    /// A zero-copy sub-view of `store` for component `i`.
    pub fn view<'a>(&'a self, store: &'a ClauseStore, i: usize) -> ComponentView<'a> {
        ComponentView {
            store,
            atoms: self.atoms(i),
            clause_ids: self.clause_ids(i),
            local_id: &self.local_id,
        }
    }
}

/// A zero-copy view of one conflict component: borrows the parent
/// arena and the partition's remap tables; nothing is materialised
/// until a solver asks for a compact sub-store
/// ([`ComponentView::to_store`]).
///
/// Local atom ids are dense (`0..num_atoms()`) and ascend with global
/// ids, so remapping a normalised clause yields a normalised clause.
#[derive(Debug, Clone, Copy)]
pub struct ComponentView<'a> {
    store: &'a ClauseStore,
    atoms: &'a [AtomId],
    clause_ids: &'a [ClauseId],
    local_id: &'a [u32],
}

impl<'a> ComponentView<'a> {
    /// Number of atoms (solver variables) in the component.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Number of live clauses in the component.
    pub fn num_clauses(&self) -> usize {
        self.clause_ids.len()
    }

    /// Member atoms, ascending global id — index `l` is local atom `l`.
    pub fn atoms(&self) -> &'a [AtomId] {
        self.atoms
    }

    /// The component's clause ids in the parent arena.
    pub fn clause_ids(&self) -> &'a [ClauseId] {
        self.clause_ids
    }

    /// Local id of a member atom.
    #[inline]
    pub fn local(&self, atom: AtomId) -> u32 {
        self.local_id[atom.index()]
    }

    /// Global atom behind a local id.
    #[inline]
    pub fn global(&self, local: u32) -> AtomId {
        self.atoms[local as usize]
    }

    /// Materialises the component as a compact [`ClauseStore`] in the
    /// local atom id space — the input the MaxSAT/HL-MRF builders
    /// consume. This is the only copying step of the component
    /// pipeline, done per *dirty* component only, and it copies exactly
    /// the component's literals once.
    pub fn to_store(&self) -> ClauseStore {
        let total_lits: usize = self
            .clause_ids
            .iter()
            .map(|&ci| self.store.clause_len(ci))
            .sum();
        let mut out = ClauseStore::with_capacity(self.clause_ids.len(), total_lits);
        let mut buf: Vec<Lit> = Vec::with_capacity(8);
        for &ci in self.clause_ids {
            buf.clear();
            buf.extend(self.store.lits(ci).iter().map(|l| Lit {
                atom: AtomId(self.local(l.atom)),
                positive: l.positive,
            }));
            out.push_lits(&buf, self.store.weight(ci), self.store.origin(ci));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::{ClauseOrigin, ClauseWeight, GroundClause};

    fn soft(lits: Vec<Lit>, w: f64) -> GroundClause {
        GroundClause::new(lits, ClauseWeight::Soft(w), ClauseOrigin::Evidence).unwrap()
    }

    fn store(clauses: &[GroundClause]) -> ClauseStore {
        ClauseStore::from_ground_clauses(clauses)
    }

    #[test]
    fn two_islands_partition() {
        // {0,1} and {2,3} are independent islands.
        let s = store(&[
            soft(vec![Lit::pos(AtomId(0)), Lit::neg(AtomId(1))], 1.0),
            soft(vec![Lit::pos(AtomId(1))], 0.5),
            soft(vec![Lit::pos(AtomId(2)), Lit::pos(AtomId(3))], 2.0),
        ]);
        let mut index = ComponentIndex::build(&s, 4);
        let p = index.partition(&s);
        assert_eq!(p.len(), 2);
        assert!(!p.is_unpartitionable());
        assert_eq!(p.component_of(AtomId(0)), p.component_of(AtomId(1)));
        assert_eq!(p.component_of(AtomId(2)), p.component_of(AtomId(3)));
        assert_ne!(p.component_of(AtomId(0)), p.component_of(AtomId(2)));
        // Fresh index: everything dirty.
        assert_eq!(p.dirty_count(), 2);
    }

    #[test]
    fn view_remaps_monotonically_and_materialises() {
        let s = store(&[
            soft(vec![Lit::pos(AtomId(5)), Lit::neg(AtomId(9))], 1.0),
            soft(vec![Lit::neg(AtomId(5))], 0.25),
        ]);
        let mut index = ComponentIndex::build(&s, 10);
        let p = index.partition(&s);
        assert_eq!(p.len(), 1);
        let comp = p.component_of(AtomId(5)).unwrap();
        let view = p.view(&s, comp);
        assert_eq!(view.num_atoms(), 2);
        assert_eq!(view.num_clauses(), 2);
        assert_eq!(view.atoms(), &[AtomId(5), AtomId(9)]);
        assert_eq!(view.local(AtomId(5)), 0);
        assert_eq!(view.local(AtomId(9)), 1);
        assert_eq!(view.global(1), AtomId(9));
        let sub = view.to_store();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.lits(0), &[Lit::pos(AtomId(0)), Lit::neg(AtomId(1))]);
        assert_eq!(sub.lits(1), &[Lit::neg(AtomId(0))]);
        assert_eq!(sub.weight(1), ClauseWeight::Soft(0.25));
    }

    #[test]
    fn emission_merges_and_dirties_retraction_dirties_all() {
        let s = store(&[
            soft(vec![Lit::pos(AtomId(0))], 1.0),
            soft(vec![Lit::pos(AtomId(1))], 1.0),
        ]);
        let mut index = ComponentIndex::build(&s, 2);
        index.clear_dirty();
        assert!(!index.is_atom_dirty(AtomId(0)));

        // Emitting a bridge clause merges the islands and dirties them.
        let mut s2 = s.clone();
        let bridge = soft(vec![Lit::neg(AtomId(0)), Lit::neg(AtomId(1))], 2.0);
        let id = s2.push(bridge.clone());
        index.note_emit(&bridge.lits);
        let p = index.partition(&s2);
        assert_eq!(p.len(), 1);
        assert!(p.is_dirty(0));
        assert_eq!(p.clause_ids(0), &[0, 1, id]);

        // Retraction marks every named atom dirty.
        index.clear_dirty();
        s2.retract(id);
        index.note_retract(&bridge.lits);
        assert!(index.is_atom_dirty(AtomId(0)));
        assert!(index.is_atom_dirty(AtomId(1)));
        // The partition stays coarse (union-find cannot split) but both
        // pseudo-merged atoms read dirty, so nothing stale survives.
        let p = index.partition(&s2);
        assert_eq!(p.dirty_count(), p.len());
    }

    #[test]
    fn rebuild_splits_after_heavy_retraction() {
        // A chain of bridges 0-1, 1-2, ..., all retracted again: after
        // enough churn the index re-derives singleton components.
        let units: Vec<GroundClause> = (0..40)
            .map(|i| soft(vec![Lit::pos(AtomId(i))], 1.0))
            .collect();
        let mut s = store(&units);
        let mut index = ComponentIndex::build(&s, 40);
        let mut bridges = Vec::new();
        for i in 0..39u32 {
            let bridge = soft(vec![Lit::neg(AtomId(i)), Lit::pos(AtomId(i + 1))], 1.0);
            let id = s.push(bridge.clone());
            index.note_emit(&bridge.lits);
            bridges.push((id, bridge));
        }
        assert_eq!(index.partition(&s).len(), 1);
        for (id, bridge) in bridges {
            s.retract(id);
            index.note_retract(&bridge.lits);
        }
        // 39 retractions > 32 and > live/4 (40 units live): rebuild.
        let p = index.partition(&s);
        assert_eq!(p.len(), 40, "rebuild recovers the fine partition");
    }

    #[test]
    fn empty_clause_is_unpartitionable() {
        let mut s = ClauseStore::new();
        s.push_lits(&[], ClauseWeight::Hard, ClauseOrigin::Evidence);
        let mut index = ComponentIndex::build(&s, 0);
        let p = index.partition(&s);
        assert!(p.is_unpartitionable());
    }

    #[test]
    fn churn_touch_dirties_without_structure_change() {
        let s = store(&[soft(vec![Lit::pos(AtomId(0))], 1.0)]);
        let mut index = ComponentIndex::build(&s, 1);
        index.clear_dirty();
        assert_eq!(index.partition(&s).dirty_count(), 0);
        index.note_touched(AtomId(0));
        let p = index.partition(&s);
        assert_eq!(p.dirty_count(), 1);
        assert_eq!(p.len(), 1);
    }
}
