//! Incremental maintenance of a [`Grounding`] under uTKG deltas.
//!
//! A batch [`crate::ground`] run is a pure function of the graph;
//! TeCoRe's interactive loop (edit the uTKG, re-run the reasoner) would
//! pay that full cost for every single-fact edit. This module instead
//! treats the grounding as a *materialised view* and maintains it under
//! a [`Delta`]:
//!
//! * **removed facts** weaken their evidence atom (or, when the last
//!   supporting fact goes, demote it to hidden / kill it), and every
//!   clause touching a killed atom is retracted — cascading through
//!   derived atoms whose last deriving clause disappears;
//! * **added facts** merge into an existing atom, revive a dead one, or
//!   create a fresh one; the semi-naive binding search then re-runs
//!   restricted to the *set* of new/revived atoms
//!   (`Frontier::Set` in the grounder), so only matches that touch
//!   the delta are enumerated.
//!
//! Atom ids are never reused and dead atoms keep their slot, so solver
//! assignment vectors stay index-stable across deltas — which is what
//! makes warm-starting (`SolveOpts::warm_start`) possible. A full
//! re-ground of the final graph remains the semantic oracle: the MAP
//! state over an incrementally maintained grounding must partition the
//! facts exactly as the MAP state over a cold grounding does (the
//! `incremental_conformance` suite asserts this for every backend).

use std::time::{Duration, Instant};

use tecore_kg::{Delta, UtkGraph};
use tecore_logic::formula::Weight;

use crate::atoms::{AtomId, AtomKind};
use crate::clause::{ClauseId, ClauseOrigin, ClauseWeight, GroundClause, Lit};
use crate::grounder::{
    collect_match, enumerate_matches, evidence_unit, prior_unit, Frontier, GroundConfig, Grounding,
    HeadKey,
};
use crate::planner::{self, JoinPlanner};

/// Statistics of one [`Grounding::apply_delta`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaStats {
    /// Facts added by the delta.
    pub facts_added: usize,
    /// Facts removed by the delta.
    pub facts_removed: usize,
    /// Clauses retracted (formula groundings, units and priors).
    pub clauses_retracted: usize,
    /// Clauses emitted.
    pub clauses_emitted: usize,
    /// Atoms created or revived.
    pub atoms_created: usize,
    /// Atoms killed (including cascade kills of unsupported
    /// derivations).
    pub atoms_killed: usize,
    /// Semi-naive rounds run over the delta frontier.
    pub rounds: usize,
    /// Wall-clock time of the delta application.
    pub elapsed: Duration,
}

/// Outcome of detaching one removed fact from its evidence atom.
enum Detach {
    /// Other facts still assert the atom; its weight changed.
    Weakened,
    /// The last supporting fact went away.
    Exhausted,
}

impl Grounding {
    /// Updates the materialised grounding to reflect `delta`, re-running
    /// the binding search only around the changed facts.
    ///
    /// `graph` must be the graph at `delta.to_epoch` and `config` the
    /// configuration the grounding was built with (the pipeline passes
    /// the same caps-adjusted config it grounds with, so lazily-grounded
    /// constraints stay deferred across deltas).
    ///
    /// # Panics
    ///
    /// Panics when `delta.from_epoch` is not this grounding's epoch —
    /// applying a delta twice, or one drawn from a different graph
    /// snapshot, would silently corrupt the materialisation, and the
    /// epoch field exists precisely to catch that (in release builds
    /// too).
    pub fn apply_delta(
        &mut self,
        graph: &UtkGraph,
        delta: &Delta,
        config: &GroundConfig,
    ) -> DeltaStats {
        let start = Instant::now();
        assert_eq!(
            self.epoch, delta.from_epoch,
            "delta must start at the grounding's epoch"
        );
        self.ensure_dep_index();
        self.maybe_replan(graph, config);
        let mut stats = DeltaStats {
            facts_added: delta.added.len(),
            facts_removed: delta.removed.len(),
            ..DeltaStats::default()
        };
        let mut kills: Vec<AtomId> = Vec::new();
        let mut unit_dirty: Vec<AtomId> = Vec::new();

        // --- 1. Removed facts: weaken / demote / kill their atoms. ---
        for &fid in &delta.removed {
            let Some(aid) = self.fact_atoms.remove(&fid) else {
                continue;
            };
            let outcome = match self.store.kind_mut(aid) {
                AtomKind::Evidence { facts, log_odds } => {
                    facts.retain(|&f| f != fid);
                    if facts.is_empty() {
                        Detach::Exhausted
                    } else {
                        // Recompute the combined weight from the
                        // surviving facts (no float drift from repeated
                        // subtraction).
                        *log_odds = facts
                            .iter()
                            .filter_map(|&f| graph.fact(f))
                            .map(|f| f.confidence.log_odds())
                            .sum();
                        Detach::Weakened
                    }
                }
                AtomKind::Hidden => unreachable!("fact_atoms maps facts to evidence atoms"),
            };
            match outcome {
                Detach::Weakened => unit_dirty.push(aid),
                Detach::Exhausted => {
                    if self.support[aid.index()] > 0 {
                        // Still derived by a live rule grounding: the
                        // atom survives as hidden (exactly what a cold
                        // re-ground would produce).
                        *self.store.kind_mut(aid) = AtomKind::Hidden;
                        if let Some(j) = self.find_unit(aid, ClauseOrigin::Evidence) {
                            self.retract_clause(j, &mut kills, &mut stats);
                        }
                        if config.hidden_prior > 0.0 {
                            let (lit, weight) = prior_unit(aid, config);
                            self.emit_unit(lit, weight, ClauseOrigin::Prior, &mut stats);
                        }
                    } else {
                        kills.push(aid);
                    }
                }
            }
        }

        // --- 2. Cascade kills: retract every clause touching a dead
        // atom; derivations losing their last support die too. ---
        let mut next_kill = 0;
        while next_kill < kills.len() {
            let aid = kills[next_kill];
            next_kill += 1;
            if !self.store.is_alive(aid) {
                continue; // already processed via another path
            }
            self.store.kill(aid);
            stats.atoms_killed += 1;
            while let Some(&ci) = self.atom_clauses[aid.index()].last() {
                self.retract_clause(ci, &mut kills, &mut stats);
            }
        }

        // --- 3. Added facts: merge / upgrade / revive / create their
        // evidence atoms. ---
        let mut frontier: Vec<bool> = vec![false; self.store.len()];
        let mut frontier_nonempty = false;
        for &fid in &delta.added {
            let Some(fact) = graph.fact(fid) else {
                continue;
            };
            // Re-map the fact's terms into the grounding dictionary: the
            // graph may have interned new terms after grounding appended
            // its head constants, so raw symbol ids can collide.
            let s = self.dict.intern(graph.dict().resolve(fact.subject));
            let p = self.dict.intern(graph.dict().resolve(fact.predicate));
            let o = self.dict.intern(graph.dict().resolve(fact.object));
            let log_odds = fact.confidence.log_odds();
            let existing = self.store.lookup(s, p, o, fact.interval);
            let was_alive = existing.is_some_and(|id| self.store.is_alive(id));
            let was_hidden = existing
                .filter(|&id| self.store.is_alive(id))
                .is_some_and(|id| !self.store.atom(id).kind.is_evidence());
            let aid = self
                .store
                .intern_evidence(s, p, o, fact.interval, log_odds, fid);
            if aid.index() >= self.atom_clauses.len() {
                self.atom_clauses.push(Vec::new());
                self.support.push(0);
            }
            if was_hidden {
                // Hidden atom upgraded to evidence: its closed-world
                // prior no longer applies.
                if let Some(j) = self.find_unit(aid, ClauseOrigin::Prior) {
                    self.retract_clause(j, &mut kills, &mut stats);
                }
            }
            if !was_alive {
                // Fresh or revived: its matches must be (re-)enumerated.
                if aid.index() >= frontier.len() {
                    frontier.resize(aid.index() + 1, false);
                }
                if !frontier[aid.index()] {
                    frontier[aid.index()] = true;
                    frontier_nonempty = true;
                    stats.atoms_created += 1;
                }
            }
            self.fact_atoms.insert(fid, aid);
            unit_dirty.push(aid);
        }

        // --- 3b. Net-zero churn: a fact inserted *and* removed inside
        // the delta window leaves the ground problem untouched, but if
        // its statement revived (aliased) a live atom the component
        // cache must treat that atom's component as touched —
        // otherwise a cached per-component warm state can go stale
        // (see `Delta::churned`). Terms are *looked up*, never
        // interned: a netted fact must not grow the dictionary. ---
        if let Some(index) = &mut self.components {
            for &fid in &delta.churned {
                let Some(fact) = graph.arena_fact(fid) else {
                    continue;
                };
                let (Some(s), Some(p), Some(o)) = (
                    self.dict.lookup(graph.dict().resolve(fact.subject)),
                    self.dict.lookup(graph.dict().resolve(fact.predicate)),
                    self.dict.lookup(graph.dict().resolve(fact.object)),
                ) else {
                    continue;
                };
                if let Some(aid) = self.store.lookup(s, p, o, fact.interval) {
                    index.note_touched(aid);
                }
            }
        }

        // --- 4. Refresh the evidence unit clauses of weight-changed
        // atoms. ---
        if config.emit_evidence_units {
            unit_dirty.sort_unstable();
            unit_dirty.dedup();
            for aid in unit_dirty {
                if !self.store.is_alive(aid) {
                    continue;
                }
                let AtomKind::Evidence { log_odds, .. } = &self.store.atom(aid).kind else {
                    continue; // demoted in the same delta
                };
                let log_odds = *log_odds;
                if let Some(j) = self.find_unit(aid, ClauseOrigin::Evidence) {
                    self.retract_clause(j, &mut kills, &mut stats);
                }
                let (lit, weight) = evidence_unit(aid, log_odds, config);
                self.emit_unit(lit, weight, ClauseOrigin::Evidence, &mut stats);
            }
        }
        debug_assert!(next_kill == kills.len(), "unit retraction never kills");

        // --- 5. Semi-naive rounds restricted to the frontier set. ---
        let active: Vec<usize> = self
            .program
            .formulas
            .iter()
            .enumerate()
            .filter(|(_, cf)| cf.consequent.derives() || config.ground_constraints)
            .map(|(i, _)| i)
            .collect();
        let mut rounds = 0;
        while frontier_nonempty && rounds < config.max_rounds {
            rounds += 1;
            stats.rounds = rounds;
            let horizon = self.store.len();
            let mut pending: Vec<(usize, Vec<AtomId>, Option<HeadKey>)> = Vec::new();
            let mut round_matches: Vec<(usize, usize)> = Vec::with_capacity(active.len());
            {
                let store = &self.store;
                let alive = |id: AtomId| store.is_alive(id);
                for &fi in &active {
                    let cf = &self.program.formulas[fi];
                    let mut matches = 0usize;
                    for pos in 0..cf.body.len() {
                        enumerate_matches(
                            store,
                            cf,
                            horizon,
                            Frontier::Set {
                                new: &frontier,
                                pos,
                            },
                            Some(&alive),
                            &mut |chosen, bindings| {
                                matches += 1;
                                collect_match(cf, chosen, bindings, store, &mut pending);
                            },
                        );
                    }
                    round_matches.push((fi, matches));
                }
            }
            for (fi, matches) in round_matches {
                if let Some(plan) = self.plans.get_mut(fi) {
                    plan.actual_matches += matches;
                }
            }
            let mut next: Vec<bool> = Vec::new();
            frontier_nonempty = false;
            for (fidx, body, head) in pending {
                let mut lits: Vec<Lit> = body.iter().map(|&a| Lit::neg(a)).collect();
                if let Some(key) = head {
                    let (head_id, newly_live) = self.store.intern_hidden(
                        key.subject,
                        key.predicate,
                        key.object,
                        key.interval,
                    );
                    if head_id.index() >= self.atom_clauses.len() {
                        self.atom_clauses.push(Vec::new());
                        self.support.push(0);
                    }
                    if newly_live {
                        stats.atoms_created += 1;
                        if config.hidden_prior > 0.0 {
                            let (lit, weight) = prior_unit(head_id, config);
                            self.emit_unit(lit, weight, ClauseOrigin::Prior, &mut stats);
                        }
                        if head_id.index() >= next.len() {
                            next.resize(head_id.index() + 1, false);
                        }
                        next[head_id.index()] = true;
                        frontier_nonempty = true;
                    }
                    lits.push(Lit::pos(head_id));
                }
                let weight = match self.program.formulas[fidx].weight {
                    Weight::Hard => ClauseWeight::Hard,
                    Weight::Soft(w) => ClauseWeight::Soft(w),
                };
                if let Some(clause) = GroundClause::new(lits, weight, ClauseOrigin::Formula(fidx)) {
                    if self.seen.insert((fidx, clause.lits.clone())) {
                        self.emit_clause(clause, &mut stats);
                    }
                }
            }
            frontier = next;
        }

        self.epoch = delta.to_epoch;
        stats.elapsed = start.elapsed();
        stats
    }

    /// Re-plans the compiled program's join orders when the graph's
    /// per-predicate fact counts have drifted past
    /// [`GroundConfig::replan_drift`] since the current plans were
    /// chosen. Join orders only move work, never change the grounded
    /// clause multiset, so swapping them mid-materialisation is safe.
    fn maybe_replan(&mut self, graph: &UtkGraph, config: &GroundConfig) {
        if config.planner != JoinPlanner::CostBased || graph.cardinalities().is_empty() {
            return;
        }
        let fp = planner::fingerprint(graph.cardinalities());
        if planner::drift(&self.plan_fingerprint, &fp) <= config.replan_drift {
            return;
        }
        let new_plans =
            planner::plan_program(&mut self.program, graph.cardinalities(), config.planner);
        // Keep the observed match counters across re-plans: they report
        // lifetime work, not per-plan work.
        for (new, old) in new_plans.iter().zip(&self.plans) {
            debug_assert_eq!(new.formula, old.formula);
        }
        let actuals: Vec<usize> = self.plans.iter().map(|p| p.actual_matches).collect();
        self.plans = new_plans;
        for (plan, actual) in self.plans.iter_mut().zip(actuals) {
            plan.actual_matches = actual;
        }
        self.plan_fingerprint = fp;
    }

    /// Materialises the atom→clause dependency index and the per-atom
    /// derivation-support counters. Built on the first delta rather
    /// than at grounding time, so batch resolves never pay for it; the
    /// incremental emit/retract paths keep it current from then on.
    fn ensure_dep_index(&mut self) {
        if self.dep_built {
            return;
        }
        self.atom_clauses = vec![Vec::new(); self.store.len()];
        self.support = vec![0u32; self.store.len()];
        for clause in self.clauses.iter() {
            let is_formula = matches!(clause.origin, ClauseOrigin::Formula(_));
            for lit in clause.lits {
                self.atom_clauses[lit.atom.index()].push(clause.id);
                if lit.positive && is_formula {
                    self.support[lit.atom.index()] += 1;
                }
            }
        }
        self.dep_built = true;
    }

    /// Id of the single-literal clause of `origin` on `aid`, if any.
    fn find_unit(&self, aid: AtomId, origin: ClauseOrigin) -> Option<ClauseId> {
        self.atom_clauses[aid.index()]
            .iter()
            .copied()
            .find(|&ci| self.clauses.origin(ci) == origin && self.clauses.clause_len(ci) == 1)
    }

    /// Registers an already-pushed clause with the atom→clause index
    /// and the derivation-support counters, keeping the component index
    /// (when materialised) in step.
    fn register_clause(&mut self, id: ClauseId, stats: &mut DeltaStats) {
        let is_formula = matches!(self.clauses.origin(id), ClauseOrigin::Formula(_));
        for lit in self.clauses.lits(id) {
            self.atom_clauses[lit.atom.index()].push(id);
            if lit.positive && is_formula {
                self.support[lit.atom.index()] += 1;
            }
        }
        if let Some(index) = &mut self.components {
            index.note_emit(self.clauses.lits(id));
        }
        stats.clauses_emitted += 1;
    }

    /// Appends a clause to the arena (reviving a tombstoned slot when
    /// one is free), maintaining the dependency index.
    fn emit_clause(&mut self, clause: GroundClause, stats: &mut DeltaStats) {
        let id = self.clauses.push(clause);
        self.register_clause(id, stats);
    }

    /// Appends a unit clause without building a `GroundClause`.
    fn emit_unit(
        &mut self,
        lit: Lit,
        weight: ClauseWeight,
        origin: ClauseOrigin,
        stats: &mut DeltaStats,
    ) {
        let id = self.clauses.push_lits(&[lit], weight, origin);
        self.register_clause(id, stats);
    }

    /// Retracts clause `j`: tombstones its arena slot (no other clause
    /// id moves), reversing its index entries, dedup signature and
    /// support contributions; derivations losing their last support are
    /// queued on `kills`.
    fn retract_clause(&mut self, j: ClauseId, kills: &mut Vec<AtomId>, stats: &mut DeltaStats) {
        stats.clauses_retracted += 1;
        if let Some(index) = &mut self.components {
            index.note_retract(self.clauses.lits(j));
        }
        for lit in self.clauses.lits(j) {
            let entries = &mut self.atom_clauses[lit.atom.index()];
            let pos = entries
                .iter()
                .position(|&ci| ci == j)
                .expect("clause index consistent");
            entries.swap_remove(pos);
        }
        if let ClauseOrigin::Formula(fidx) = self.clauses.origin(j) {
            self.seen.remove(&(fidx, self.clauses.lits(j).to_vec()));
            for lit in self.clauses.lits(j) {
                if lit.positive {
                    let support = &mut self.support[lit.atom.index()];
                    *support -= 1;
                    if *support == 0
                        && self.store.is_alive(lit.atom)
                        && !self.store.atom(lit.atom).kind.is_evidence()
                    {
                        kills.push(lit.atom);
                    }
                }
            }
        }
        self.clauses.retract(j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grounder::ground;
    use tecore_kg::parser::parse_graph;
    use tecore_kg::UtkGraph;
    use tecore_logic::LogicProgram;
    use tecore_temporal::Interval;

    const PROGRAM: &str = "\
        f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5\n\
        c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf\n";

    fn program() -> LogicProgram {
        LogicProgram::parse(PROGRAM).unwrap()
    }

    /// Canonical live-clause multiset: (origin-ish, rendered lits)
    /// sorted, with lits rendered through atom keys so two groundings
    /// with different atom id layouts compare equal.
    fn canonical_clauses(g: &Grounding) -> Vec<String> {
        let render_atom = |id: AtomId| {
            let a = g.store.atom(id);
            format!(
                "{}|{}|{}|{}",
                g.dict.resolve(a.subject),
                g.dict.resolve(a.predicate),
                g.dict.resolve(a.object),
                a.interval
            )
        };
        let mut out: Vec<String> = g
            .clauses
            .iter()
            .map(|c| {
                let mut lits: Vec<String> = c
                    .lits
                    .iter()
                    .map(|l| {
                        format!(
                            "{}{}",
                            if l.positive { "+" } else { "-" },
                            render_atom(l.atom)
                        )
                    })
                    .collect();
                lits.sort();
                let weight = match c.weight {
                    ClauseWeight::Hard => "hard".to_string(),
                    ClauseWeight::Soft(w) => format!("{w:.9}"),
                };
                let origin = match c.origin {
                    ClauseOrigin::Formula(i) => format!("f{i}"),
                    ClauseOrigin::Evidence => "ev".into(),
                    ClauseOrigin::Prior => "pr".into(),
                };
                format!("{origin} {weight} {}", lits.join(" ∨ "))
            })
            .collect();
        out.sort();
        out
    }

    /// Applies the pending delta of `graph` to `g` and asserts the
    /// result is clause-for-clause equivalent to a cold re-ground.
    fn assert_matches_cold(g: &mut Grounding, graph: &mut UtkGraph, config: &GroundConfig) {
        let delta = graph.since(g.epoch()).expect("history retained");
        g.apply_delta(graph, &delta, config);
        let cold = ground(graph, &program(), config).unwrap();
        assert_eq!(canonical_clauses(g), canonical_clauses(&cold));
        // Live-atom population agrees too.
        assert_eq!(g.store.evidence_count(), cold.store.evidence_count());
        assert_eq!(g.store.hidden_count(), cold.store.hidden_count());
    }

    fn iv(a: i64, b: i64) -> Interval {
        Interval::new(a, b).unwrap()
    }

    #[test]
    fn add_conflicting_fact_emits_constraint_clause() {
        let mut graph = parse_graph("(CR, coach, Chelsea, [2000,2004]) 0.9\n").unwrap();
        let config = GroundConfig::default();
        let mut g = ground(&graph, &program(), &config).unwrap();
        graph
            .insert("CR", "coach", "Napoli", iv(2001, 2003), 0.6)
            .unwrap();
        let delta = graph.since(g.epoch()).unwrap();
        let stats = g.apply_delta(&graph, &delta, &config);
        assert_eq!(stats.facts_added, 1);
        assert_eq!(stats.atoms_created, 1);
        // One new clash clause + one new evidence unit.
        assert!(
            g.clauses
                .iter()
                .any(|c| c.origin == ClauseOrigin::Formula(1) && c.weight.is_hard()),
            "clash clause emitted"
        );
        let cold = ground(&graph, &program(), &config).unwrap();
        assert_eq!(canonical_clauses(&g), canonical_clauses(&cold));
    }

    #[test]
    fn remove_fact_retracts_its_clauses_and_cascades() {
        let mut graph = parse_graph(
            "(CR, playsFor, Palermo, [1984,1986]) 0.5\n\
             (CR, coach, Chelsea, [2000,2004]) 0.9\n\
             (CR, coach, Napoli, [2001,2003]) 0.6\n",
        )
        .unwrap();
        let config = GroundConfig::default();
        let mut g = ground(&graph, &program(), &config).unwrap();
        assert_eq!(g.store.hidden_count(), 1, "worksFor derived");

        // Removing the playsFor fact kills the derived worksFor atom.
        let plays = graph.dict().lookup("playsFor").unwrap();
        let fid = graph.facts_with_predicate(plays).next().unwrap().0;
        graph.remove(fid).unwrap();
        let delta = graph.since(g.epoch()).unwrap();
        let stats = g.apply_delta(&graph, &delta, &config);
        assert_eq!(stats.atoms_killed, 2, "evidence atom + derived atom");
        assert_eq!(g.store.hidden_count(), 0);
        let cold = ground(&graph, &program(), &config).unwrap();
        assert_eq!(canonical_clauses(&g), canonical_clauses(&cold));
    }

    #[test]
    fn insert_remove_roundtrip_restores_the_grounding() {
        let mut graph = parse_graph(
            "(CR, coach, Chelsea, [2000,2004]) 0.9\n\
             (CR, playsFor, Palermo, [1984,1986]) 0.5\n",
        )
        .unwrap();
        let config = GroundConfig::default();
        let mut g = ground(&graph, &program(), &config).unwrap();
        let before = canonical_clauses(&g);

        let fid = graph
            .insert("CR", "coach", "Napoli", iv(2001, 2003), 0.6)
            .unwrap();
        assert_matches_cold(&mut g, &mut graph, &config);
        graph.remove(fid).unwrap();
        assert_matches_cold(&mut g, &mut graph, &config);
        assert_eq!(canonical_clauses(&g), before, "round-trip is lossless");
    }

    #[test]
    fn duplicate_statement_merges_and_unmerges() {
        let mut graph = parse_graph("(a, coach, b, [1,5]) 0.8\n").unwrap();
        let config = GroundConfig::default();
        let mut g = ground(&graph, &program(), &config).unwrap();
        // Same statement again: merges into the same atom.
        let dup = graph.insert("a", "coach", "b", iv(1, 5), 0.7).unwrap();
        assert_matches_cold(&mut g, &mut graph, &config);
        assert_eq!(g.store.evidence_count(), 1);
        graph.remove(dup).unwrap();
        assert_matches_cold(&mut g, &mut graph, &config);
    }

    #[test]
    fn new_terms_after_grounding_do_not_collide_with_head_constants() {
        // The grounding dict appended `worksFor`; a post-grounding graph
        // term must not alias it.
        let mut graph = parse_graph("(CR, playsFor, Palermo, [1984,1986]) 0.5\n").unwrap();
        let config = GroundConfig::default();
        let mut g = ground(&graph, &program(), &config).unwrap();
        graph
            .insert("Eriksson", "coach", "Lazio", iv(1997, 2001), 0.9)
            .unwrap();
        graph
            .insert("Eriksson", "coach", "England", iv(2001, 2006), 0.8)
            .unwrap();
        assert_matches_cold(&mut g, &mut graph, &config);
    }

    #[test]
    fn rule_chain_cascades_through_rounds() {
        let chain = LogicProgram::parse(
            "f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5\n\
             f2: quad(x, worksFor, y, t) ^ quad(y, locatedIn, z, t') ^ overlap(t, t') \
                 -> quad(x, livesIn, z, t ∩ t') w = 1.6\n",
        )
        .unwrap();
        let mut graph = parse_graph("(Palermo, locatedIn, Sicily, [1900,2020]) 0.9\n").unwrap();
        let config = GroundConfig::default();
        let mut g = ground(&graph, &chain, &config).unwrap();
        assert_eq!(g.store.hidden_count(), 0);

        // One insert triggers two derivation rounds (worksFor, livesIn).
        graph
            .insert("CR", "playsFor", "Palermo", iv(1984, 1986), 0.5)
            .unwrap();
        let delta = graph.since(g.epoch()).unwrap();
        let stats = g.apply_delta(&graph, &delta, &config);
        assert!(stats.rounds >= 2, "chained rounds: {stats:?}");
        assert_eq!(g.store.hidden_count(), 2);
        let cold = ground(&graph, &chain, &config).unwrap();
        assert_eq!(g.store.evidence_count(), cold.store.evidence_count());
        assert_eq!(g.store.hidden_count(), cold.store.hidden_count());

        // And removing it unwinds the whole chain.
        let plays = graph.dict().lookup("playsFor").unwrap();
        let fid = graph.facts_with_predicate(plays).next().unwrap().0;
        graph.remove(fid).unwrap();
        let delta = graph.since(g.epoch()).unwrap();
        g.apply_delta(&graph, &delta, &config);
        assert_eq!(g.store.hidden_count(), 0);
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let graph = parse_graph("(a, coach, b, [1,5]) 0.8\n").unwrap();
        let config = GroundConfig::default();
        let mut g = ground(&graph, &program(), &config).unwrap();
        let before = canonical_clauses(&g);
        let delta = graph.since(g.epoch()).unwrap();
        assert!(delta.is_empty());
        let stats = g.apply_delta(&graph, &delta, &config);
        assert_eq!(stats.clauses_emitted + stats.clauses_retracted, 0);
        assert_eq!(canonical_clauses(&g), before);
    }

    #[test]
    fn lazy_constraint_config_stays_deferred_across_deltas() {
        let mut graph = parse_graph("(CR, coach, Chelsea, [2000,2004]) 0.9\n").unwrap();
        let config = GroundConfig {
            ground_constraints: false,
            ..GroundConfig::default()
        };
        let mut g = ground(&graph, &program(), &config).unwrap();
        graph
            .insert("CR", "coach", "Napoli", iv(2001, 2003), 0.6)
            .unwrap();
        let delta = graph.since(g.epoch()).unwrap();
        g.apply_delta(&graph, &delta, &config);
        assert!(
            !g.clauses
                .iter()
                .any(|c| matches!(c.origin, ClauseOrigin::Formula(_))),
            "constraints stay lazily grounded"
        );
    }
}
