//! Cost-based join-order planning over live cardinality statistics.
//!
//! The compiler's syntactic heuristic ([`crate::compile`]) orders a
//! formula body by constants and shared variables without ever looking
//! at the data. On skewed predicate distributions that can start a join
//! at the fattest predicate and enumerate its whole extension. This
//! module re-plans each body at *ground time* from the graph's
//! [`Cardinalities`]: per-step lookup cost and match cardinality are
//! estimated from per-predicate fact counts and distinct subject/object
//! counts, and the cheapest permutation is searched exactly (Selinger
//! style bitmask DP) for bodies of up to [`EXACT_PLAN_LIMIT`] atoms and
//! greedily with one step of lookahead beyond.
//!
//! Correctness does not depend on the plan: the match enumerator's
//! semi-naive frontier and the clause dedup signature are both keyed on
//! body *positions*, so any permutation grounds the same clause
//! multiset. Planning only moves work, never results.

use tecore_kg::{Cardinalities, Symbol};
use tecore_logic::term::VarId;

use crate::compile::{schedule_conditions, CPattern, CTerm, CTime, CompiledProgram};

/// Which join planner the grounder uses
/// ([`crate::GroundConfig::planner`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinPlanner {
    /// Plan each body from live cardinality statistics (the default).
    /// Falls back to the syntactic order on stat-less (empty) graphs.
    #[default]
    CostBased,
    /// Keep the compiler's syntactic greedy order (constants + shared
    /// variables). The data-independent baseline.
    Syntactic,
}

/// The join plan chosen for one formula, with its cost-model estimate
/// and (filled in while grounding) the observed match count — surfaced
/// through `DebugStats::plans` for observability.
#[derive(Debug, Clone, PartialEq)]
pub struct FormulaPlan {
    /// Index of the formula in the program.
    pub formula: usize,
    /// Source name (`f1`, `c2`, ...).
    pub name: Option<String>,
    /// The body permutation grounding actually used.
    pub join_order: Vec<usize>,
    /// Was this order chosen by the cost model (`false`: syntactic
    /// fallback)?
    pub cost_based: bool,
    /// The cost model's estimate of complete body matches (0 when
    /// syntactic).
    pub estimated_matches: f64,
    /// Complete body matches observed while grounding.
    pub actual_matches: usize,
}

/// Bodies up to this length are planned by exact DP over subsets;
/// longer bodies fall back to greedy search with one-step lookahead.
pub const EXACT_PLAN_LIMIT: usize = 8;

/// Assumed selectivity of an exact-time constraint (literal interval or
/// already-bound interval variable). Time is not indexed, so this only
/// discounts the estimated match count, never the scan cost.
const TIME_SELECTIVITY: f64 = 0.1;

/// Per-step cost estimate: `scan` candidate atoms are examined, `rows`
/// of them match.
#[derive(Clone, Copy)]
struct StepEstimate {
    scan: f64,
    rows: f64,
}

/// The cost model: selectivity estimates for one formula body, derived
/// from a [`Cardinalities`] snapshot.
struct CostModel<'a> {
    cards: &'a Cardinalities,
    total: f64,
    /// Average facts per predicate (for predicates bound to a variable
    /// at runtime, where the concrete predicate is unknown at plan
    /// time).
    avg_facts: f64,
    avg_subjects: f64,
    avg_objects: f64,
    /// `var_bits[pat]` is the bitmask of variables pattern `pat` binds.
    var_bits: Vec<u64>,
    /// Variable → bit mapping backing `var_bits` (formulas with > 64
    /// variables share the top bit; the estimate degrades gracefully,
    /// correctness is unaffected).
    var_ids: Vec<VarId>,
    body: &'a [CPattern],
}

impl<'a> CostModel<'a> {
    fn new(body: &'a [CPattern], cards: &'a Cardinalities) -> Self {
        let mut var_ids: Vec<VarId> = Vec::new();
        let var_bits = body
            .iter()
            .map(|p| {
                p.vars().into_iter().fold(0u64, |m, v| {
                    let i = var_ids.iter().position(|&x| x == v).unwrap_or_else(|| {
                        var_ids.push(v);
                        var_ids.len() - 1
                    });
                    m | (1u64 << i.min(63))
                })
            })
            .collect();
        let preds = cards.predicate_count().max(1) as f64;
        let (mut subj_sum, mut obj_sum) = (0usize, 0usize);
        for (_, c) in cards.per_predicate() {
            subj_sum += c.distinct_subjects();
            obj_sum += c.distinct_objects();
        }
        CostModel {
            cards,
            total: cards.total_facts() as f64,
            avg_facts: cards.total_facts() as f64 / preds,
            avg_subjects: (subj_sum as f64 / preds).max(1.0),
            avg_objects: (obj_sum as f64 / preds).max(1.0),
            var_bits,
            var_ids,
            body,
        }
    }

    /// Is this slot a value the enumerator can hand to an index —
    /// a constant, or a variable bound by an earlier join step?
    fn known(&self, t: &CTerm, bound: u64) -> bool {
        match t {
            CTerm::Sym(_) => true,
            CTerm::Var(v) => bound & self.var_bit(*v) != 0,
        }
    }

    /// The bitmask of one variable (same numbering `new` assigned).
    fn var_bit(&self, v: VarId) -> u64 {
        self.var_ids
            .iter()
            .position(|&x| x == v)
            .map_or(0, |i| 1u64 << i.min(63))
    }

    /// Estimates the cost of matching `pattern` when the variables in
    /// `bound` are already bound.
    fn step(&self, pattern: &CPattern, bound: u64) -> StepEstimate {
        let s_known = self.known(&pattern.subject, bound);
        let o_known = self.known(&pattern.object, bound);
        // Per-predicate statistics: a constant predicate reads its own
        // counts (a predicate with no live facts — empty, or derived
        // only — estimates as a single atom); a bound predicate
        // variable gets the per-predicate averages.
        let (facts, ds, dobj) = match &pattern.predicate {
            CTerm::Sym(p) => match self.cards.predicate(*p) {
                Some(c) => (
                    c.facts() as f64,
                    c.distinct_subjects() as f64,
                    c.distinct_objects() as f64,
                ),
                None => (1.0, 1.0, 1.0),
            },
            CTerm::Var(v) => {
                if bound & self.var_bit(*v) != 0 {
                    (self.avg_facts, self.avg_subjects, self.avg_objects)
                } else {
                    // Unknown predicate: full store scan, selectivity
                    // only from the bound subject/object slots.
                    let mut rows = self.total;
                    if s_known {
                        rows /= (self.cards.distinct_subjects() as f64).max(1.0);
                    }
                    if o_known {
                        rows /= self.avg_objects;
                    }
                    return StepEstimate {
                        scan: self.total,
                        rows: rows * self.time_selectivity(pattern, bound),
                    };
                }
            }
        };
        let ds = ds.max(1.0);
        let dobj = dobj.max(1.0);
        // Index choice mirrors the enumerator: (s,p) index, then (p,o),
        // then p alone.
        let scan = if s_known {
            facts / ds
        } else if o_known {
            facts / dobj
        } else {
            facts
        };
        let mut rows = facts;
        if s_known {
            rows /= ds;
        }
        if o_known {
            rows /= dobj;
        }
        StepEstimate {
            scan,
            rows: rows * self.time_selectivity(pattern, bound),
        }
    }

    fn time_selectivity(&self, pattern: &CPattern, bound: u64) -> f64 {
        match &pattern.time {
            Some(CTime::Lit(_)) => TIME_SELECTIVITY,
            Some(CTime::Var(v)) if bound & self.var_bit(*v) != 0 => TIME_SELECTIVITY,
            _ => 1.0,
        }
    }
}

/// Plans one body: returns the chosen permutation and the estimated
/// number of complete matches.
fn plan_body(body: &[CPattern], cards: &Cardinalities) -> (Vec<usize>, f64) {
    let n = body.len();
    if n <= 1 {
        return ((0..n).collect(), 0.0);
    }
    let model = CostModel::new(body, cards);
    if n <= EXACT_PLAN_LIMIT {
        plan_exact(&model, n)
    } else {
        plan_greedy(&model, n)
    }
}

/// Exact Selinger-style DP over atom subsets: `dp[mask]` holds the
/// cheapest way to have joined exactly the atoms in `mask`.
fn plan_exact(model: &CostModel<'_>, n: usize) -> (Vec<usize>, f64) {
    let full = (1usize << n) - 1;
    // (cost, rows, last pattern joined)
    let mut dp: Vec<Option<(f64, f64, usize)>> = vec![None; full + 1];
    dp[0] = Some((0.0, 1.0, usize::MAX));
    for mask in 0..=full {
        let Some((cost, rows, _)) = dp[mask] else {
            continue;
        };
        let bound = bound_vars(model, mask);
        for i in 0..n {
            if mask & (1 << i) != 0 {
                continue;
            }
            let est = model.step(&model.body[i], bound);
            let next_cost = cost + rows * (1.0 + est.scan);
            let next_rows = rows * est.rows;
            let next = mask | (1 << i);
            if dp[next].is_none_or(|(c, _, _)| next_cost < c) {
                dp[next] = Some((next_cost, next_rows, i));
            }
        }
    }
    // Reconstruct by peeling the last-joined pattern off the mask.
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    while mask != 0 {
        let (_, _, last) = dp[mask].expect("every mask reachable");
        order.push(last);
        mask &= !(1 << last);
    }
    order.reverse();
    let (_, rows, _) = dp[full].expect("full mask reachable");
    (order, rows)
}

/// Greedy search with one-step lookahead for long bodies: each step
/// picks the atom minimising its own cost plus the cheapest possible
/// next step after it.
fn plan_greedy(model: &CostModel<'_>, n: usize) -> (Vec<usize>, f64) {
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let mut bound = 0u64;
    let mut rows = 1.0f64;
    while !remaining.is_empty() {
        let mut best: Option<(f64, usize)> = None;
        for &i in &remaining {
            let est = model.step(&model.body[i], bound);
            let own = rows * (1.0 + est.scan);
            let rows_after = rows * est.rows;
            let bound_after = bound | model.var_bits[i];
            let lookahead = remaining
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| {
                    let e = model.step(&model.body[j], bound_after);
                    rows_after * (1.0 + e.scan)
                })
                .fold(f64::INFINITY, f64::min);
            let total = own
                + if lookahead.is_finite() {
                    lookahead
                } else {
                    0.0
                };
            if best.is_none_or(|(c, _)| total < c) {
                best = Some((total, i));
            }
        }
        let (_, i) = best.expect("remaining non-empty");
        let est = model.step(&model.body[i], bound);
        rows *= est.rows;
        bound |= model.var_bits[i];
        order.push(i);
        remaining.retain(|&x| x != i);
    }
    (order, rows)
}

fn bound_vars(model: &CostModel<'_>, mask: usize) -> u64 {
    let mut bound = 0u64;
    for (i, &bits) in model.var_bits.iter().enumerate() {
        if mask & (1 << i) != 0 {
            bound |= bits;
        }
    }
    bound
}

/// Re-plans every formula of `compiled` in place (join order and
/// condition schedule) and returns the chosen plans. Under
/// [`JoinPlanner::Syntactic`], or when the graph has no statistics to
/// plan from, the compiler's syntactic order is kept and merely
/// recorded.
pub(crate) fn plan_program(
    compiled: &mut CompiledProgram,
    cards: &Cardinalities,
    planner: JoinPlanner,
) -> Vec<FormulaPlan> {
    let cost_based = planner == JoinPlanner::CostBased && !cards.is_empty();
    compiled
        .formulas
        .iter_mut()
        .map(|cf| {
            let mut estimated = 0.0;
            if cost_based {
                let (order, est) = plan_body(&cf.body, cards);
                estimated = est;
                if order != cf.join_order {
                    cf.schedule = schedule_conditions(&cf.body, &order, &cf.conditions);
                    cf.join_order = order;
                }
            }
            FormulaPlan {
                formula: cf.index,
                name: cf.name.clone(),
                join_order: cf.join_order.clone(),
                cost_based,
                estimated_matches: estimated,
                actual_matches: 0,
            }
        })
        .collect()
}

/// Per-predicate fact counts at plan time, sorted by symbol — the
/// drift detector's reference point.
pub(crate) fn fingerprint(cards: &Cardinalities) -> Vec<(Symbol, usize)> {
    let mut v: Vec<(Symbol, usize)> = cards.per_predicate().map(|(p, c)| (p, c.facts())).collect();
    v.sort_unstable_by_key(|&(p, _)| p);
    v
}

/// Maximum relative per-predicate fact-count change between two
/// fingerprints (a predicate present on one side only counts as a full
/// change). `0.0` means identical.
pub(crate) fn drift(old: &[(Symbol, usize)], new: &[(Symbol, usize)]) -> f64 {
    let mut max_rel = 0.0f64;
    let (mut i, mut j) = (0, 0);
    while i < old.len() || j < new.len() {
        let (a, b) = match (old.get(i), new.get(j)) {
            (Some(&(pa, ca)), Some(&(pb, cb))) => {
                if pa == pb {
                    i += 1;
                    j += 1;
                    (ca, cb)
                } else if pa < pb {
                    i += 1;
                    (ca, 0)
                } else {
                    j += 1;
                    (0, cb)
                }
            }
            (Some(&(_, ca)), None) => {
                i += 1;
                (ca, 0)
            }
            (None, Some(&(_, cb))) => {
                j += 1;
                (0, cb)
            }
            (None, None) => break,
        };
        let rel = a.abs_diff(b) as f64 / a.max(b).max(1) as f64;
        max_rel = max_rel.max(rel);
    }
    max_rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use tecore_kg::parser::parse_graph;
    use tecore_kg::UtkGraph;
    use tecore_logic::LogicProgram;

    fn skewed_graph() -> UtkGraph {
        // "big" dwarfs "small": a join should start at small.
        let mut text = String::new();
        for i in 0..200 {
            text.push_str(&format!("(s{i}, big, o{}, [1,2]) 0.9\n", i % 7));
        }
        for i in 0..3 {
            text.push_str(&format!("(s{i}, small, x{i}, [1,2]) 0.9\n"));
        }
        parse_graph(&text).unwrap()
    }

    fn plan_first(graph: &UtkGraph, src: &str) -> Vec<usize> {
        let program = LogicProgram::parse(src).unwrap();
        let mut dict = graph.dict().clone();
        let mut compiled = CompiledProgram::compile(&program, &mut dict).unwrap();
        let plans = plan_program(&mut compiled, graph.cardinalities(), JoinPlanner::CostBased);
        plans[0].join_order.clone()
    }

    #[test]
    fn planner_starts_at_small_predicate() {
        let g = skewed_graph();
        let order = plan_first(
            &g,
            "quad(x, big, y, t) ^ quad(x, small, z, t') -> false w = inf",
        );
        assert_eq!(order[0], 1, "small predicate joins first");
    }

    #[test]
    fn empty_predicate_joins_first() {
        let g = skewed_graph();
        // "absent" has no live facts at all: it prunes everything.
        let order = plan_first(
            &g,
            "quad(x, big, y, t) ^ quad(x, absent, z, t') -> false w = inf",
        );
        assert_eq!(order[0], 1);
    }

    #[test]
    fn syntactic_keeps_compiler_order() {
        let g = skewed_graph();
        let program =
            LogicProgram::parse("quad(x, big, y, t) ^ quad(x, small, z, t') -> false w = inf")
                .unwrap();
        let mut dict = g.dict().clone();
        let mut compiled = CompiledProgram::compile(&program, &mut dict).unwrap();
        let before = compiled.formulas[0].join_order.clone();
        let plans = plan_program(&mut compiled, g.cardinalities(), JoinPlanner::Syntactic);
        assert_eq!(compiled.formulas[0].join_order, before);
        assert!(!plans[0].cost_based);
    }

    #[test]
    fn stat_less_graph_falls_back() {
        let g = UtkGraph::new();
        let program =
            LogicProgram::parse("quad(x, big, y, t) ^ quad(x, small, z, t') -> false w = inf")
                .unwrap();
        let mut dict = g.dict().clone();
        let mut compiled = CompiledProgram::compile(&program, &mut dict).unwrap();
        let plans = plan_program(&mut compiled, g.cardinalities(), JoinPlanner::CostBased);
        assert!(!plans[0].cost_based, "no stats: syntactic fallback");
    }

    #[test]
    fn greedy_handles_long_bodies() {
        let g = skewed_graph();
        // 9 atoms: beyond the exact-DP limit.
        let body: Vec<String> = (0..9)
            .map(|i| {
                if i == 4 {
                    "quad(x4, small, y4, t4)".to_string()
                } else {
                    format!("quad(x{i}, big, y{i}, t{i})")
                }
            })
            .collect();
        let src = format!("{} -> false w = inf", body.join(" ^ "));
        let order = plan_first(&g, &src);
        assert_eq!(order.len(), 9);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9).collect::<Vec<_>>(), "a permutation");
        assert_eq!(order[0], 4, "small predicate first");
    }

    #[test]
    fn drift_detects_growth() {
        let mut g = skewed_graph();
        let fp0 = fingerprint(g.cardinalities());
        assert_eq!(drift(&fp0, &fp0), 0.0);
        for i in 0..10 {
            g.insert(
                "a",
                "small",
                &format!("n{i}"),
                tecore_temporal::Interval::new(1, 2).unwrap(),
                0.9,
            )
            .unwrap();
        }
        let fp1 = fingerprint(g.cardinalities());
        // small went 3 → 13: relative change > 0.5.
        assert!(drift(&fp0, &fp1) > 0.5);
        // A brand-new predicate is a full change.
        g.insert(
            "a",
            "fresh",
            "b",
            tecore_temporal::Interval::new(1, 2).unwrap(),
            0.9,
        )
        .unwrap();
        let fp2 = fingerprint(g.cardinalities());
        assert_eq!(drift(&fp1, &fp2), 1.0);
    }
}
