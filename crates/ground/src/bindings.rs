//! Variable bindings used during body matching.

use tecore_kg::Symbol;
use tecore_temporal::Interval;

use tecore_logic::VarId;

/// A partial substitution for one formula's variables.
///
/// Entity and time variables live in separate slots (a variable has
/// exactly one sort after validation, so one of the two slots is always
/// unused for a given id — wasting one `Option` per variable is cheaper
/// than a tagged map at this scale).
#[derive(Debug, Clone, PartialEq)]
pub struct Bindings {
    entities: Vec<Option<Symbol>>,
    intervals: Vec<Option<Interval>>,
}

impl Bindings {
    /// Fresh bindings for a formula with `n_vars` variables.
    pub fn new(n_vars: usize) -> Self {
        Bindings {
            entities: vec![None; n_vars],
            intervals: vec![None; n_vars],
        }
    }

    /// The entity bound to `v`, if any.
    #[inline]
    pub fn entity(&self, v: VarId) -> Option<Symbol> {
        self.entities[v.index()]
    }

    /// The interval bound to `v`, if any.
    #[inline]
    pub fn interval(&self, v: VarId) -> Option<Interval> {
        self.intervals[v.index()]
    }

    /// Binds an entity variable; `false` if already bound to a different
    /// symbol (unification failure).
    #[inline]
    pub fn bind_entity(&mut self, v: VarId, sym: Symbol) -> bool {
        match self.entities[v.index()] {
            Some(existing) => existing == sym,
            None => {
                self.entities[v.index()] = Some(sym);
                true
            }
        }
    }

    /// Binds an interval variable; `false` on mismatch.
    #[inline]
    pub fn bind_interval(&mut self, v: VarId, iv: Interval) -> bool {
        match self.intervals[v.index()] {
            Some(existing) => existing == iv,
            None => {
                self.intervals[v.index()] = Some(iv);
                true
            }
        }
    }

    /// Clears an entity binding (backtracking).
    #[inline]
    pub fn unbind_entity(&mut self, v: VarId) {
        self.entities[v.index()] = None;
    }

    /// Clears an interval binding (backtracking).
    #[inline]
    pub fn unbind_interval(&mut self, v: VarId) {
        self.intervals[v.index()] = None;
    }

    /// Snapshot for backtracking: the caller restores with
    /// [`Bindings::restore`].
    pub fn snapshot(&self) -> (Vec<Option<Symbol>>, Vec<Option<Interval>>) {
        (self.entities.clone(), self.intervals.clone())
    }

    /// Restores a snapshot.
    pub fn restore(&mut self, snap: (Vec<Option<Symbol>>, Vec<Option<Interval>>)) {
        self.entities = snap.0;
        self.intervals = snap.1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: i64, b: i64) -> Interval {
        Interval::new(a, b).unwrap()
    }

    #[test]
    fn bind_and_unify() {
        let mut b = Bindings::new(3);
        assert!(b.bind_entity(VarId(0), Symbol(7)));
        assert!(b.bind_entity(VarId(0), Symbol(7)), "same symbol re-binds");
        assert!(
            !b.bind_entity(VarId(0), Symbol(8)),
            "different symbol fails"
        );
        assert_eq!(b.entity(VarId(0)), Some(Symbol(7)));
        assert_eq!(b.entity(VarId(1)), None);

        assert!(b.bind_interval(VarId(1), iv(1, 2)));
        assert!(!b.bind_interval(VarId(1), iv(1, 3)));
        assert_eq!(b.interval(VarId(1)), Some(iv(1, 2)));
    }

    #[test]
    fn unbind() {
        let mut b = Bindings::new(2);
        b.bind_entity(VarId(0), Symbol(1));
        b.unbind_entity(VarId(0));
        assert_eq!(b.entity(VarId(0)), None);
        b.bind_interval(VarId(1), iv(1, 2));
        b.unbind_interval(VarId(1));
        assert_eq!(b.interval(VarId(1)), None);
    }

    #[test]
    fn snapshot_restore() {
        let mut b = Bindings::new(2);
        b.bind_entity(VarId(0), Symbol(1));
        let snap = b.snapshot();
        b.bind_entity(VarId(1), Symbol(2));
        b.restore(snap);
        assert_eq!(b.entity(VarId(0)), Some(Symbol(1)));
        assert_eq!(b.entity(VarId(1)), None);
    }
}
