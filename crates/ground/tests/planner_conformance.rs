//! Planner conformance: cost-based join ordering must be invisible in
//! the grounding's *results*. For any graph and any program, grounding
//! under [`JoinPlanner::CostBased`] and [`JoinPlanner::Syntactic`] must
//! produce the same clause multiset and observe the same number of
//! complete body matches — planning moves work, never answers.

use proptest::prelude::*;
use tecore_ground::{
    ground, AtomId, ClauseOrigin, ClauseWeight, GroundConfig, Grounding, JoinPlanner,
};
use tecore_kg::UtkGraph;
use tecore_logic::LogicProgram;
use tecore_temporal::Interval;

/// Canonical live-clause multiset (same rendering as the incremental
/// grounding tests): lits rendered through atom keys so two groundings
/// with different atom id layouts compare equal.
fn canonical_clauses(g: &Grounding) -> Vec<String> {
    let render_atom = |id: AtomId| {
        let a = g.store.atom(id);
        format!(
            "{}|{}|{}|{}",
            g.dict.resolve(a.subject),
            g.dict.resolve(a.predicate),
            g.dict.resolve(a.object),
            a.interval
        )
    };
    let mut out: Vec<String> = g
        .clauses
        .iter()
        .map(|c| {
            let mut lits: Vec<String> = c
                .lits
                .iter()
                .map(|l| {
                    format!(
                        "{}{}",
                        if l.positive { "+" } else { "-" },
                        render_atom(l.atom)
                    )
                })
                .collect();
            lits.sort();
            let weight = match c.weight {
                ClauseWeight::Hard => "hard".to_string(),
                ClauseWeight::Soft(w) => format!("{w:.9}"),
            };
            let origin = match c.origin {
                ClauseOrigin::Formula(i) => format!("f{i}"),
                ClauseOrigin::Evidence => "ev".into(),
                ClauseOrigin::Prior => "pr".into(),
            };
            format!("{origin} {weight} {}", lits.join(" ∨ "))
        })
        .collect();
    out.sort();
    out
}

/// Grounds `src` against `graph` under both planners and asserts the
/// clause multisets and body-match counts agree.
fn assert_conformant(graph: &UtkGraph, src: &str) {
    let program = LogicProgram::parse(src).unwrap();
    let planned_config = GroundConfig {
        planner: JoinPlanner::CostBased,
        ..GroundConfig::default()
    };
    let syntactic_config = GroundConfig {
        planner: JoinPlanner::Syntactic,
        ..GroundConfig::default()
    };
    let planned = ground(graph, &program, &planned_config).unwrap();
    let syntactic = ground(graph, &program, &syntactic_config).unwrap();
    assert_eq!(
        canonical_clauses(&planned),
        canonical_clauses(&syntactic),
        "clause multiset must not depend on join order (program: {src})"
    );
    // Complete body matches are join-order-invariant too, per formula.
    for (p, s) in planned.plans.iter().zip(&syntactic.plans) {
        assert_eq!(
            p.actual_matches, s.actual_matches,
            "match count drifted for formula {} (program: {src})",
            p.formula
        );
    }
}

/// Builds a graph from compact fact tuples
/// `(subject, predicate, object, start, len, confidence-step)`.
fn build_graph(facts: &[(u8, u8, u8, i8, i8, u8)]) -> UtkGraph {
    let mut graph = UtkGraph::new();
    for &(s, p, o, start, len, conf) in facts {
        let iv = Interval::new(i64::from(start), i64::from(start) + i64::from(len)).unwrap();
        graph
            .insert(
                &format!("subj{s}"),
                &format!("pred{p}"),
                &format!("obj{o}"),
                iv,
                0.5 + f64::from(conf) * 0.09,
            )
            .unwrap();
    }
    graph
}

fn arb_facts() -> impl Strategy<Value = Vec<(u8, u8, u8, i8, i8, u8)>> {
    prop::collection::vec((0u8..6, 0u8..4, 0u8..5, 0i8..20, 0i8..5, 0u8..5), 0..20)
}

/// One random body atom: each slot is a variable or a constant drawn
/// from the same pools `build_graph` uses, the time slot is a shared
/// variable or a literal window.
fn arb_atom() -> impl Strategy<Value = String> {
    (0u8..8, 0u8..5, 0u8..8, 0u8..5).prop_map(|(s, p, o, t)| {
        let subject = if s < 4 {
            format!("a{s}")
        } else {
            format!("subj{}", s - 4)
        };
        let predicate = if p < 4 {
            format!("pred{p}")
        } else {
            "q".into()
        };
        let object = if o < 4 {
            format!("b{o}")
        } else {
            format!("obj{}", o - 4)
        };
        let time = if t < 4 {
            format!("t{t}")
        } else {
            "[2,6]".into()
        };
        format!("quad({subject}, {predicate}, {object}, {time})")
    })
}

/// A fixed program exercising rule chains (derived predicates have no
/// cardinality entry), join conditions and a hard constraint.
const CHAIN_PROGRAM: &str = "\
    f1: quad(x, pred0, y, t) -> quad(x, derivedA, y, t) w = 2.5\n\
    f2: quad(x, derivedA, y, t) ^ quad(y, pred1, z, t2) -> quad(x, derivedB, z, t2) w = 1.5\n\
    c1: quad(x, pred2, y, t) ^ quad(x, pred2, z, t2) ^ y != z -> disjoint(t, t2) w = inf\n";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random graphs, fixed chained program: planned ≡ syntactic.
    #[test]
    fn chain_program_is_plan_invariant(facts in arb_facts()) {
        assert_conformant(&build_graph(&facts), CHAIN_PROGRAM);
    }

    /// Random graphs AND random constraint bodies (1–3 atoms, mixed
    /// constants/variables, hard or soft): planned ≡ syntactic.
    #[test]
    fn random_bodies_are_plan_invariant(
        facts in arb_facts(),
        body in prop::collection::vec(arb_atom(), 1..4),
        hard in prop::bool::ANY,
    ) {
        let weight = if hard { "inf" } else { "0.75" };
        let src = format!("{} -> false w = {weight}", body.join(" ^ "));
        assert_conformant(&build_graph(&facts), &src);
    }
}

#[test]
fn empty_predicate_body_grounds_identically() {
    // "ghost" has no facts: the planner starts there, the syntactic
    // order may not — either way, zero formula clauses.
    let graph = build_graph(&[(0, 0, 0, 1, 3, 4), (1, 0, 1, 2, 2, 3), (2, 1, 0, 5, 1, 2)]);
    let src = "quad(x, pred0, y, t) ^ quad(y, ghost, z, t2) -> false w = inf";
    assert_conformant(&graph, src);
    let program = LogicProgram::parse(src).unwrap();
    let g = ground(&graph, &program, &GroundConfig::default()).unwrap();
    assert!(
        !g.clauses
            .iter()
            .any(|c| matches!(c.origin, ClauseOrigin::Formula(_))),
        "empty predicate prunes every body match"
    );
    assert_eq!(g.plans[0].actual_matches, 0);
}

#[test]
fn all_constant_body_grounds_identically() {
    let graph = build_graph(&[(0, 0, 0, 1, 5, 4), (1, 1, 1, 2, 4, 3)]);
    // No variables anywhere: every permutation checks the same two
    // point lookups.
    assert_conformant(
        &graph,
        "quad(subj0, pred0, obj0, [1,6]) ^ quad(subj1, pred1, obj1, [2,6]) -> false w = inf",
    );
}

#[test]
fn cross_product_body_grounds_identically() {
    // No shared variables: the full cross product of both extensions.
    let graph = build_graph(&[
        (0, 0, 0, 1, 3, 4),
        (1, 0, 1, 2, 2, 3),
        (2, 1, 0, 5, 1, 2),
        (3, 1, 2, 6, 2, 1),
    ]);
    let src = "quad(a, pred0, b, t) ^ quad(c, pred1, d, t2) -> false w = inf";
    assert_conformant(&graph, src);
    let program = LogicProgram::parse(src).unwrap();
    let g = ground(&graph, &program, &GroundConfig::default()).unwrap();
    assert_eq!(g.plans[0].actual_matches, 4, "2 × 2 cross product");
}
