//! Durable-engine conformance: an engine recovered from its
//! write-ahead log is indistinguishable from a twin that never crashed.
//!
//! Two layers of the claim:
//!
//! 1. **State**: the recovered graph equals the twin's graph run to the
//!    durable epoch (same arena layout, same fact ids, same epoch).
//! 2. **Behaviour**: conflict resolution on the recovered engine gives
//!    the same answer a cold engine over the twin's graph gives — the
//!    WAL round trip must not perturb MAP inference.

use proptest::prelude::*;
use tecore_core::{Backend, Engine, TecoreConfig};
use tecore_kg::{FactId, UtkGraph};
use tecore_logic::LogicProgram;
use tecore_temporal::Interval;
use tecore_wal::{FsyncPolicy, MemStorage, Wal, WalConfig};

const PROGRAM: &str = "\
    c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf";

fn program() -> LogicProgram {
    LogicProgram::parse(PROGRAM).unwrap()
}

fn config() -> TecoreConfig {
    TecoreConfig {
        backend: Backend::MlnExact.into(),
        ..TecoreConfig::default()
    }
}

fn wal_config(fsync: FsyncPolicy) -> WalConfig {
    WalConfig {
        fsync,
        ..WalConfig::default()
    }
}

/// Opens a durable engine over shared in-memory storage.
fn mem_engine(mem: &MemStorage, fsync: FsyncPolicy) -> Engine {
    let (wal, graph) = Wal::open_with(Box::new(mem.clone()), wal_config(fsync)).unwrap();
    Engine::durable(graph, program(), config(), wal)
}

/// Order-insensitive digest of graph state (epoch, arena length,
/// id-tagged live fact lines).
fn fingerprint(graph: &UtkGraph) -> (u64, usize, Vec<String>) {
    let mut facts: Vec<String> = graph
        .iter()
        .map(|(id, f)| format!("{} {}", id.0, f.display(graph.dict())))
        .collect();
    facts.sort();
    (graph.epoch(), graph.arena_len(), facts)
}

/// Sorted removed-fact ids — the behavioural signature of a resolve.
fn removed_ids(resolution: &tecore_core::Resolution) -> Vec<u32> {
    let mut ids: Vec<u32> = resolution.removed.iter().map(|r| r.id.0).collect();
    ids.sort_unstable();
    ids
}

/// A coach-conflict edit script: overlapping coach intervals for a
/// handful of people, so resolves have real conflicts to chew on.
#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u8, u8),
    Remove(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..4, (0u8..4, 0u8..5, 1u8..=100), 0u8..32).prop_map(|(kind, (s, o, c), index)| {
        if kind < 3 {
            Op::Insert(s, o, c)
        } else {
            Op::Remove(index)
        }
    })
}

/// Applies one op through the engine's durable edit API. Returns false
/// when the op was a no-op (remove on an empty graph).
fn apply_engine(op: &Op, engine: &mut Engine) -> bool {
    match op {
        Op::Insert(s, o, c) => {
            engine
                .insert_fact(
                    &format!("person{s}"),
                    "coach",
                    &format!("club{o}"),
                    Interval::new(2000, 2010).unwrap(),
                    f64::from(*c) / 100.0,
                )
                .unwrap();
            true
        }
        Op::Remove(i) => {
            let live: Vec<FactId> = engine.graph().iter().map(|(id, _)| id).collect();
            if live.is_empty() {
                return false;
            }
            engine.remove_fact(live[*i as usize % live.len()]).unwrap();
            true
        }
    }
}

/// Applies one op to a bare in-memory graph (the never-crashed twin).
fn apply_twin(op: &Op, graph: &mut UtkGraph) -> bool {
    match op {
        Op::Insert(s, o, c) => {
            graph
                .insert(
                    &format!("person{s}"),
                    "coach",
                    &format!("club{o}"),
                    Interval::new(2000, 2010).unwrap(),
                    f64::from(*c) / 100.0,
                )
                .unwrap();
            true
        }
        Op::Remove(i) => {
            let live: Vec<FactId> = graph.iter().map(|(id, _)| id).collect();
            if live.is_empty() {
                return false;
            }
            graph.remove(live[*i as usize % live.len()]).unwrap();
            true
        }
    }
}

/// Full std-filesystem round trip: edit, flush, drop, reopen from disk.
#[test]
fn reopened_engine_matches_in_memory_twin() {
    let dir = std::env::temp_dir().join(format!("tecore-durable-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut engine =
        Engine::open_durable_with(&dir, program(), config(), wal_config(FsyncPolicy::Always))
            .unwrap();
    assert!(engine.is_durable());
    assert_eq!(engine.graph().epoch(), 0);
    assert_eq!(engine.wal_recovery().unwrap().recovered_epoch, 0);

    let mut twin = UtkGraph::new();
    let script = [
        ("CR", "Chelsea", 0.9),
        ("CR", "Leicester", 0.7),
        ("CR", "Napoli", 0.6),
        ("JM", "Porto", 0.8),
    ];
    for (s, o, c) in script {
        engine
            .insert_fact(s, "coach", o, Interval::new(2000, 2004).unwrap(), c)
            .unwrap();
        twin.insert(s, "coach", o, Interval::new(2000, 2004).unwrap(), c)
            .unwrap();
    }
    engine.remove_fact(FactId(3)).unwrap();
    twin.remove(FactId(3)).unwrap();

    let durable = engine.flush_wal().unwrap();
    assert_eq!(durable, engine.graph().epoch());
    drop(engine);

    let mut recovered = Engine::open_durable(&dir, program()).unwrap();
    assert_eq!(fingerprint(recovered.graph()), fingerprint(&twin));
    assert_eq!(recovered.wal_recovery().unwrap().recovered_epoch, 5);

    // Behaviour: resolving the recovered engine equals a cold resolve
    // over the twin graph.
    let got = recovered.resolve_incremental().unwrap();
    let want = Engine::with_config(twin, program(), config())
        .resolve()
        .unwrap();
    assert_eq!(got.stats.conflicting_facts, want.stats.conflicting_facts);
    assert_eq!(removed_ids(&got), removed_ids(&want));

    let _ = std::fs::remove_dir_all(&dir);
}

/// A poisoned (or pre-validated-invalid) edit must leave the graph
/// untouched: journal-before-apply means a refused append refuses the
/// whole edit.
#[test]
fn refused_edits_do_not_mutate_the_graph() {
    let mem = MemStorage::new();
    let mut engine = mem_engine(&mem, FsyncPolicy::Always);
    engine
        .insert_fact("a", "coach", "b", Interval::new(1, 2).unwrap(), 0.5)
        .unwrap();

    // Invalid confidence is rejected before it reaches either log or
    // graph.
    let err = engine
        .insert_fact("a", "coach", "c", Interval::new(1, 2).unwrap(), 7.0)
        .unwrap_err();
    assert!(err.to_string().contains("confidence"), "{err}");
    // Removing a dead/unknown id likewise journals nothing.
    assert!(engine.remove_fact(FactId(99)).is_err());
    assert_eq!(engine.graph().epoch(), 1);

    // And the log agrees: replaying it yields exactly the one fact.
    drop(engine);
    let (_, recovered) = Wal::open_with(Box::new(mem.crash_view()), WalConfig::default()).unwrap();
    assert_eq!(recovered.epoch(), 1);
    assert_eq!(recovered.len(), 1);
}

/// Checkpoint mid-script through the engine API, then recover.
#[test]
fn checkpoint_mid_script_recovers_exactly() {
    let mem = MemStorage::new();
    let mut engine = mem_engine(&mem, FsyncPolicy::Always);
    let mut twin = UtkGraph::new();

    for i in 0..5 {
        let op = Op::Insert(i, i, 60);
        apply_engine(&op, &mut engine);
        apply_twin(&op, &mut twin);
    }
    let ckpt_epoch = engine.graph().epoch();
    engine.checkpoint().unwrap();
    assert_eq!(
        engine.wal_stats().unwrap().last_checkpoint_epoch,
        ckpt_epoch
    );
    for op in [Op::Remove(1), Op::Insert(9, 9, 80), Op::Remove(4)] {
        apply_engine(&op, &mut engine);
        apply_twin(&op, &mut twin);
    }
    engine.flush_wal().unwrap();
    drop(engine);

    let (wal, recovered) =
        Wal::open_with(Box::new(mem.crash_view()), WalConfig::default()).unwrap();
    assert_eq!(wal.recovery().checkpoint_epoch, ckpt_epoch);
    assert_eq!(fingerprint(&recovered), fingerprint(&twin));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Crash at a random point in a random edit script (EveryN fsync,
    /// so the tail may be unsynced): recovery yields exactly the
    /// durable epoch, the recovered graph equals the twin run to that
    /// epoch, and resolving both gives the same answer.
    #[test]
    fn crashed_engine_resolves_like_never_crashed_twin(
        ops in prop::collection::vec(arb_op(), 1..16),
    ) {
        let mem = MemStorage::new();
        let mut engine = mem_engine(&mem, FsyncPolicy::EveryN(2));
        for op in &ops {
            apply_engine(op, &mut engine);
        }
        let durable = engine.wal_stats().unwrap().durable_epoch;
        // Crash without flushing: everything after the last covering
        // fsync is gone.
        drop(engine);

        let (wal, graph) =
            Wal::open_with(Box::new(mem.crash_view()), WalConfig::default()).unwrap();
        prop_assert_eq!(graph.epoch(), durable);
        prop_assert_eq!(wal.recovery().recovered_epoch, durable);

        // Twin: replay the script to the recovered epoch.
        let mut twin = UtkGraph::new();
        for op in &ops {
            if twin.epoch() == durable {
                break;
            }
            apply_twin(op, &mut twin);
        }
        prop_assert_eq!(fingerprint(&graph), fingerprint(&twin));

        let mut recovered = Engine::durable(graph, program(), config(), wal);
        let got = recovered.resolve_incremental().unwrap();
        let want = Engine::with_config(twin, program(), config()).resolve().unwrap();
        prop_assert_eq!(got.stats.conflicting_facts, want.stats.conflicting_facts);
        prop_assert_eq!(removed_ids(&got), removed_ids(&want));
    }
}
