//! EditBatch conformance: `Engine::apply(batch)` must be observationally
//! identical to the legacy per-fact edit sequence — same graph state,
//! same fact ids, same epoch, and the same conflict-resolution answer
//! on every MAP backend. The batch path nets the ops into one delta and
//! one WAL journal group; none of that may leak into semantics.

use proptest::prelude::*;
use tecore_core::batch::apply_to_graph;
use tecore_core::{Backend, EditBatch, EditOp, EditOutcome, Engine, TecoreConfig};
use tecore_kg::{FactId, UtkGraph};
use tecore_logic::LogicProgram;
use tecore_mln::{CpiConfig, WalkSatConfig};
use tecore_temporal::Interval;
use tecore_wal::{FsyncPolicy, MemStorage, Wal, WalConfig};

const PROGRAM: &str = "\
    c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf";

fn program() -> LogicProgram {
    LogicProgram::parse(PROGRAM).unwrap()
}

fn config(backend: Backend) -> TecoreConfig {
    TecoreConfig {
        backend: backend.into(),
        ..TecoreConfig::default()
    }
}

fn all_backends() -> [Backend; 4] {
    [
        Backend::MlnExact,
        Backend::MlnWalkSat(WalkSatConfig::default()),
        Backend::MlnCuttingPlane(CpiConfig::default()),
        Backend::default_psl(),
    ]
}

/// Order-insensitive digest of graph state (epoch, arena length,
/// id-tagged live fact lines).
fn fingerprint(graph: &UtkGraph) -> (u64, usize, Vec<String>) {
    let mut facts: Vec<String> = graph
        .iter()
        .map(|(id, f)| format!("{} {}", id.0, f.display(graph.dict())))
        .collect();
    facts.sort();
    (graph.epoch(), graph.arena_len(), facts)
}

/// Sorted removed-fact ids — the behavioural signature of a resolve.
fn removed_ids(snapshot: &tecore_core::Snapshot) -> Vec<u32> {
    let mut ids: Vec<u32> = snapshot
        .resolution()
        .removed
        .iter()
        .map(|r| r.id.0)
        .collect();
    ids.sort_unstable();
    ids
}

/// A symbolic edit script over a small coach universe (overlapping
/// intervals per person, so resolves have conflicts to chew on).
#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u8, u8),
    Upsert(u8, u8, u8),
    Remove(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..5, (0u8..3, 0u8..4, 1u8..=100), 0u8..32).prop_map(|(kind, (s, o, c), index)| match kind {
        0..=2 => Op::Insert(s, o, c),
        3 => Op::Upsert(s, o, c),
        _ => Op::Remove(index),
    })
}

/// Lowers a symbolic script to concrete [`EditOp`]s by simulating the
/// arena on a scratch graph: removals index the live set *at that point
/// in the script*, exactly the state both real engines pass through.
fn concretize(scratch: &mut UtkGraph, ops: &[Op]) -> Vec<EditOp> {
    let mut out = Vec::new();
    for op in ops {
        let concrete = match op {
            Op::Insert(s, o, c) => EditOp::Insert {
                subject: format!("person{s}"),
                predicate: "coach".to_string(),
                object: format!("club{o}"),
                interval: Interval::new(2000, 2010).unwrap(),
                confidence: f64::from(*c) / 100.0,
            },
            Op::Upsert(s, o, c) => EditOp::Upsert {
                subject: format!("person{s}"),
                predicate: "coach".to_string(),
                object: format!("club{o}"),
                interval: Interval::new(2001, 2008).unwrap(),
                confidence: f64::from(*c) / 100.0,
            },
            Op::Remove(i) => {
                let live: Vec<FactId> = scratch.iter().map(|(id, _)| id).collect();
                if live.is_empty() {
                    continue;
                }
                EditOp::Remove(live[*i as usize % live.len()])
            }
        };
        let mut one = EditBatch::new();
        one.push(concrete.clone());
        apply_to_graph(scratch, &one);
        out.push(concrete);
    }
    out
}

/// Replays one concrete op through the legacy per-fact engine API (an
/// upsert is its documented desugaring: remove every statement match,
/// then insert).
fn apply_per_fact(engine: &mut Engine, op: &EditOp) {
    match op {
        EditOp::Insert {
            subject,
            predicate,
            object,
            interval,
            confidence,
        } => {
            let _ = engine.insert_fact(subject, predicate, object, *interval, *confidence);
        }
        EditOp::Remove(id) => {
            let _ = engine.remove_fact(*id);
        }
        EditOp::Upsert {
            subject,
            predicate,
            object,
            interval,
            confidence,
        } => {
            for id in engine.graph().statement_ids(subject, predicate, object) {
                engine.remove_fact(id).expect("statement id is live");
            }
            let _ = engine.insert_fact(subject, predicate, object, *interval, *confidence);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// One `apply(batch)` call versus the same ops as individual
    /// per-fact edits, on all four backends: identical graph
    /// fingerprints (ids, epoch, arena) and identical resolutions.
    #[test]
    fn batch_equals_per_fact_on_all_backends(
        ops in prop::collection::vec(arb_op(), 1..14),
    ) {
        let mut scratch = UtkGraph::new();
        let concrete = concretize(&mut scratch, &ops);
        let mut batch = EditBatch::new();
        for op in &concrete {
            batch.push(op.clone());
        }
        for backend in all_backends() {
            let name = backend.name();
            let mut batched =
                Engine::with_config(UtkGraph::new(), program(), config(backend.clone()));
            let report = batched.apply(&batch);
            prop_assert!(!report.wal_failed());

            let mut per_fact =
                Engine::with_config(UtkGraph::new(), program(), config(backend.clone()));
            for op in &concrete {
                apply_per_fact(&mut per_fact, op);
            }

            prop_assert_eq!(
                fingerprint(batched.graph()),
                fingerprint(per_fact.graph()),
                "graph diverged on {}", name
            );
            let a = batched.resolve_incremental().unwrap();
            let b = per_fact.resolve_incremental().unwrap();
            prop_assert_eq!(
                a.stats.conflicting_facts, b.stats.conflicting_facts,
                "conflicts diverged on {}", name
            );
            prop_assert_eq!(
                removed_ids(&a), removed_ids(&b),
                "resolution diverged on {}", name
            );
        }
    }

    /// Durable twin equivalence: a batch journaled as one group and the
    /// same ops journaled per-fact recover to identical graphs from
    /// their respective write-ahead logs.
    #[test]
    fn durable_batch_recovers_like_per_fact(
        ops in prop::collection::vec(arb_op(), 1..12),
    ) {
        let mut scratch = UtkGraph::new();
        let concrete = concretize(&mut scratch, &ops);
        let mut batch = EditBatch::new();
        for op in &concrete {
            batch.push(op.clone());
        }
        let wal_config = || WalConfig {
            fsync: FsyncPolicy::Always,
            ..WalConfig::default()
        };

        let mem_a = MemStorage::new();
        let (wal, graph) = Wal::open_with(Box::new(mem_a.clone()), wal_config()).unwrap();
        let mut batched = Engine::durable(graph, program(), config(Backend::MlnExact), wal);
        let report = batched.apply(&batch);
        prop_assert!(!report.wal_failed());
        batched.flush_wal().unwrap();
        drop(batched);

        let mem_b = MemStorage::new();
        let (wal, graph) = Wal::open_with(Box::new(mem_b.clone()), wal_config()).unwrap();
        let mut per_fact = Engine::durable(graph, program(), config(Backend::MlnExact), wal);
        for op in &concrete {
            apply_per_fact(&mut per_fact, op);
        }
        per_fact.flush_wal().unwrap();
        drop(per_fact);

        let (_, from_batch) =
            Wal::open_with(Box::new(mem_a.crash_view()), wal_config()).unwrap();
        let (_, from_per_fact) =
            Wal::open_with(Box::new(mem_b.crash_view()), wal_config()).unwrap();
        prop_assert_eq!(fingerprint(&from_batch), fingerprint(&from_per_fact));
        prop_assert_eq!(fingerprint(&from_batch), fingerprint(&scratch));
    }
}

/// A semantic rejection mid-batch does not poison the rest: later ops
/// still run, and the report localises the rejection.
#[test]
fn rejected_op_mid_batch_continues() {
    let mut engine = Engine::new(UtkGraph::new(), program());
    let iv = Interval::new(2000, 2004).unwrap();
    let report = engine.apply(
        &EditBatch::new()
            .insert("CR", "coach", "Chelsea", iv, 0.9)
            .remove(FactId(99)) // unknown id → Rejected
            .insert("CR", "coach", "Leicester", iv, 0.7),
    );
    assert!(matches!(report.outcomes[0], EditOutcome::Inserted(_)));
    assert!(matches!(report.outcomes[1], EditOutcome::Rejected(_)));
    assert!(matches!(report.outcomes[2], EditOutcome::Inserted(_)));
    assert_eq!(report.applied(), 2);
    assert_eq!(report.changes(), 2);
    assert!(report.first_error().is_some());
    assert!(report.into_result().is_err());
    assert_eq!(engine.graph().len(), 2);
}

/// An upsert replaces every live fact asserting the same statement,
/// whatever their intervals, and reports what it tombstoned.
#[test]
fn upsert_replaces_all_statement_matches() {
    let mut engine = Engine::new(UtkGraph::new(), program());
    let report = engine.apply(
        &EditBatch::new()
            .insert(
                "CR",
                "coach",
                "Chelsea",
                Interval::new(2000, 2002).unwrap(),
                0.6,
            )
            .insert(
                "CR",
                "coach",
                "Chelsea",
                Interval::new(2003, 2005).unwrap(),
                0.7,
            )
            .insert(
                "CR",
                "coach",
                "Napoli",
                Interval::new(2006, 2008).unwrap(),
                0.8,
            ),
    );
    assert_eq!(report.applied(), 3);

    let report = engine.apply(&EditBatch::new().upsert(
        "CR",
        "coach",
        "Chelsea",
        Interval::new(2000, 2005).unwrap(),
        0.95,
    ));
    let [EditOutcome::Upserted { removed, id }] = &report.outcomes[..] else {
        panic!("expected one Upserted outcome: {:?}", report.outcomes);
    };
    assert_eq!(removed.len(), 2, "both Chelsea spells replaced");
    assert!(engine.graph().is_alive(*id));
    assert_eq!(engine.graph().len(), 2, "Napoli + the replacement");
    assert_eq!(report.changes(), 3);
}
