//! Query-planner conformance: whatever access path the cost model
//! picks, a [`TemporalQuery`] must return exactly the facts a
//! brute-force scan over the expanded graph returns. The plan only
//! decides how many candidates get examined; the residual filter keeps
//! every path exact.

use proptest::prelude::*;
use tecore_core::resolution::{InferredFact, Resolution};
use tecore_core::{DebugStats, Snapshot};
use tecore_kg::{FactId, UtkGraph};
use tecore_temporal::{AllenRelation, AllenSet, Interval};

/// Builds a snapshot from compact fact tuples
/// `(subject, predicate, object, start, len, confidence-step)`, routing
/// a slice of them through the inferred-facts channel so the expanded
/// graph mixes evidence and inferred statements.
fn build_snapshot(facts: &[(u8, u8, u8, i8, i8, u8)]) -> Snapshot {
    let mut graph = UtkGraph::new();
    let mut inferred = Vec::new();
    for (i, &(s, p, o, start, len, conf)) in facts.iter().enumerate() {
        let iv = Interval::new(i64::from(start), i64::from(start) + i64::from(len)).unwrap();
        let confidence = 0.5 + f64::from(conf) * 0.09;
        if i % 5 == 4 {
            inferred.push(InferredFact {
                subject: format!("subj{s}"),
                predicate: format!("pred{p}"),
                object: format!("obj{o}"),
                interval: iv,
                confidence,
            });
        } else {
            graph
                .insert(
                    &format!("subj{s}"),
                    &format!("pred{p}"),
                    &format!("obj{o}"),
                    iv,
                    confidence,
                )
                .unwrap();
        }
    }
    let resolution = Resolution {
        consistent: graph,
        removed: Vec::new(),
        inferred,
        conflicts: Vec::new(),
        stats: DebugStats::default(),
    };
    Snapshot::from_resolution(resolution, 1)
}

/// One random query shape: optional term filters (sometimes naming a
/// term absent from the snapshot), one of the four time-filter kinds,
/// and an optional confidence floor.
#[derive(Debug, Clone)]
struct QueryShape {
    subject: Option<u8>,
    predicate: Option<u8>,
    object: Option<u8>,
    /// 0 = none, 1 = at, 2 = overlapping, 3 = allen, 4 = allen-set.
    time_kind: u8,
    time_a: i8,
    time_b: i8,
    allen: u8,
    min_conf: bool,
}

fn arb_shape() -> impl Strategy<Value = QueryShape> {
    (
        prop::option::of(0u8..7),
        prop::option::of(0u8..5),
        prop::option::of(0u8..6),
        0u8..5,
        0i8..20,
        0i8..6,
        0u8..6,
        prop::bool::ANY,
    )
        .prop_map(
            |(subject, predicate, object, time_kind, time_a, time_b, allen, min_conf)| QueryShape {
                subject,
                predicate,
                object,
                time_kind,
                time_a,
                time_b,
                allen,
                min_conf,
            },
        )
}

const ALLEN_POOL: [AllenRelation; 6] = [
    AllenRelation::Before,
    AllenRelation::After,
    AllenRelation::During,
    AllenRelation::Contains,
    AllenRelation::Overlaps,
    AllenRelation::Equals,
];

fn run_conformance(facts: &[(u8, u8, u8, i8, i8, u8)], shape: &QueryShape) {
    let snap = build_snapshot(facts);
    let graph = snap.expanded();

    // Build the query through the public API. Index 6 (subjects) / 4
    // (predicates) / 5 (objects) never occurs in `build_snapshot`'s
    // pools, so those filters exercise the unmatchable path.
    let mut q = snap.query();
    if let Some(s) = shape.subject {
        q = q.subject(&format!("subj{s}"));
    }
    if let Some(p) = shape.predicate {
        q = q.predicate(&format!("pred{p}"));
    }
    if let Some(o) = shape.object {
        q = q.object(&format!("obj{o}"));
    }
    let window = Interval::new(
        i64::from(shape.time_a),
        i64::from(shape.time_a) + i64::from(shape.time_b),
    )
    .unwrap();
    let rel = ALLEN_POOL[shape.allen as usize];
    match shape.time_kind {
        1 => q = q.at(i64::from(shape.time_a)),
        2 => q = q.overlapping(window),
        3 => q = q.allen(rel, window),
        4 => q = q.allen_set(AllenSet::DISJOINT, window),
        _ => {}
    }
    if shape.min_conf {
        q = q.min_confidence(0.6);
    }

    // Brute force: walk the whole arena, re-apply every filter by hand.
    let dict = graph.dict();
    let admits_term = |filter: Option<u8>, prefix: &str, sym| match filter {
        None => true,
        Some(i) => dict.lookup(&format!("{prefix}{i}")) == Some(sym),
    };
    let mut expected: Vec<FactId> = Vec::new();
    for raw in 0..graph.arena_len() as u32 {
        let id = FactId(raw);
        let Some(fact) = graph.fact(id) else {
            continue;
        };
        let time_ok = match shape.time_kind {
            1 => fact
                .interval
                .intersects(Interval::at(i64::from(shape.time_a))),
            2 => fact.interval.intersects(window),
            3 => AllenSet::from_relation(rel).holds(fact.interval, window),
            4 => AllenSet::DISJOINT.holds(fact.interval, window),
            _ => true,
        };
        if admits_term(shape.subject, "subj", fact.subject)
            && admits_term(shape.predicate, "pred", fact.predicate)
            && admits_term(shape.object, "obj", fact.object)
            && time_ok
            && (!shape.min_conf || fact.confidence.value() >= 0.6)
        {
            expected.push(id);
        }
    }

    let mut got: Vec<FactId> = q.iter().map(|(id, _)| id).collect();
    got.sort_unstable_by_key(|id| id.0);
    expected.sort_unstable_by_key(|id| id.0);
    assert_eq!(
        got,
        expected,
        "planned path diverged from brute force\nshape: {shape:?}\nplan: {}",
        q.explain()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any query shape over any snapshot returns exactly the brute-force
    /// result set, whatever access path the planner picked.
    #[test]
    fn planned_query_matches_brute_force(
        facts in prop::collection::vec((0u8..6, 0u8..4, 0u8..5, 0i8..20, 0i8..5, 0u8..5), 0..40),
        shape in arb_shape(),
    ) {
        run_conformance(&facts, &shape);
    }
}

#[test]
fn explain_names_the_chosen_path() {
    let snap = build_snapshot(&[(0, 0, 0, 1, 3, 4), (1, 1, 1, 2, 2, 3)]);
    let symbolic = snap.query().predicate("pred0").explain();
    assert!(symbolic.contains("hash index"), "got: {symbolic}");
    let windowed = snap.query().overlapping(Interval::new(1, 2).unwrap());
    assert!(
        windowed.explain().contains("interval index"),
        "got: {}",
        windowed.explain()
    );
    let dead = snap.query().subject("nobody").explain();
    assert!(dead.contains("unsatisfiable"), "got: {dead}");
}
