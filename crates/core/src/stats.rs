//! Debugging statistics — the Figure 8 "result statistics" screen.

use std::fmt;
use std::time::Duration;

use tecore_ground::FormulaPlan;

/// Statistics of one conflict-resolution run.
///
/// The demo displays "the maximal consistent subset of the utkg, and
/// statistics (e.g., number of noisy facts removed) about the debugging
/// process"; Figure 8 shows total facts and the number of conflicting
/// facts (19,734 out of 243,157 on the FootballDB uTKG).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DebugStats {
    /// Facts in the input uTKG.
    pub total_facts: usize,
    /// Evidence facts rejected by MAP inference (conflicting facts).
    pub conflicting_facts: usize,
    /// Derived facts accepted (after thresholding).
    pub inferred_facts: usize,
    /// Derived facts dropped by the confidence threshold.
    pub thresholded_facts: usize,
    /// Ground atoms (solver variables).
    pub atoms: usize,
    /// Ground clauses handed to the solver (final active set for CPI).
    pub clauses: usize,
    /// Conflict components the solve driver partitioned the ground
    /// problem into; `0` means the solve ran monolithically (the
    /// backend doesn't support components, the mode forced it, or the
    /// problem was one big component under [`ComponentMode::Auto`]).
    ///
    /// [`ComponentMode::Auto`]: tecore_ground::ComponentMode::Auto
    pub components: usize,
    /// Components actually (re-)solved in this resolve; the remainder
    /// were clean and their cached per-component states were spliced.
    /// Equals `components` on a cold solve.
    pub components_solved: usize,
    /// Times this engine's incremental path fell back to a full
    /// re-ground because the graph's change log had been truncated
    /// past the cached epoch (cumulative over the engine's lifetime;
    /// `0` on the batch path). A non-zero value means some consumer
    /// truncates the log faster than the engine resolves — correct but
    /// silently expensive, which is why it is surfaced here.
    pub fallback_regrounds: u64,
    /// Violated-constraint groundings observed per constraint name.
    pub per_constraint: Vec<(String, usize)>,
    /// Backend identifier (`"mln-exact"`, `"mln-cpi"`, `"psl-admm"`,
    /// ...) — the [`MapSolver::name`](tecore_ground::MapSolver::name)
    /// of whatever solver ran, including registry-added ones.
    pub backend: String,
    /// Did the solver satisfy all hard constraints?
    pub feasible: bool,
    /// Final MAP cost (violated soft weight).
    pub cost: f64,
    /// Grounding wall-clock time.
    pub grounding_time: Duration,
    /// Solver wall-clock time.
    pub solve_time: Duration,
    /// The join plan grounding used per formula: chosen order, whether
    /// the cost model picked it, and estimated vs observed match
    /// counts.
    pub plans: Vec<FormulaPlan>,
}

impl DebugStats {
    /// Fraction of facts flagged as conflicting.
    pub fn conflict_ratio(&self) -> f64 {
        if self.total_facts == 0 {
            0.0
        } else {
            self.conflicting_facts as f64 / self.total_facts as f64
        }
    }

    /// Total wall-clock time (grounding + solving) — the quantity the
    /// paper reports for the nRockIt/nPSL comparison.
    pub fn total_time(&self) -> Duration {
        self.grounding_time + self.solve_time
    }
}

impl fmt::Display for DebugStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== TeCoRe result statistics ==")?;
        writeln!(f, "backend            : {}", self.backend)?;
        writeln!(f, "temporal facts     : {}", self.total_facts)?;
        writeln!(
            f,
            "conflicting facts  : {} ({:.2}%)",
            self.conflicting_facts,
            self.conflict_ratio() * 100.0
        )?;
        writeln!(f, "inferred facts     : {}", self.inferred_facts)?;
        if self.thresholded_facts > 0 {
            writeln!(f, "below threshold    : {}", self.thresholded_facts)?;
        }
        writeln!(f, "ground atoms       : {}", self.atoms)?;
        writeln!(f, "ground clauses     : {}", self.clauses)?;
        if self.components > 0 {
            writeln!(
                f,
                "components         : {} ({} solved, {} spliced)",
                self.components,
                self.components_solved,
                self.components - self.components_solved
            )?;
        }
        if self.fallback_regrounds > 0 {
            writeln!(f, "fallback regrounds : {}", self.fallback_regrounds)?;
        }
        writeln!(f, "feasible           : {}", self.feasible)?;
        writeln!(f, "map cost           : {:.4}", self.cost)?;
        writeln!(f, "grounding time     : {:?}", self.grounding_time)?;
        writeln!(f, "solve time         : {:?}", self.solve_time)?;
        if !self.per_constraint.is_empty() {
            writeln!(f, "violations by constraint:")?;
            for (name, count) in &self.per_constraint {
                writeln!(f, "  {name:<16} {count}")?;
            }
        }
        if !self.plans.is_empty() {
            writeln!(f, "join plans:")?;
            for plan in &self.plans {
                let name = plan
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("#{}", plan.formula));
                let kind = if plan.cost_based { "cost" } else { "syntactic" };
                writeln!(
                    f,
                    "  {name:<16} order {:?} ({kind}, est {:.0}, actual {})",
                    plan.join_order, plan.estimated_matches, plan.actual_matches
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_total_time() {
        let s = DebugStats {
            total_facts: 243_157,
            conflicting_facts: 19_734,
            grounding_time: Duration::from_millis(100),
            solve_time: Duration::from_millis(150),
            ..DebugStats::default()
        };
        assert!((s.conflict_ratio() - 0.08115).abs() < 1e-4);
        assert_eq!(s.total_time(), Duration::from_millis(250));
        assert_eq!(DebugStats::default().conflict_ratio(), 0.0);
    }

    #[test]
    fn display_contains_key_rows() {
        let s = DebugStats {
            total_facts: 5,
            conflicting_facts: 1,
            inferred_facts: 1,
            backend: "mln-exact".to_string(),
            feasible: true,
            per_constraint: vec![("c2".into(), 1)],
            plans: vec![FormulaPlan {
                formula: 0,
                name: Some("f1".into()),
                join_order: vec![1, 0],
                cost_based: true,
                estimated_matches: 3.0,
                actual_matches: 2,
            }],
            ..DebugStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("temporal facts     : 5"));
        assert!(text.contains("conflicting facts  : 1"));
        assert!(text.contains("c2"));
        assert!(text.contains("mln-exact"));
        assert!(text.contains("join plans:"));
        assert!(text.contains("f1"));
        assert!(text.contains("[1, 0]"));
    }
}
