//! The temporal query layer over resolved snapshots.
//!
//! The paper's demo answers questions like *"who coached this club in
//! 2010?"* against the repaired KG. [`TemporalQuery`] is that read
//! surface as a typed builder: select by subject/predicate/object,
//! constrain time by point-in-time stabbing ([`TemporalQuery::at`]),
//! interval overlap ([`TemporalQuery::overlapping`]) or Allen-relation
//! filters ([`TemporalQuery::allen`]), project by confidence, then
//! execute as a lazy iterator, a coalesced per-entity timeline, or a
//! distinct-objects lookup.
//!
//! Queries compile to **index-backed scans**, never full-graph walks:
//! the planner picks the narrowest access path available — a
//! per-predicate or per-subject interval sub-index for time-constrained
//! queries ([`tecore_kg::GraphTemporalIndex`]), the graph's hash
//! indexes for purely symbolic ones — and streams candidates through the
//! zero-allocation [`OverlapIter`], applying the exact residual filter
//! per candidate. An Allen filter is pre-compiled into a conservative
//! *candidate window* (e.g. `before [2000,2004]` only scans intervals
//! intersecting `(-∞, 1998]`), so even relation queries stay
//! sub-linear.
//!
//! ```
//! use tecore_core::prelude::*;
//! use tecore_kg::parser::parse_graph;
//! use tecore_logic::LogicProgram;
//!
//! let graph = parse_graph(
//!     "(CR, coach, Chelsea, [2000,2004]) 0.9\n\
//!      (CR, coach, Napoli, [2001,2003]) 0.6\n\
//!      (CR, coach, Leicester, [2015,2017]) 0.7\n",
//! ).unwrap();
//! let program = LogicProgram::parse(
//!     "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf",
//! ).unwrap();
//! let snapshot = Engine::new(graph, program).resolve().unwrap();
//!
//! // Who did CR coach in 2016? (Napoli lost the conflict and is gone.)
//! let at_2016 = snapshot.at(2016).subject("CR").predicate("coach").objects();
//! let names: Vec<&str> = at_2016
//!     .iter()
//!     .map(|&o| snapshot.expanded().dict().resolve(o))
//!     .collect();
//! assert_eq!(names, ["Leicester"]);
//! ```

use tecore_kg::{Dictionary, FactId, FxHashMap, OverlapIter, Symbol, TemporalFact, UtkGraph};
use tecore_temporal::{AllenRelation, AllenSet, Interval, TemporalElement, TimePoint};

use crate::snapshot::Snapshot;

/// A term selector: anything, one interned symbol, or a term that does
/// not occur in the snapshot at all (matches nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum TermFilter {
    #[default]
    Any,
    Is(Symbol),
    /// The queried string is not in the snapshot's dictionary: the
    /// query is satisfiable by no fact (but stays a valid query).
    Unmatchable,
}

impl TermFilter {
    #[inline]
    fn admits(self, sym: Symbol) -> bool {
        match self {
            TermFilter::Any => true,
            TermFilter::Is(s) => s == sym,
            TermFilter::Unmatchable => false,
        }
    }
}

/// The temporal constraint of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum TimeFilter {
    /// No temporal constraint.
    #[default]
    Any,
    /// The fact's interval must share at least one point with the
    /// window (stabbing is the degenerate `[t, t]` window).
    Window(Interval),
    /// The basic Allen relation between the fact's interval and the
    /// anchor must be a member of the set.
    Allen { set: AllenSet, anchor: Interval },
}

impl TimeFilter {
    #[inline]
    fn admits(self, iv: Interval) -> bool {
        match self {
            TimeFilter::Any => true,
            TimeFilter::Window(w) => iv.intersects(w),
            TimeFilter::Allen { set, anchor } => set.holds(iv, anchor),
        }
    }
}

/// One coalesced validity timeline: all the periods in which a
/// `(subject, predicate, object)` statement holds in the snapshot,
/// merged into a canonical [`TemporalElement`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Subject symbol (resolve against the snapshot's expanded dict).
    pub subject: Symbol,
    /// Predicate symbol.
    pub predicate: Symbol,
    /// Object symbol.
    pub object: Symbol,
    /// The coalesced validity periods.
    pub element: TemporalElement,
}

impl TimelineEntry {
    /// Renders the entry against a dictionary:
    /// `CR coach Chelsea {[2000,2004]}`.
    pub fn describe(&self, dict: &Dictionary) -> String {
        let mut out = String::new();
        self.write_describe(dict, &mut out)
            .expect("writing to a String never fails");
        out
    }

    /// [`TimelineEntry::describe`] into a caller-provided buffer, so a
    /// serving loop rendering many entries reuses one allocation.
    pub fn write_describe<W: std::fmt::Write>(
        &self,
        dict: &Dictionary,
        out: &mut W,
    ) -> std::fmt::Result {
        write!(
            out,
            "{} {} {} {}",
            dict.resolve(self.subject),
            dict.resolve(self.predicate),
            dict.resolve(self.object),
            self.element
        )
    }
}

/// A builder-style temporal query over one [`Snapshot`].
///
/// Construction is cheap (`Copy`-able filter state plus a snapshot
/// borrow); nothing is scanned until one of the executors
/// ([`TemporalQuery::iter`], [`TemporalQuery::matches`],
/// [`TemporalQuery::count`], [`TemporalQuery::objects`],
/// [`TemporalQuery::timeline`], [`TemporalQuery::coalesced_validity`])
/// runs.
#[derive(Debug, Clone, Copy)]
pub struct TemporalQuery<'a> {
    snapshot: &'a Snapshot,
    subject: TermFilter,
    predicate: TermFilter,
    object: TermFilter,
    time: TimeFilter,
    min_confidence: f64,
}

impl<'a> TemporalQuery<'a> {
    /// A fully unconstrained query (every fact of the expanded graph).
    pub fn new(snapshot: &'a Snapshot) -> Self {
        TemporalQuery {
            snapshot,
            subject: TermFilter::Any,
            predicate: TermFilter::Any,
            object: TermFilter::Any,
            time: TimeFilter::Any,
            min_confidence: 0.0,
        }
    }

    fn resolve_term(&self, term: &str) -> TermFilter {
        match self.snapshot.expanded().dict().lookup(term) {
            Some(sym) => TermFilter::Is(sym),
            None => TermFilter::Unmatchable,
        }
    }

    /// Restricts to facts with this subject (an unknown term matches
    /// nothing).
    #[must_use]
    pub fn subject(mut self, term: &str) -> Self {
        self.subject = self.resolve_term(term);
        self
    }

    /// Restricts to facts with this subject symbol.
    #[must_use]
    pub fn subject_sym(mut self, sym: Symbol) -> Self {
        self.subject = TermFilter::Is(sym);
        self
    }

    /// Restricts to facts with this predicate.
    #[must_use]
    pub fn predicate(mut self, term: &str) -> Self {
        self.predicate = self.resolve_term(term);
        self
    }

    /// Restricts to facts with this predicate symbol.
    #[must_use]
    pub fn predicate_sym(mut self, sym: Symbol) -> Self {
        self.predicate = TermFilter::Is(sym);
        self
    }

    /// Restricts to facts with this object.
    #[must_use]
    pub fn object(mut self, term: &str) -> Self {
        self.object = self.resolve_term(term);
        self
    }

    /// Restricts to facts with this object symbol.
    #[must_use]
    pub fn object_sym(mut self, sym: Symbol) -> Self {
        self.object = TermFilter::Is(sym);
        self
    }

    /// Point-in-time stabbing: facts whose validity covers `t`.
    #[must_use]
    pub fn at(mut self, t: impl Into<TimePoint>) -> Self {
        self.time = TimeFilter::Window(Interval::at(t));
        self
    }

    /// Interval-overlap window: facts sharing at least one point with
    /// `window`.
    #[must_use]
    pub fn overlapping(mut self, window: Interval) -> Self {
        self.time = TimeFilter::Window(window);
        self
    }

    /// Allen filter: facts whose interval stands in the basic relation
    /// `rel` to `anchor` (e.g. `before` the anchor spell).
    #[must_use]
    pub fn allen(self, rel: AllenRelation, anchor: Interval) -> Self {
        self.allen_set(AllenSet::from_relation(rel), anchor)
    }

    /// Disjunctive Allen filter: the relation to `anchor` must be a
    /// member of `set` (e.g. [`AllenSet::DISJOINT`]).
    #[must_use]
    pub fn allen_set(mut self, set: AllenSet, anchor: Interval) -> Self {
        self.time = TimeFilter::Allen { set, anchor };
        self
    }

    /// Confidence-threshold projection: keep facts with confidence
    /// `>= min` (inferred facts carry their inference confidence in the
    /// expanded graph).
    #[must_use]
    pub fn min_confidence(mut self, min: f64) -> Self {
        self.min_confidence = min;
        self
    }

    /// Chooses the access path by comparing estimated candidate counts
    /// from the expanded graph's live [`tecore_kg::Cardinalities`] —
    /// real per-predicate fact counts and distinct-subject counts, not
    /// a fixed heuristic. The residual filter in [`QueryIter`] re-checks
    /// every constraint, so any candidate-superset path is exact; the
    /// plan only decides how many candidates get examined.
    ///
    /// The estimates never touch the snapshot's interval index, so a
    /// plan that lands on a hash-index path keeps the index unbuilt.
    fn plan(&self) -> PathChoice {
        let graph = self.snapshot.expanded();
        let cards = graph.cardinalities();
        let unmatchable = self.subject == TermFilter::Unmatchable
            || self.predicate == TermFilter::Unmatchable
            || self.object == TermFilter::Unmatchable;
        // The candidate window, when the time filter admits one.
        let window = match self.time {
            TimeFilter::Any => None,
            TimeFilter::Window(w) => Some(Some(w)),
            TimeFilter::Allen { set, anchor } => Some(set.candidate_window(anchor)),
        };
        if unmatchable || matches!(window, Some(None)) {
            return PathChoice::Empty;
        }
        // Estimated candidates per subject: only *distinct* subjects are
        // tracked, so this is the mean extension size.
        let per_subject =
            (cards.total_facts() as f64 / (cards.distinct_subjects().max(1)) as f64).max(1.0);
        if let Some(Some(w)) = window {
            let mut best: Option<PathChoice> = None;
            let mut consider = |candidate: PathChoice| {
                if best.as_ref().is_none_or(|b| candidate.cost() < b.cost()) {
                    best = Some(candidate);
                }
            };
            match (self.subject, self.predicate) {
                (TermFilter::Is(s), TermFilter::Is(p)) => {
                    consider(PathChoice::SubjectPredicateIds {
                        s,
                        p,
                        est: graph.subject_predicate_ids(s, p).len() as f64,
                    });
                    consider(PathChoice::PredicateOverlap {
                        p,
                        w,
                        est: cards.predicate_facts(p) as f64 * WINDOW_SELECTIVITY,
                    });
                    consider(PathChoice::SubjectOverlap {
                        s,
                        w,
                        est: per_subject * WINDOW_SELECTIVITY,
                    });
                }
                (_, TermFilter::Is(p)) => {
                    consider(PathChoice::PredicateIds {
                        p,
                        est: graph.predicate_ids(p).len() as f64,
                    });
                    consider(PathChoice::PredicateOverlap {
                        p,
                        w,
                        est: cards.predicate_facts(p) as f64 * WINDOW_SELECTIVITY,
                    });
                }
                (TermFilter::Is(s), _) => {
                    consider(PathChoice::SubjectOverlap {
                        s,
                        w,
                        est: per_subject * WINDOW_SELECTIVITY,
                    });
                }
                _ => {
                    consider(PathChoice::AllOverlap {
                        w,
                        est: cards.total_facts() as f64 * WINDOW_SELECTIVITY,
                    });
                }
            }
            best.expect("every filter shape has a candidate path")
        } else {
            // Purely symbolic: the graph's hash indexes are already the
            // narrowest exact paths for their filter shapes.
            match (self.subject, self.predicate) {
                (TermFilter::Is(s), TermFilter::Is(p)) => PathChoice::SubjectPredicateIds {
                    s,
                    p,
                    est: graph.subject_predicate_ids(s, p).len() as f64,
                },
                (_, TermFilter::Is(p)) => PathChoice::PredicateIds {
                    p,
                    est: graph.predicate_ids(p).len() as f64,
                },
                (TermFilter::Is(s), _) => PathChoice::SubjectEntries {
                    s,
                    est: per_subject,
                },
                _ => PathChoice::FullScan {
                    est: graph.arena_len() as f64,
                },
            }
        }
    }

    /// Renders the chosen access path as a human-readable one-liner —
    /// `EXPLAIN` for temporal queries. The estimate is the planner's
    /// candidate count, not the result count (the residual filter
    /// narrows further).
    pub fn explain(&self) -> String {
        let dict = self.snapshot.expanded().dict();
        let name = |sym: Symbol| dict.resolve(sym).to_string();
        match self.plan() {
            PathChoice::Empty => {
                "empty: unsatisfiable (unknown term or impossible Allen window)".to_string()
            }
            PathChoice::SubjectPredicateIds { s, p, est } => format!(
                "hash index (subject={}, predicate={}), ~{est:.0} candidates",
                name(s),
                name(p)
            ),
            PathChoice::PredicateIds { p, est } => {
                format!("hash index (predicate={}), ~{est:.0} candidates", name(p))
            }
            PathChoice::SubjectEntries { s, est } => format!(
                "subject interval sub-index ({}), ~{est:.0} candidates",
                name(s)
            ),
            PathChoice::PredicateOverlap { p, w, est } => format!(
                "predicate interval sub-index ({}) ∩ window {w}, ~{est:.0} candidates",
                name(p)
            ),
            PathChoice::SubjectOverlap { s, w, est } => format!(
                "subject interval sub-index ({}) ∩ window {w}, ~{est:.0} candidates",
                name(s)
            ),
            PathChoice::AllOverlap { w, est } => {
                format!("global interval index ∩ window {w}, ~{est:.0} candidates")
            }
            PathChoice::FullScan { est } => format!("full arena scan, ~{est:.0} candidates"),
        }
    }

    /// Compiles the query into its access path + residual filter and
    /// returns the lazy match iterator. The scan never allocates per
    /// candidate.
    pub fn iter(&self) -> QueryIter<'a> {
        let graph = self.snapshot.expanded();
        let scan = match self.plan() {
            PathChoice::Empty => Scan::Empty,
            PathChoice::SubjectPredicateIds { s, p, .. } => {
                Scan::Ids(graph.subject_predicate_ids(s, p).iter())
            }
            PathChoice::PredicateIds { p, .. } => Scan::Ids(graph.predicate_ids(p).iter()),
            PathChoice::SubjectEntries { s, .. } => match self.snapshot.index().subject(s) {
                Some(idx) => Scan::Entries(idx.entries().iter()),
                None => Scan::Empty, // term known to the dict, but factless
            },
            PathChoice::PredicateOverlap { p, w, .. } => match self.snapshot.index().predicate(p) {
                Some(idx) => Scan::Overlap(idx.iter_overlapping(w)),
                None => Scan::Empty,
            },
            PathChoice::SubjectOverlap { s, w, .. } => match self.snapshot.index().subject(s) {
                Some(idx) => Scan::Overlap(idx.iter_overlapping(w)),
                None => Scan::Empty,
            },
            PathChoice::AllOverlap { w, .. } => {
                Scan::Overlap(self.snapshot.index().all().iter_overlapping(w))
            }
            PathChoice::FullScan { .. } => Scan::Full(0..graph.arena_len() as u32),
        };
        QueryIter {
            graph,
            scan,
            subject: self.subject,
            predicate: self.predicate,
            object: self.object,
            time: self.time,
            min_confidence: self.min_confidence,
        }
    }

    /// All matches, materialised as `(id, fact)` pairs.
    pub fn matches(&self) -> Vec<(FactId, TemporalFact)> {
        self.iter().map(|(id, f)| (id, *f)).collect()
    }

    /// Number of matching facts.
    pub fn count(&self) -> usize {
        self.iter().count()
    }

    /// The distinct objects of the matching facts, sorted by symbol.
    /// This is the "who held this office in 2010" shape: constrain
    /// subject/predicate/time, read the objects.
    pub fn objects(&self) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = self.iter().map(|(_, f)| f.object).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Per-statement coalesced timelines: matches grouped by
    /// `(subject, predicate, object)`, each group's intervals merged
    /// with [`TemporalElement::from_intervals`]. Sorted by first
    /// validity start, then by symbols — deterministic for display.
    pub fn timeline(&self) -> Vec<TimelineEntry> {
        let mut groups: FxHashMap<(Symbol, Symbol, Symbol), Vec<Interval>> = FxHashMap::default();
        for (_, fact) in self.iter() {
            groups.entry(fact.triple()).or_default().push(fact.interval);
        }
        let mut out: Vec<TimelineEntry> = groups
            .into_iter()
            .map(|((s, p, o), ivs)| TimelineEntry {
                subject: s,
                predicate: p,
                object: o,
                element: TemporalElement::from_intervals(ivs),
            })
            .collect();
        out.sort_by_key(|e| {
            (
                e.element.hull().map(|h| h.start()),
                e.subject,
                e.predicate,
                e.object,
            )
        });
        out
    }

    /// The union of all matching facts' validity periods as one
    /// coalesced element — "all periods in which CR coached *some*
    /// club".
    pub fn coalesced_validity(&self) -> TemporalElement {
        TemporalElement::from_intervals(self.iter().map(|(_, f)| f.interval))
    }
}

/// Assumed fraction of an interval sub-index intersecting a query
/// window. Windows are usually much narrower than the data's time hull,
/// and `iter_overlapping` prunes by binary search, so overlap paths get
/// a flat discount against full id-list scans.
const WINDOW_SELECTIVITY: f64 = 0.5;

/// The access path the cost-based planner chose for one query. Every
/// path yields a candidate *superset* of the result; the residual
/// filter keeps execution exact.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PathChoice {
    /// Statically unsatisfiable (unknown term, impossible Allen window).
    Empty,
    /// The `(subject, predicate)` hash index id list.
    SubjectPredicateIds { s: Symbol, p: Symbol, est: f64 },
    /// The predicate hash index id list.
    PredicateIds { p: Symbol, est: f64 },
    /// The subject interval sub-index, walked without a window.
    SubjectEntries { s: Symbol, est: f64 },
    /// The predicate interval sub-index intersected with the window.
    PredicateOverlap { p: Symbol, w: Interval, est: f64 },
    /// The subject interval sub-index intersected with the window.
    SubjectOverlap { s: Symbol, w: Interval, est: f64 },
    /// The global interval index intersected with the window.
    AllOverlap { w: Interval, est: f64 },
    /// Unconstrained arena walk (only when no filter names an index).
    FullScan { est: f64 },
}

impl PathChoice {
    fn cost(&self) -> f64 {
        match *self {
            PathChoice::Empty => 0.0,
            PathChoice::SubjectPredicateIds { est, .. }
            | PathChoice::PredicateIds { est, .. }
            | PathChoice::SubjectEntries { est, .. }
            | PathChoice::PredicateOverlap { est, .. }
            | PathChoice::SubjectOverlap { est, .. }
            | PathChoice::AllOverlap { est, .. }
            | PathChoice::FullScan { est } => est,
        }
    }
}

/// The compiled access path of one query.
#[derive(Debug, Clone)]
enum Scan<'a> {
    /// Statically unsatisfiable (unknown term, impossible Allen window).
    Empty,
    /// Interval-index candidates intersecting the compiled window.
    Overlap(OverlapIter<'a>),
    /// Id list from one of the graph's hash indexes.
    Ids(std::slice::Iter<'a, FactId>),
    /// Entry list of an interval sub-index (no window to narrow by).
    Entries(std::slice::Iter<'a, (FactId, Interval)>),
    /// Unconstrained arena walk (only when no filter names an index).
    Full(std::ops::Range<u32>),
}

/// Lazy iterator over query matches; yields `(FactId, &TemporalFact)`
/// into the snapshot's expanded graph.
#[derive(Debug, Clone)]
pub struct QueryIter<'a> {
    graph: &'a UtkGraph,
    scan: Scan<'a>,
    subject: TermFilter,
    predicate: TermFilter,
    object: TermFilter,
    time: TimeFilter,
    min_confidence: f64,
}

impl<'a> QueryIter<'a> {
    #[inline]
    fn admits(&self, fact: &TemporalFact) -> bool {
        self.subject.admits(fact.subject)
            && self.predicate.admits(fact.predicate)
            && self.object.admits(fact.object)
            && self.time.admits(fact.interval)
            && fact.confidence.value() >= self.min_confidence
    }
}

impl<'a> Iterator for QueryIter<'a> {
    type Item = (FactId, &'a TemporalFact);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let id = match &mut self.scan {
                Scan::Empty => return None,
                Scan::Overlap(iter) => iter.next()?,
                Scan::Ids(iter) => *iter.next()?,
                Scan::Entries(iter) => iter.next()?.0,
                Scan::Full(range) => FactId(range.next()?),
            };
            if let Some(fact) = self.graph.fact(id) {
                if self.admits(fact) {
                    return Some((id, fact));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolution::{InferredFact, Resolution};
    use crate::stats::DebugStats;
    use tecore_kg::parser::parse_graph;

    fn iv(a: i64, b: i64) -> Interval {
        Interval::new(a, b).unwrap()
    }

    /// A snapshot built straight from a resolution (no solver run): the
    /// consistent Ranieri facts plus one inferred worksFor statement.
    fn snapshot() -> Snapshot {
        let graph = parse_graph(
            "(CR, coach, Chelsea, [2000,2004]) 0.9\n\
             (CR, coach, Leicester, [2015,2017]) 0.7\n\
             (CR, playsFor, Palermo, [1984,1986]) 0.5\n\
             (JT, playsFor, Chelsea, [1998,2014]) 0.8\n",
        )
        .unwrap();
        let resolution = Resolution {
            consistent: graph,
            removed: Vec::new(),
            inferred: vec![InferredFact {
                subject: "CR".into(),
                predicate: "worksFor".into(),
                object: "Palermo".into(),
                interval: iv(1984, 1986),
                confidence: 0.62,
            }],
            conflicts: Vec::new(),
            stats: DebugStats::default(),
        };
        Snapshot::from_resolution(resolution, 1)
    }

    #[test]
    fn stabbing_with_predicate_filter() {
        let snap = snapshot();
        let hits = snap.at(2016).predicate("coach").matches();
        assert_eq!(hits.len(), 1);
        let dict = snap.expanded().dict();
        assert_eq!(dict.resolve(hits[0].1.object), "Leicester");
    }

    #[test]
    fn window_and_subject() {
        let snap = snapshot();
        assert_eq!(
            snap.query()
                .subject("CR")
                .overlapping(iv(1980, 1999))
                .count(),
            2, // playsFor + inferred worksFor
        );
        assert_eq!(snap.query().subject("JT").count(), 1);
    }

    #[test]
    fn unknown_terms_match_nothing() {
        let snap = snapshot();
        assert_eq!(snap.query().subject("nobody").count(), 0);
        assert_eq!(snap.query().predicate("coach").object("Napoli").count(), 0);
    }

    #[test]
    fn allen_filters() {
        let snap = snapshot();
        // Spells strictly before the Leicester one, with a gap.
        let before = snap
            .query()
            .predicate("coach")
            .allen(AllenRelation::Before, iv(2015, 2017))
            .matches();
        assert_eq!(before.len(), 1);
        assert_eq!(
            snap.expanded().dict().resolve(before[0].1.object),
            "Chelsea"
        );
        // Disjoint from the Chelsea spell: everything but Chelsea
        // itself and JT's overlapping playsFor.
        assert_eq!(
            snap.query()
                .allen_set(AllenSet::DISJOINT, iv(2000, 2004))
                .count(),
            3
        );
    }

    #[test]
    fn confidence_projection() {
        let snap = snapshot();
        assert_eq!(snap.query().min_confidence(0.7).count(), 3);
        assert_eq!(snap.query().subject("CR").min_confidence(0.6).count(), 3);
    }

    #[test]
    fn objects_shape() {
        let snap = snapshot();
        let objs = snap.at(2002).predicate("coach").subject("CR").objects();
        let names: Vec<&str> = objs
            .iter()
            .map(|&o| snap.expanded().dict().resolve(o))
            .collect();
        assert_eq!(names, ["Chelsea"]);
    }

    #[test]
    fn timelines_coalesce() {
        let snap = snapshot();
        let spells = snap.query().subject("CR").predicate("coach").timeline();
        assert_eq!(spells.len(), 2);
        assert_eq!(
            spells[0].describe(snap.expanded().dict()),
            "CR coach Chelsea {[2000,2004]}"
        );
        let all = snap.query().subject("CR").coalesced_validity();
        assert_eq!(
            all.intervals(),
            &[iv(1984, 1986), iv(2000, 2004), iv(2015, 2017)]
        );
    }
}
