//! The versioned resolution engine.
//!
//! [`Engine`] is the mutable, writer-side half of the system: a uTKG
//! plus rules and constraints, ready to compute the most probable
//! conflict-free KG. Every resolve hands back an immutable, `Arc`-shared
//! [`Snapshot`] stamped with the graph's epoch — the reader-side half.
//! The engine keeps mutating and re-resolving; snapshots already handed
//! out are never touched, so readers on old snapshots see stable
//! results for as long as they hold the `Arc`.
//!
//! Two solve paths share one interpretation:
//!
//! * [`Engine::resolve`] — the batch path: translate, ground, solve
//!   from scratch;
//! * [`Engine::resolve_incremental`] — the interactive path: the first
//!   call grounds cold and caches the materialisation; afterwards
//!   [`Engine::insert_fact`]/[`Engine::remove_fact`] (or any edit
//!   through [`Engine::graph_mut`]) accumulate a [`Delta`] in the
//!   graph's change log, and the next `resolve_incremental` applies
//!   just that delta to the cached grounding and warm-starts the solver
//!   from the previous MAP state — work proportional to the edit, not
//!   the graph.

use std::sync::Arc;
use std::time::Instant;

use tecore_ground::component::{ComponentView, Partition};
use tecore_ground::incremental::DeltaStats;
use tecore_ground::{
    ComponentMode, GroundConfig, Grounding, JoinPlanner, MapState, SolveError, SolveOpts,
};
use tecore_kg::{Delta, FactId, TemporalFact, UtkGraph};
use tecore_logic::LogicProgram;
use tecore_temporal::Interval;
use tecore_wal::{InsertRecord, RecoveryReport, Wal, WalConfig, WalStats};

use crate::batch::{self, ApplyReport, EditBatch, EditOutcome, PlannedOp};
use crate::error::TecoreError;
use crate::pipeline::{check_solver_contract, interpret, SolverHandle, TecoreConfig};
use crate::resolution::Resolution;
use crate::snapshot::Snapshot;
use crate::translate::translate;

/// The cached state of the incremental engine: the materialised
/// grounding plus the last MAP state (the warm start for the next
/// solve).
#[derive(Debug, Clone)]
struct EngineState {
    grounding: Grounding,
    last_state: Option<MapState>,
}

/// One solve dispatch's result: the (possibly merged) global MAP state
/// plus the component accounting for the stats screen.
struct SolveOutcome {
    state: MapState,
    /// Components the problem was partitioned into (`0` = monolithic).
    components: usize,
    /// Components actually solved (the rest were spliced from the
    /// previous state).
    components_solved: usize,
}

/// The **component-wise solve driver** — the seam between the engine
/// and the configured [`MapSolver`](tecore_ground::MapSolver).
///
/// When the backend declares [`SolverCaps::components`] (and does not
/// ground lazily) and the mode allows it, the ground problem is
/// partitioned into independent conflict components
/// (`tecore_ground::component`); each **dirty** component is dispatched
/// to [`MapSolver::solve_component`](tecore_ground::MapSolver) as a
/// zero-copy sub-view in its local atom id space — in parallel across
/// worker threads when the `parallel` feature is on — while **clean**
/// components splice their slice of the previous MAP state untouched.
/// The per-component states merge into one global state whose cost and
/// feasibility are re-derived from the full arena, so the merged state
/// satisfies exactly the contract a monolithic solve would.
///
/// Everything else (unsupported backend, `Monolithic` mode, a single
/// component under `Auto`, an unpartitionable arena) falls back to one
/// monolithic [`MapSolver::solve`](tecore_ground::MapSolver).
fn solve_dispatch(
    solver: &SolverHandle,
    grounding: &mut Grounding,
    opts: &SolveOpts<'_>,
) -> Result<SolveOutcome, TecoreError> {
    let caps = solver.caps();
    // A lazily grounded arena lacks the not-yet-activated constraint
    // couplings, so a clause-connectivity partition over it would be
    // unsound — such backends always solve monolithically.
    let component_capable = caps.components && !caps.lazy_grounding;
    let use_components = component_capable
        && match opts.component_mode {
            ComponentMode::Monolithic => false,
            ComponentMode::Components => true,
            // `Auto` partitions where partitioning reliably pays: on
            // incremental re-solves (a previous state lets clean
            // components be spliced, so work shrinks to the dirty set)
            // and for exact backends (whose worst case is exponential
            // *per component*, so splitting wins even cold). A cold
            // heuristic solve sees no dirty-set benefit and keeps the
            // tuned monolithic path; force `Components` to override.
            ComponentMode::Auto => opts.warm_start.is_some() || caps.exact,
        };
    if !use_components {
        return monolithic_solve(solver, grounding, opts);
    }
    // Clean fast path: when the component index is current, nothing is
    // dirty and the previous state covers every atom, the problem is
    // byte-identical to the one that state solved — return it without
    // re-partitioning (a no-op resolve then costs O(1) instead of
    // O(atoms + clauses)).
    if let (Some(warm), Some(index)) = (opts.warm_start, grounding.component_index()) {
        if !index.any_dirty()
            && index.num_atoms() == grounding.num_atoms()
            && warm.assignment.len() == grounding.num_atoms()
            && warm.soft_values.is_some() == caps.soft_values
        {
            return Ok(SolveOutcome {
                state: warm.clone(),
                components: index.component_count(),
                components_solved: 0,
            });
        }
    }
    let partition = grounding.partition_components();
    if partition.is_unpartitionable()
        || (matches!(opts.component_mode, ComponentMode::Auto) && partition.len() <= 1)
    {
        return monolithic_solve(solver, grounding, opts);
    }

    // Without a previous state there is nothing to splice: every
    // component is solved. With one, only dirty components are.
    let warm = opts.warm_start;
    let dirty: Vec<usize> = (0..partition.len())
        .filter(|&i| warm.is_none() || partition.is_dirty(i))
        .collect();
    let solved = solve_components(solver, grounding, &partition, &dirty, warm, opts)?;

    // Merge. The base is the previous assignment (which *is* the
    // spliced value of every clean component, and carries dead or
    // clause-free atoms across); solved components scatter over it.
    let n = grounding.num_atoms();
    let mut assignment: Vec<bool> = match warm {
        Some(w) => {
            let mut v = w.assignment.clone();
            v.resize(n, false);
            v
        }
        None => vec![false; n],
    };
    let mut soft: Option<Vec<f64>> = if caps.soft_values {
        let mut base: Vec<f64> = match warm.and_then(|w| w.soft_values.as_ref()) {
            Some(values) => values.clone(),
            None => assignment.iter().map(|&b| f64::from(u8::from(b))).collect(),
        };
        base.resize(n, 0.0);
        Some(base)
    } else {
        None
    };
    for (&comp, state) in dirty.iter().zip(&solved) {
        let atoms = partition.atoms(comp);
        for (local, &atom) in atoms.iter().enumerate() {
            assignment[atom.index()] = state.assignment[local];
        }
        if let Some(soft) = &mut soft {
            // The merge buffer exists iff caps declare soft values, and
            // `solve_one_component` rejects any component state whose
            // soft-value presence disagrees with the caps.
            let values = state
                .soft_values
                .as_ref()
                .expect("per-component contract enforced by solve_one_component");
            for (local, &atom) in atoms.iter().enumerate() {
                soft[atom.index()] = values[local];
            }
        }
    }
    // Cost and feasibility are re-derived from the full arena rather
    // than summed per component: one O(live lits) pass that is exact by
    // construction for spliced and solved components alike.
    let (cost, hard_violations) = tecore_ground::evaluate_world(&grounding.clauses, &assignment);
    Ok(SolveOutcome {
        state: MapState {
            assignment,
            cost,
            feasible: hard_violations == 0,
            active_clauses: grounding.clauses.len(),
            soft_values: soft,
        },
        components: partition.len(),
        components_solved: dirty.len(),
    })
}

/// The monolithic fallback: one [`MapSolver::solve`](tecore_ground::MapSolver)
/// over the whole grounding, with the warm start gated on the backend's
/// declared capability (exactly the pre-component behaviour).
fn monolithic_solve(
    solver: &SolverHandle,
    grounding: &Grounding,
    opts: &SolveOpts<'_>,
) -> Result<SolveOutcome, TecoreError> {
    let mono = SolveOpts {
        seed: opts.seed,
        warm_start: if solver.caps().warm_start {
            opts.warm_start
        } else {
            None
        },
        component_mode: ComponentMode::Monolithic,
    };
    Ok(SolveOutcome {
        state: solver.solve(grounding, &mono)?,
        components: 0,
        components_solved: 0,
    })
}

/// Solves one dirty component through the backend's sub-view entry,
/// offering a remapped warm start when the backend consumes one, and
/// enforcing the local state contract.
fn solve_one_component(
    solver: &SolverHandle,
    grounding: &Grounding,
    partition: &Partition,
    comp: usize,
    warm: Option<&MapState>,
    opts: &SolveOpts<'_>,
) -> Result<MapState, TecoreError> {
    let view = partition.view(&grounding.clauses, comp);
    let local_warm_state = match (solver.caps().warm_start, warm) {
        (true, Some(w)) => local_warm(&view, w),
        _ => None,
    };
    let local_opts = SolveOpts {
        seed: opts.seed,
        warm_start: local_warm_state.as_ref(),
        component_mode: ComponentMode::Monolithic,
    };
    let state = solver.solve_component(&view, &local_opts)?;
    // The per-component state contract mirrors `check_solver_contract`:
    // local vector lengths must match the view, and soft values must be
    // present exactly when the caps declare them (otherwise the merge
    // would silently fabricate 0/1 confidences for the component).
    let violation = if state.assignment.len() != view.num_atoms() {
        Some(format!(
            "returned {} assignments for a {}-atom component",
            state.assignment.len(),
            view.num_atoms()
        ))
    } else if state
        .soft_values
        .as_ref()
        .is_some_and(|v| v.len() != view.num_atoms())
    {
        Some(format!(
            "returned {} soft values for a {}-atom component",
            state.soft_values.as_ref().map_or(0, Vec::len),
            view.num_atoms()
        ))
    } else if solver.caps().soft_values != state.soft_values.is_some() {
        Some(format!(
            "caps declare soft_values = {} but the component solve {} them",
            solver.caps().soft_values,
            if state.soft_values.is_some() {
                "returned"
            } else {
                "omitted"
            }
        ))
    } else {
        None
    };
    if let Some(violation) = violation {
        return Err(TecoreError::Solve(SolveError::Backend(format!(
            "solver `{}` {violation}",
            solver.name()
        ))));
    }
    Ok(state)
}

/// Projects the global previous MAP state into a component's local atom
/// id space. Atoms past the previous state's horizon are new; local
/// ids ascend with global ids, so the unknown suffix is simply
/// truncated (solvers pad beyond a short warm start themselves).
/// Returns `None` when the previous state covers *no* member atom — an
/// all-new component is cold, and offering it an empty "warm" start
/// would make stochastic solvers skip their cold-start restarts.
fn local_warm(view: &ComponentView<'_>, warm: &MapState) -> Option<MapState> {
    let atoms = view.atoms();
    let known = atoms.partition_point(|a| a.index() < warm.assignment.len());
    if known == 0 {
        return None;
    }
    Some(MapState {
        assignment: atoms[..known]
            .iter()
            .map(|a| warm.assignment[a.index()])
            .collect(),
        cost: 0.0,
        feasible: true,
        active_clauses: 0,
        soft_values: warm
            .soft_values
            .as_ref()
            .map(|values| atoms[..known].iter().map(|a| values[a.index()]).collect()),
    })
}

/// Below this many clauses across the dirty components the parallel
/// driver stays serial: thread spawns cost more than the solves.
#[cfg(feature = "parallel")]
const PARALLEL_SOLVE_THRESHOLD: usize = 256;

/// Solves the dirty components, fanning out over scoped worker threads
/// when the workload warrants it (requires the `parallel` feature; the
/// environment ships no rayon, so this is plain `std::thread::scope`
/// with results re-slotted in component order — byte-identical output
/// to the serial path).
#[cfg(feature = "parallel")]
fn solve_components(
    solver: &SolverHandle,
    grounding: &Grounding,
    partition: &Partition,
    dirty: &[usize],
    warm: Option<&MapState>,
    opts: &SolveOpts<'_>,
) -> Result<Vec<MapState>, TecoreError> {
    let total_clauses: usize = dirty.iter().map(|&i| partition.clause_ids(i).len()).sum();
    // Worker count: `TECORE_SOLVE_WORKERS` (ops/test knob — also how
    // single-core CI exercises the fan-out; read per solve, the lookup
    // is trivial next to one) else the machine's parallelism.
    let cores = std::env::var("TECORE_SOLVE_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
    let workers = cores.min(dirty.len());
    if workers < 2 || total_clauses < PARALLEL_SOLVE_THRESHOLD {
        return dirty
            .iter()
            .map(|&comp| solve_one_component(solver, grounding, partition, comp, warm, opts))
            .collect();
    }
    let mut slots: Vec<Option<Result<MapState, TecoreError>>> =
        std::iter::repeat_with(|| None).take(dirty.len()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || -> Vec<(usize, Result<MapState, TecoreError>)> {
                    dirty
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(slot, &comp)| {
                            (
                                slot,
                                solve_one_component(solver, grounding, partition, comp, warm, opts),
                            )
                        })
                        .collect()
                })
            })
            .collect();
        for handle in handles {
            for (slot, result) in handle.join().expect("component solver panicked") {
                slots[slot] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every dirty component produced a result"))
        .collect()
}

/// Serial fallback when the crate is built without the `parallel`
/// feature.
#[cfg(not(feature = "parallel"))]
fn solve_components(
    solver: &SolverHandle,
    grounding: &Grounding,
    partition: &Partition,
    dirty: &[usize],
    warm: Option<&MapState>,
    opts: &SolveOpts<'_>,
) -> Result<Vec<MapState>, TecoreError> {
    dirty
        .iter()
        .map(|&comp| solve_one_component(solver, grounding, partition, comp, warm, opts))
        .collect()
}

/// The TeCoRe system: a versioned uTKG plus rules and constraints,
/// resolving into immutable [`Snapshot`]s.
///
/// ```
/// use tecore_core::prelude::*;
/// use tecore_kg::parser::parse_graph;
/// use tecore_logic::LogicProgram;
///
/// let graph = parse_graph(
///     "(CR, coach, Chelsea, [2000,2004]) 0.9\n\
///      (CR, coach, Napoli, [2001,2003]) 0.6\n",
/// ).unwrap();
/// let program = LogicProgram::parse(
///     "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf",
/// ).unwrap();
/// let snapshot = Engine::new(graph, program).resolve().unwrap();
/// assert_eq!(snapshot.stats.conflicting_facts, 1); // Napoli removed
/// assert_eq!(snapshot.at(2002).predicate("coach").count(), 1);
/// ```
#[derive(Debug)]
pub struct Engine {
    graph: UtkGraph,
    program: LogicProgram,
    config: TecoreConfig,
    cache: Option<EngineState>,
    latest: Option<Arc<Snapshot>>,
    /// Write-ahead log, when this engine is durable: every
    /// insert/remove is journaled *before* the graph mutation.
    wal: Option<Wal>,
    /// Times the incremental path re-grounded because the change log
    /// was truncated past the cached epoch (surfaced in
    /// [`DebugStats::fallback_regrounds`](crate::stats::DebugStats)).
    fallback_regrounds: u64,
}

impl Clone for Engine {
    /// Clones the in-memory engine. The WAL handle is deliberately
    /// **not** cloned — two engines appending to one log would
    /// interleave epochs — so the clone is a plain in-memory engine.
    fn clone(&self) -> Self {
        Engine {
            graph: self.graph.clone(),
            program: self.program.clone(),
            config: self.config.clone(),
            cache: self.cache.clone(),
            latest: self.latest.clone(),
            wal: None,
            fallback_regrounds: self.fallback_regrounds,
        }
    }
}

impl Engine {
    /// Creates an engine with default configuration.
    pub fn new(graph: UtkGraph, program: LogicProgram) -> Self {
        Engine::with_config(graph, program, TecoreConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(graph: UtkGraph, program: LogicProgram, config: TecoreConfig) -> Self {
        Engine {
            graph,
            program,
            config,
            cache: None,
            latest: None,
            wal: None,
            fallback_regrounds: 0,
        }
    }

    /// Creates a **durable** engine over a graph that was recovered
    /// from `wal` (i.e. the pair returned by [`Wal::open`]): every
    /// subsequent [`Engine::insert_fact`]/[`Engine::remove_fact`] is
    /// journaled before it is applied.
    pub fn durable(graph: UtkGraph, program: LogicProgram, config: TecoreConfig, wal: Wal) -> Self {
        let mut engine = Engine::with_config(graph, program, config);
        engine.wal = Some(wal);
        engine
    }

    /// Opens (or creates) the write-ahead log in `dir` with default
    /// configurations, recovers the graph it describes, and returns a
    /// durable engine serving it.
    pub fn open_durable(
        dir: impl Into<std::path::PathBuf>,
        program: LogicProgram,
    ) -> Result<Self, TecoreError> {
        Engine::open_durable_with(dir, program, TecoreConfig::default(), WalConfig::default())
    }

    /// [`Engine::open_durable`] with explicit engine and log
    /// configurations.
    pub fn open_durable_with(
        dir: impl Into<std::path::PathBuf>,
        program: LogicProgram,
        config: TecoreConfig,
        wal_config: WalConfig,
    ) -> Result<Self, TecoreError> {
        let (wal, graph) = Wal::open(dir, wal_config)?;
        Ok(Engine::durable(graph, program, config, wal))
    }

    /// Makes an in-memory engine durable by attaching a log whose
    /// recovered state did *not* produce this graph: the graph is
    /// immediately checkpointed so the log has a durable baseline to
    /// replay future edits against. The `wal` must be freshly opened
    /// (its recovered epoch at or below the graph's).
    pub fn attach_wal(&mut self, wal: Wal) -> Result<(), TecoreError> {
        self.wal = Some(wal);
        self.checkpoint()
    }

    /// The input graph.
    pub fn graph(&self) -> &UtkGraph {
        &self.graph
    }

    /// Mutable access to the graph. Edits are picked up by the next
    /// [`Engine::resolve_incremental`] through the graph's change log;
    /// if the log was truncated past the cached epoch the engine falls
    /// back to a full re-ground.
    pub fn graph_mut(&mut self) -> &mut UtkGraph {
        &mut self.graph
    }

    /// The logic program.
    pub fn program(&self) -> &LogicProgram {
        &self.program
    }

    /// The configuration.
    pub fn config(&self) -> &TecoreConfig {
        &self.config
    }

    /// The most recent snapshot this engine produced, if any. Cheap to
    /// clone and hand to reader threads; later engine mutations never
    /// affect it.
    pub fn latest(&self) -> Option<Arc<Snapshot>> {
        self.latest.clone()
    }

    /// Updates the derived-fact confidence threshold without
    /// invalidating the cached incremental state (thresholding only
    /// affects result interpretation, never the grounding).
    pub fn set_threshold(&mut self, threshold: f64) {
        self.config.threshold = threshold;
    }

    /// Updates the conflict-component treatment without invalidating
    /// the cached incremental state (the mode only affects solve
    /// dispatch, never the grounding).
    pub fn set_component_mode(&mut self, mode: ComponentMode) {
        self.config.component_mode = mode;
    }

    /// Switches the grounding join planner. Unlike the other knobs this
    /// *does* drop the cached incremental state: the chosen plans are
    /// baked into the materialised grounding, so the next resolve
    /// re-grounds cold under the new planner.
    pub fn set_planner(&mut self, planner: JoinPlanner) {
        if self.config.ground.planner != planner {
            self.config.ground.planner = planner;
            self.cache = None;
        }
    }

    /// Applies an [`EditBatch`] — the unified edit surface every other
    /// mutation path (per-fact methods, [`Session`](crate::Session)
    /// edits, the server writer loop, the stream window admitter) now
    /// routes through.
    ///
    /// Ops apply **sequentially, in builder order**, each validated
    /// against the graph state its predecessors left: `apply(batch)`
    /// is observationally identical to issuing the same ops through
    /// the per-fact methods one at a time. The whole batch lands in
    /// consecutive epochs of the change log, so the next
    /// [`Engine::resolve_incremental`] consumes it as **one netted
    /// delta** — one grounding sync, one warm-started solve.
    ///
    /// On a durable engine each op is journaled *before* its graph
    /// mutation (one consecutive WAL entry group per batch; a
    /// semantically rejected op is never journaled). A journal append
    /// failure marks the op [`EditOutcome::Failed`], skips the rest of
    /// the batch, and leaves the applied prefix consistent — exactly
    /// what recovery will rebuild.
    ///
    /// The call itself is infallible; per-op results (minted ids,
    /// replaced facts, rejections) are in the returned
    /// [`ApplyReport`]. Use [`ApplyReport::into_result`] to treat any
    /// rejection as a batch error.
    pub fn apply(&mut self, batch: &EditBatch) -> ApplyReport {
        let mut report = ApplyReport {
            outcomes: Vec::with_capacity(batch.len()),
        };
        let mut wal_dead = false;
        for op in batch.ops() {
            if wal_dead {
                report.outcomes.push(EditOutcome::Skipped);
                continue;
            }
            let planned = match batch::plan_op(&self.graph, op) {
                Ok(planned) => planned,
                Err(e) => {
                    report.outcomes.push(EditOutcome::Rejected(e));
                    continue;
                }
            };
            if let Some(wal) = self.wal.as_mut() {
                if let Err(e) = journal_planned(wal, &self.graph, &planned) {
                    wal_dead = true;
                    report.outcomes.push(EditOutcome::Failed(e));
                    continue;
                }
            }
            report
                .outcomes
                .push(batch::execute_op(&mut self.graph, planned));
        }
        report
    }

    /// Inserts a fact (interning as needed); the change feeds the next
    /// incremental resolve. On a durable engine the edit is journaled
    /// *before* the graph mutation — a failed journal append leaves
    /// the graph untouched, so in-memory state never runs ahead of
    /// what recovery can rebuild.
    ///
    /// Thin wrapper over [`Engine::apply`] with a one-op batch, kept
    /// for convenience and compatibility; prefer building an
    /// [`EditBatch`] when issuing more than one edit per resolve.
    pub fn insert_fact(
        &mut self,
        subject: &str,
        predicate: &str,
        object: &str,
        interval: Interval,
        confidence: f64,
    ) -> Result<FactId, TecoreError> {
        let batch = EditBatch::new().insert(subject, predicate, object, interval, confidence);
        match self.apply(&batch).outcomes.pop() {
            Some(EditOutcome::Inserted(id)) => Ok(id),
            Some(EditOutcome::Rejected(e) | EditOutcome::Failed(e)) => Err(e),
            _ => Err(TecoreError::Session(
                "single-op batch produced no outcome".into(),
            )),
        }
    }

    /// Removes (tombstones) a fact; the change feeds the next
    /// incremental resolve. Durable engines journal first, exactly as
    /// in [`Engine::insert_fact`].
    ///
    /// Thin wrapper over [`Engine::apply`] with a one-op batch, kept
    /// for convenience and compatibility; prefer building an
    /// [`EditBatch`] when issuing more than one edit per resolve.
    pub fn remove_fact(&mut self, id: FactId) -> Result<TemporalFact, TecoreError> {
        let batch = EditBatch::new().remove(id);
        match self.apply(&batch).outcomes.pop() {
            Some(EditOutcome::Removed(fact)) => Ok(fact),
            Some(EditOutcome::Rejected(e) | EditOutcome::Failed(e)) => Err(e),
            _ => Err(TecoreError::Session(
                "single-op batch produced no outcome".into(),
            )),
        }
    }

    /// Is this engine journaling edits to a write-ahead log?
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Log counters, when durable.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.as_ref().map(Wal::stats)
    }

    /// What recovery found when the log was opened, when durable.
    pub fn wal_recovery(&self) -> Option<&RecoveryReport> {
        self.wal.as_ref().map(Wal::recovery)
    }

    /// Has the log been poisoned by an I/O failure? (Edits are refused
    /// from then on; a serving layer should degrade to read-only.)
    pub fn wal_poisoned(&self) -> bool {
        self.wal.as_ref().is_some_and(Wal::is_poisoned)
    }

    /// Forces journaled edits to durable storage and returns the
    /// durable epoch — the `FLUSH` protocol verb. `Ok(0)` on an
    /// in-memory engine (nothing to flush, nothing durable).
    pub fn flush_wal(&mut self) -> Result<u64, TecoreError> {
        match self.wal.as_mut() {
            Some(wal) => Ok(wal.flush()?),
            None => Ok(0),
        }
    }

    /// Writes a durable checkpoint of the current graph and prunes the
    /// log behind it. No-op on an in-memory engine.
    pub fn checkpoint(&mut self) -> Result<(), TecoreError> {
        if let Some(wal) = self.wal.as_mut() {
            wal.checkpoint(&self.graph)?;
        }
        Ok(())
    }

    /// Checkpoints if the log has grown past its configured threshold
    /// since the last one. Returns whether a checkpoint was taken.
    pub fn maybe_checkpoint(&mut self) -> Result<bool, TecoreError> {
        if self.wal.as_ref().is_some_and(Wal::should_checkpoint) {
            self.checkpoint()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Times the incremental path fell back to a full re-ground on a
    /// truncated change log (see
    /// [`DebugStats::fallback_regrounds`](crate::stats::DebugStats)).
    pub fn fallback_regrounds(&self) -> u64 {
        self.fallback_regrounds
    }

    /// The grounding configuration actually used: the backend's caps
    /// decide whether constraints ground eagerly or lazily, and the
    /// incremental path must keep applying the same choice.
    fn effective_ground_config(&self) -> GroundConfig {
        let mut config = self.config.ground.clone();
        config.ground_constraints = !self.config.backend.caps().lazy_grounding;
        config
    }

    /// Applies a delta to the cached grounding, if one exists and the
    /// delta starts at its epoch. Returns the delta statistics, or
    /// `None` when there is no cached materialisation to update (or
    /// the epochs don't line up — the cache is then invalidated and
    /// the next resolve re-grounds).
    pub fn apply_delta(&mut self, delta: &Delta) -> Option<DeltaStats> {
        let config = self.effective_ground_config();
        let engine = self.cache.as_mut()?;
        if engine.grounding.epoch() != delta.from_epoch {
            self.cache = None;
            return None;
        }
        Some(engine.grounding.apply_delta(&self.graph, delta, &config))
    }

    /// Stamps a resolution with the current graph epoch and publishes
    /// it as the latest snapshot.
    fn publish(&mut self, resolution: Resolution) -> Arc<Snapshot> {
        let snapshot = Arc::new(Snapshot::from_resolution(resolution, self.graph.epoch()));
        self.latest = Some(Arc::clone(&snapshot));
        snapshot
    }

    /// Runs `map(θ(G), F ∪ C)` from scratch and returns the resolved
    /// [`Snapshot`].
    pub fn resolve(&mut self) -> Result<Arc<Snapshot>, TecoreError> {
        let resolution = self.resolve_raw()?;
        Ok(self.publish(resolution))
    }

    /// The batch path without snapshot wrapping: translate, ground and
    /// solve from scratch, returning the bare [`Resolution`]. Prefer
    /// [`Engine::resolve`]; this exists for callers that only consume
    /// the resolution once and want to skip the `Arc`.
    pub fn resolve_raw(&self) -> Result<Resolution, TecoreError> {
        let solver = &self.config.backend;
        let mut grounding = translate(
            &self.graph,
            &self.program,
            &solver.caps(),
            &self.config.ground,
        )?;
        let opts = SolveOpts {
            component_mode: self.config.component_mode,
            ..SolveOpts::default()
        };
        let solve_start = Instant::now();
        let outcome = solve_dispatch(solver, &mut grounding, &opts)?;
        let solve_time = solve_start.elapsed();
        check_solver_contract(solver, &grounding, &outcome.state)?;
        let mut resolution = interpret(
            &self.graph,
            &grounding,
            outcome.state,
            &self.config,
            grounding.stats.elapsed,
            solve_time,
        );
        resolution.stats.components = outcome.components;
        resolution.stats.components_solved = outcome.components_solved;
        resolution.stats.fallback_regrounds = self.fallback_regrounds;
        Ok(resolution)
    }

    /// Runs conflict resolution incrementally: syncs the cached
    /// grounding with the graph's change log (cold-grounding on the
    /// first call or after log truncation), warm-starts the solver
    /// from the previous MAP state when its caps allow, and returns the
    /// result as a fresh [`Snapshot`] — exactly like [`Engine::resolve`]
    /// would on the same graph.
    pub fn resolve_incremental(&mut self) -> Result<Arc<Snapshot>, TecoreError> {
        let solver = self.config.backend.clone();
        let caps = solver.caps();

        // 1. Sync the materialised grounding with the graph. Note that
        // an empty *net* delta still goes through apply_delta (a no-op
        // except for advancing the epoch): the epoch must move so the
        // log truncation below can drop netted churn (insert+remove
        // pairs) instead of re-netting a growing log every resolve.
        let mut engine = match self.cache.take() {
            Some(mut engine) => match self.graph.since(engine.grounding.epoch()) {
                Some(delta) => {
                    let config = self.effective_ground_config();
                    let delta_stats = engine.grounding.apply_delta(&self.graph, &delta, &config);
                    engine.grounding.stats.elapsed = delta_stats.elapsed;
                    engine
                }
                None => {
                    // The change log no longer reaches back to the
                    // cached epoch: re-ground from scratch.
                    self.fallback_regrounds += 1;
                    EngineState {
                        grounding: translate(
                            &self.graph,
                            &self.program,
                            &caps,
                            &self.config.ground,
                        )?,
                        last_state: None,
                    }
                }
            },
            None => EngineState {
                grounding: translate(&self.graph, &self.program, &caps, &self.config.ground)?,
                last_state: None,
            },
        };
        // Long churny sessions accumulate dead atom slots (ids are
        // never reused so solver vectors stay index-stable); once the
        // graveyard dominates, a compacting re-ground is cheaper than
        // dragging it through every solve.
        let dead = engine.grounding.store.dead_count();
        if dead > 64 && dead * 2 > engine.grounding.num_atoms() {
            engine = EngineState {
                grounding: translate(&self.graph, &self.program, &caps, &self.config.ground)?,
                last_state: None, // atom ids changed: warm state is void
            };
        }
        // The cache has consumed the history; keep the log bounded.
        self.graph.truncate_log(engine.grounding.epoch());

        // 2. Warm-started solve. The previous MAP state is always
        // offered to the *driver* — it splices clean components from it
        // even for backends without warm-start support — and the driver
        // gates what each backend actually sees on its caps.
        let opts = SolveOpts {
            seed: None,
            warm_start: engine.last_state.as_ref(),
            component_mode: self.config.component_mode,
        };
        let solve_start = Instant::now();
        let outcome = solve_dispatch(&solver, &mut engine.grounding, &opts)?;
        let solve_time = solve_start.elapsed();
        let state = outcome.state;
        check_solver_contract(&solver, &engine.grounding, &state)?;
        // The merged state is about to become the cached splice source;
        // every component's cached slice is now current.
        engine.grounding.clear_component_dirty();

        // 3. Interpret, then cache grounding + state for the next round.
        let mut resolution = interpret(
            &self.graph,
            &engine.grounding,
            state.clone(),
            &self.config,
            engine.grounding.stats.elapsed,
            solve_time,
        );
        resolution.stats.components = outcome.components;
        resolution.stats.components_solved = outcome.components_solved;
        resolution.stats.fallback_regrounds = self.fallback_regrounds;
        engine.last_state = Some(state);
        self.cache = Some(engine);
        Ok(self.publish(resolution))
    }
}

/// Journals one planned (pre-validated) op to the write-ahead log,
/// *before* the graph mutation. Epochs are assigned exactly as the
/// subsequent execution will bump them (`graph.epoch() + 1` per
/// mutation, upserts journaling each removal then the insert), and
/// insert ids are the arena positions the graph is about to mint — so
/// a replayed log rebuilds byte-identical state.
fn journal_planned(
    wal: &mut Wal,
    graph: &UtkGraph,
    planned: &PlannedOp<'_>,
) -> Result<(), TecoreError> {
    let epoch = graph.epoch();
    match planned {
        PlannedOp::Insert {
            subject,
            predicate,
            object,
            interval,
            confidence,
        } => {
            let id = FactId(graph.arena_len() as u32);
            wal.log_insert(
                epoch + 1,
                id,
                &InsertRecord {
                    subject,
                    predicate,
                    object,
                    interval: *interval,
                    confidence: *confidence,
                },
            )?;
        }
        PlannedOp::Remove(id) => wal.log_remove(epoch + 1, *id)?,
        PlannedOp::Upsert {
            doomed,
            subject,
            predicate,
            object,
            interval,
            confidence,
        } => {
            for (i, id) in doomed.iter().enumerate() {
                wal.log_remove(epoch + 1 + i as u64, *id)?;
            }
            let id = FactId(graph.arena_len() as u32);
            wal.log_insert(
                epoch + 1 + doomed.len() as u64,
                id,
                &InsertRecord {
                    subject,
                    predicate,
                    object,
                    interval: *interval,
                    confidence: *confidence,
                },
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Backend, ConfidenceMode, SolverHandle};
    use tecore_kg::parser::parse_graph;
    use tecore_mln::marginal::GibbsConfig;
    use tecore_mln::{CpiConfig, WalkSatConfig};

    const RANIERI: &str = "\
        (CR, coach, Chelsea, [2000,2004]) 0.9\n\
        (CR, coach, Leicester, [2015,2017]) 0.7\n\
        (CR, playsFor, Palermo, [1984,1986]) 0.5\n\
        (CR, birthDate, 1951, [1951,2017]) 1.0\n\
        (CR, coach, Napoli, [2001,2003]) 0.6\n";

    const PAPER_PROGRAM: &str = "\
        f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5\n\
        f2: quad(x, worksFor, y, t) ^ quad(y, locatedIn, z, t') ^ overlap(t, t') \
            -> quad(x, livesIn, z, t ∩ t') w = 1.6\n\
        f3: quad(x, playsFor, y, t) ^ quad(x, birthDate, z, t') ^ t - t' < 20 \
            -> quad(x, type, TeenPlayer) w = 2.9\n\
        c1: quad(x, birthDate, y, t) ^ quad(x, deathDate, z, t') -> before(t, t') w = inf\n\
        c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf\n\
        c3: quad(x, bornIn, y, t) ^ quad(x, bornIn, z, t') ^ overlap(t, t') -> y = z w = inf\n";

    fn run(backend: impl Into<SolverHandle>) -> Arc<Snapshot> {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend: backend.into(),
            ..TecoreConfig::default()
        };
        Engine::with_config(graph, program, config)
            .resolve()
            .unwrap()
    }

    /// The paper's running example, Figure 7: fact (5) (Napoli) removed,
    /// facts (1)–(4) kept, on every backend.
    #[test]
    fn running_example_all_backends() {
        for backend in [
            Backend::MlnExact,
            Backend::MlnWalkSat(WalkSatConfig::default()),
            Backend::MlnCuttingPlane(CpiConfig::default()),
            Backend::default_psl(),
        ] {
            let name = backend.name();
            let r = run(backend);
            assert!(r.stats.feasible, "{name}: must be feasible");
            assert_eq!(
                r.stats.conflicting_facts, 1,
                "{name}: exactly the Napoli fact removed"
            );
            assert_eq!(r.consistent.len(), 4, "{name}");
            let removed = &r.removed[0];
            assert_eq!(
                r.consistent.dict().resolve(removed.fact.object),
                "Napoli",
                "{name}"
            );
            // f1 derives worksFor(CR, Palermo, [1984,1986]).
            assert_eq!(r.inferred.len(), 1, "{name}: {:?}", r.inferred);
            assert_eq!(r.inferred[0].predicate, "worksFor", "{name}");
            // c2 detected exactly one conflict.
            assert_eq!(
                r.stats.per_constraint,
                vec![("c2".to_string(), 1)],
                "{name}"
            );
        }
    }

    fn iv(a: i64, b: i64) -> tecore_temporal::Interval {
        tecore_temporal::Interval::new(a, b).unwrap()
    }

    /// Sorted display strings of a resolution's surviving facts.
    fn canonical(r: &Resolution) -> (Vec<String>, Vec<String>, Vec<String>) {
        let mut kept: Vec<String> = r
            .consistent
            .iter()
            .map(|(_, f)| f.display(r.consistent.dict()).to_string())
            .collect();
        kept.sort();
        let mut removed: Vec<String> = r
            .removed
            .iter()
            .map(|rf| rf.fact.display(r.consistent.dict()).to_string())
            .collect();
        removed.sort();
        let mut inferred: Vec<String> = r
            .inferred
            .iter()
            .map(|f| format!("{} {} {} {}", f.subject, f.predicate, f.object, f.interval))
            .collect();
        inferred.sort();
        (kept, removed, inferred)
    }

    /// A sequence of edits through the incremental engine must land on
    /// exactly the repair a cold solve of the final graph computes — on
    /// every backend, warm starts included.
    #[test]
    fn incremental_edits_match_cold_resolve_on_all_backends() {
        for backend in [
            Backend::MlnExact,
            Backend::MlnWalkSat(WalkSatConfig::default()),
            Backend::MlnCuttingPlane(CpiConfig::default()),
            Backend::default_psl(),
        ] {
            let name = backend.name();
            let graph = parse_graph(RANIERI).unwrap();
            let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
            let config = TecoreConfig {
                backend: backend.into(),
                ..TecoreConfig::default()
            };
            let mut engine = Engine::with_config(graph, program.clone(), config.clone());

            // Prime: identical to the batch result.
            let first = engine.resolve_incremental().unwrap();
            assert_eq!(first.stats.conflicting_facts, 1, "{name}");

            // Edit burst: a fresh clash with Leicester, and the Palermo
            // spell (the worksFor derivation's support) goes away.
            engine
                .insert_fact("CR", "coach", "Roma", iv(2016, 2018), 0.95)
                .unwrap();
            let plays = engine.graph().dict().lookup("playsFor").unwrap();
            let palermo_fact = engine
                .graph()
                .facts_with_predicate(plays)
                .next()
                .map(|(id, _)| id)
                .unwrap();
            engine.remove_fact(palermo_fact).unwrap();

            let incremental = engine.resolve_incremental().unwrap();
            let cold = Engine::with_config(engine.graph().clone(), program, config)
                .resolve()
                .unwrap();
            assert_eq!(
                canonical(incremental.resolution()),
                canonical(cold.resolution()),
                "{name}"
            );
            assert_eq!(incremental.stats.feasible, cold.stats.feasible, "{name}");
            assert!(
                (incremental.stats.cost - cold.stats.cost).abs() < 1e-6,
                "{name}: incremental cost {} vs cold {}",
                incremental.stats.cost,
                cold.stats.cost
            );
            // The derivation died with its support.
            assert!(incremental.inferred.is_empty(), "{name}");
        }
    }

    /// Re-resolving with no edits reuses the cached grounding and stays
    /// correct; netted churn (insert+remove pairs) still advances the
    /// cached epoch so the graph's change log drains instead of being
    /// re-netted forever.
    #[test]
    fn incremental_noop_resolve_reuses_cache() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let mut engine = Engine::new(graph, program);
        let first = engine.resolve_incremental().unwrap();
        let again = engine.resolve_incremental().unwrap();
        assert_eq!(canonical(first.resolution()), canonical(again.resolution()));

        // Churn that nets to nothing: the cache must still catch up to
        // the graph's epoch (otherwise the log accumulates forever).
        let id = engine
            .insert_fact("CR", "coach", "Churn", iv(1990, 1991), 0.8)
            .unwrap();
        engine.remove_fact(id).unwrap();
        let after_churn = engine.resolve_incremental().unwrap();
        assert_eq!(
            canonical(first.resolution()),
            canonical(after_churn.resolution())
        );
        assert_eq!(
            engine.cache.as_ref().unwrap().grounding.epoch(),
            engine.graph.epoch(),
            "cached epoch caught up through the net-empty delta"
        );
    }

    /// Snapshots are epoch-stamped and versioned: each resolve captures
    /// the graph epoch it ran at, `latest()` tracks the newest, and old
    /// snapshots stay untouched by later edits.
    #[test]
    fn snapshots_are_epoch_stamped_and_stable() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let mut engine = Engine::new(graph, program);
        assert!(engine.latest().is_none());

        let first = engine.resolve_incremental().unwrap();
        assert_eq!(first.epoch(), 5, "five inserts built the graph");
        assert_eq!(first.at(2016).predicate("coach").count(), 1);

        engine
            .insert_fact("CR", "coach", "Roma", iv(2016, 2018), 0.95)
            .unwrap();
        let second = engine.resolve_incremental().unwrap();
        assert!(second.epoch() > first.epoch());
        assert!(Arc::ptr_eq(&engine.latest().unwrap(), &second));

        // The old snapshot still answers from its frozen world: the
        // Roma/Leicester clash is invisible to it.
        assert_eq!(first.stats.conflicting_facts, 1);
        assert_eq!(first.at(2016).predicate("coach").count(), 1);
        assert_eq!(second.stats.conflicting_facts, 2);
    }

    /// Long churny sessions must not drag an ever-growing graveyard of
    /// dead atom slots through every solve: once dead slots dominate,
    /// the engine re-grounds compactly.
    #[test]
    fn graveyard_compaction_triggers_reground() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let mut engine = Engine::new(graph, program);
        engine.resolve_incremental().unwrap();
        // Each round materialises a fresh atom, then kills it.
        for i in 0..70 {
            let id = engine
                .insert_fact(
                    &format!("p{i}"),
                    "coach",
                    &format!("c{i}"),
                    iv(2000, 2001),
                    0.8,
                )
                .unwrap();
            engine.resolve_incremental().unwrap();
            engine.remove_fact(id).unwrap();
        }
        let r = engine.resolve_incremental().unwrap();
        assert_eq!(r.stats.conflicting_facts, 1);
        let atoms = engine.cache.as_ref().unwrap().grounding.num_atoms();
        assert!(atoms < 20, "graveyard compacted away, got {atoms} atoms");
    }

    /// Edits through `graph_mut` (bypassing the convenience methods)
    /// are picked up via the change log; a truncated log falls back to
    /// a full re-ground instead of returning stale results.
    #[test]
    fn graph_mut_edits_and_log_truncation_are_handled() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let mut engine = Engine::new(graph, program);
        engine.resolve_incremental().unwrap();

        engine
            .graph_mut()
            .insert("CR", "coach", "Roma", iv(2016, 2018), 0.95)
            .unwrap();
        let via_log = engine.resolve_incremental().unwrap();
        assert_eq!(via_log.stats.conflicting_facts, 2);
        assert_eq!(via_log.stats.fallback_regrounds, 0);
        assert_eq!(engine.fallback_regrounds(), 0);

        // Sever the history: the engine must rebuild, not misbehave —
        // and the silent full re-ground must be counted, not silent.
        engine
            .graph_mut()
            .insert("X", "coach", "A", iv(1, 2), 0.9)
            .unwrap();
        let epoch = engine.graph().epoch();
        engine.graph_mut().truncate_log(epoch);
        let rebuilt = engine.resolve_incremental().unwrap();
        assert_eq!(rebuilt.stats.conflicting_facts, 2);
        assert_eq!(rebuilt.stats.fallback_regrounds, 1);
        assert_eq!(engine.fallback_regrounds(), 1);

        // The counter is cumulative, not reset by a clean resolve.
        let clean = engine.resolve_incremental().unwrap();
        assert_eq!(clean.stats.fallback_regrounds, 1);
    }

    #[test]
    fn expanded_graph_materialised_on_snapshot() {
        let r = run(Backend::MlnExact);
        let expanded = r.expanded();
        assert_eq!(expanded.len(), 5); // 4 kept + 1 inferred
        let works_for = expanded.dict().lookup("worksFor").unwrap();
        assert_eq!(expanded.facts_with_predicate(works_for).count(), 1);
        // Same materialisation every access — the old per-call clone of
        // `Resolution::expanded_graph` is gone from this path.
        assert!(std::ptr::eq(expanded, r.expanded()));
    }

    #[test]
    fn gibbs_confidence_grades_inferred() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend: Backend::MlnExact.into(),
            confidence: ConfidenceMode::Gibbs(GibbsConfig::default()),
            ..TecoreConfig::default()
        };
        let r = Engine::with_config(graph, program, config)
            .resolve()
            .unwrap();
        assert_eq!(r.inferred.len(), 1);
        let c = r.inferred[0].confidence;
        assert!((0.0..=1.0).contains(&c));
        // The worksFor derivation is supported by a w=2.5 rule from a
        // 0.5-confidence fact; its marginal should be clearly above 0.5.
        assert!(c > 0.5, "confidence {c}");
    }

    #[test]
    fn threshold_drops_inferred() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend: Backend::MlnExact.into(),
            threshold: 2.0, // impossible bar: drops everything
            ..TecoreConfig::default()
        };
        let r = Engine::with_config(graph, program, config)
            .resolve()
            .unwrap();
        assert_eq!(r.inferred.len(), 0);
        assert_eq!(r.stats.thresholded_facts, 1);
    }

    #[test]
    fn psl_confidences_are_soft_values() {
        let r = run(Backend::default_psl());
        assert_eq!(r.inferred.len(), 1);
        let c = r.inferred[0].confidence;
        assert!((0.0..=1.0).contains(&c));
        assert!(
            c > 0.5,
            "supported derivation should have high value, got {c}"
        );
    }

    #[test]
    fn conflict_free_graph_untouched() {
        let graph = parse_graph(
            "(CR, coach, Chelsea, [2000,2004]) 0.9\n\
             (CR, coach, Leicester, [2015,2017]) 0.7\n",
        )
        .unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let r = Engine::new(graph, program).resolve().unwrap();
        assert_eq!(r.stats.conflicting_facts, 0);
        assert_eq!(r.consistent.len(), 2);
        assert!(r.stats.per_constraint.is_empty());
    }

    /// A backend outside the [`Backend`] enum drops straight into the
    /// config — the acceptance test for the open solver seam.
    #[test]
    fn external_solver_plugs_in() {
        use tecore_ground::{MapSolver, SolveError, SolverCaps};

        /// Trivial "solver": keeps every atom (never repairs anything).
        #[derive(Debug)]
        struct KeepAll;

        impl MapSolver for KeepAll {
            fn name(&self) -> &str {
                "keep-all"
            }
            fn caps(&self) -> SolverCaps {
                SolverCaps::mln()
            }
            fn solve(
                &self,
                grounding: &Grounding,
                _opts: &SolveOpts,
            ) -> Result<MapState, SolveError> {
                let (cost, hard) = tecore_ground::evaluate_world(
                    &grounding.clauses,
                    &vec![true; grounding.num_atoms()],
                );
                Ok(MapState {
                    assignment: vec![true; grounding.num_atoms()],
                    cost,
                    feasible: hard == 0,
                    active_clauses: grounding.clauses.len(),
                    soft_values: None,
                })
            }
        }

        let r = run(SolverHandle::new(KeepAll));
        // Keeping everything keeps the Napoli clash: infeasible, nothing
        // removed, and the stats carry the external backend's name.
        assert!(!r.stats.feasible);
        assert_eq!(r.stats.conflicting_facts, 0);
        assert_eq!(r.stats.backend, "keep-all");
    }

    /// A plugin that violates the assignment-length contract must fail
    /// with the documented solver error, not an index panic.
    #[test]
    fn short_assignment_is_a_solve_error() {
        use tecore_ground::{MapSolver, SolveError, SolverCaps};

        #[derive(Debug)]
        struct Truncated;

        impl MapSolver for Truncated {
            fn name(&self) -> &str {
                "truncated"
            }
            fn caps(&self) -> SolverCaps {
                SolverCaps::mln()
            }
            fn solve(
                &self,
                _grounding: &Grounding,
                _opts: &SolveOpts,
            ) -> Result<MapState, SolveError> {
                Ok(MapState {
                    assignment: vec![true], // wrong length
                    cost: 0.0,
                    feasible: true,
                    active_clauses: 0,
                    soft_values: None,
                })
            }
        }

        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend: SolverHandle::new(Truncated),
            ..TecoreConfig::default()
        };
        let err = Engine::with_config(graph, program, config)
            .resolve()
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("solver error"), "{message}");
        assert!(message.contains("truncated"), "{message}");
        assert!(message.contains("1 assignments"), "{message}");
    }

    /// Declared caps and the returned state must agree on soft values.
    #[test]
    fn caps_state_mismatch_is_a_solve_error() {
        use tecore_ground::{MapSolver, SolveError, SolverCaps};

        /// Claims to be discrete but returns soft values.
        #[derive(Debug)]
        struct TwoFaced;

        impl MapSolver for TwoFaced {
            fn name(&self) -> &str {
                "two-faced"
            }
            fn caps(&self) -> SolverCaps {
                SolverCaps::mln() // soft_values: false
            }
            fn solve(
                &self,
                grounding: &Grounding,
                _opts: &SolveOpts,
            ) -> Result<MapState, SolveError> {
                let n = grounding.num_atoms();
                Ok(MapState {
                    assignment: vec![true; n],
                    cost: 0.0,
                    feasible: true,
                    active_clauses: 0,
                    soft_values: Some(vec![0.5; n]),
                })
            }
        }

        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend: SolverHandle::new(TwoFaced),
            ..TecoreConfig::default()
        };
        let err = Engine::with_config(graph, program, config)
            .resolve()
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("two-faced"), "{message}");
        assert!(message.contains("soft_values = false"), "{message}");
    }

    /// The per-component state contract mirrors the monolithic one: a
    /// backend declaring soft values that omits them from a component
    /// solve must fail loudly — the merge must not quietly fabricate
    /// 0/1 confidences for that component.
    #[test]
    fn component_caps_state_mismatch_is_a_solve_error() {
        use tecore_ground::component::ComponentView;
        use tecore_ground::{MapSolver, SolveError, SolverCaps};

        /// Declares soft values (+ components) but omits them from the
        /// per-component state.
        #[derive(Debug)]
        struct Forgetful;

        impl MapSolver for Forgetful {
            fn name(&self) -> &str {
                "forgetful"
            }
            fn caps(&self) -> SolverCaps {
                SolverCaps {
                    components: true,
                    ..SolverCaps::psl() // soft_values: true
                }
            }
            fn solve(
                &self,
                grounding: &Grounding,
                _opts: &SolveOpts,
            ) -> Result<MapState, SolveError> {
                let n = grounding.num_atoms();
                Ok(MapState {
                    assignment: vec![true; n],
                    cost: 0.0,
                    feasible: true,
                    active_clauses: 0,
                    soft_values: Some(vec![1.0; n]),
                })
            }
            fn solve_component(
                &self,
                view: &ComponentView<'_>,
                _opts: &SolveOpts,
            ) -> Result<MapState, SolveError> {
                Ok(MapState {
                    assignment: vec![true; view.num_atoms()],
                    cost: 0.0,
                    feasible: true,
                    active_clauses: 0,
                    soft_values: None, // contract violation
                })
            }
        }

        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend: SolverHandle::new(Forgetful),
            component_mode: ComponentMode::Components,
            ..TecoreConfig::default()
        };
        let err = Engine::with_config(graph, program, config)
            .resolve()
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("forgetful"), "{message}");
        assert!(message.contains("omitted"), "{message}");
    }
}
