//! Backend **specifications** and their construction into live solvers.
//!
//! [`Backend`] is the user-facing configuration DSL: a closed set of
//! named, configured presets matching the paper's two reasoners and
//! their solver modes. It is *only* a description — the pipeline never
//! matches on it. Construction into a runnable [`SolverHandle`] happens
//! here, once, via `From<Backend>`; everything downstream (pipeline,
//! session, benches) works with the open `dyn MapSolver` interface, so
//! backends outside this enum (registered via
//! [`crate::registry::SolverRegistry`]) are first-class citizens.

use std::ops::Deref;
use std::sync::Arc;

use tecore_ground::MapSolver;
use tecore_mln::{BranchAndBound, CpiConfig, CpiSolver, MaxWalkSat, WalkSatConfig};
use tecore_psl::{AdmmConfig, PslAdmm, PslConfig};

/// Which reasoner computes the MAP state (paper §2.1: nRockIt vs nPSL).
///
/// A convenience spec for the four in-tree substrates; convert with
/// `SolverHandle::from` (or `.into()`) to obtain the runnable solver.
#[derive(Debug, Clone)]
pub enum Backend {
    /// MLN with the exact branch & bound solver.
    MlnExact,
    /// MLN with MaxWalkSAT over the eager grounding.
    MlnWalkSat(WalkSatConfig),
    /// MLN with cutting-plane inference (lazy constraint grounding) —
    /// the nRockIt configuration.
    MlnCuttingPlane(CpiConfig),
    /// PSL solved by consensus ADMM — the nPSL configuration.
    PslAdmm {
        /// HL-MRF construction options.
        psl: PslConfig,
        /// ADMM parameters.
        admm: AdmmConfig,
    },
}

impl Backend {
    /// Short identifier used in statistics output and registry lookup.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::MlnExact => "mln-exact",
            Backend::MlnWalkSat(_) => "mln-walksat",
            Backend::MlnCuttingPlane(_) => "mln-cpi",
            Backend::PslAdmm { .. } => "psl-admm",
        }
    }

    /// The default PSL backend.
    pub fn default_psl() -> Backend {
        Backend::PslAdmm {
            psl: PslConfig::default(),
            admm: AdmmConfig::default(),
        }
    }
}

impl Default for Backend {
    /// The paper's default reasoner is the MLN one; cutting-plane
    /// inference is its scalable configuration.
    fn default() -> Self {
        Backend::MlnCuttingPlane(CpiConfig::default())
    }
}

/// A shared, cloneable handle to a MAP solver.
///
/// This is what [`crate::pipeline::TecoreConfig`] stores and what the
/// [`crate::registry::SolverRegistry`] hands out. It derefs to
/// `dyn MapSolver`, so `handle.name()`, `handle.caps()` and
/// `handle.solve(..)` all work directly.
#[derive(Debug, Clone)]
pub struct SolverHandle(Arc<dyn MapSolver>);

impl SolverHandle {
    /// Wraps a concrete solver.
    pub fn new(solver: impl MapSolver + 'static) -> Self {
        SolverHandle(Arc::new(solver))
    }

    /// Wraps an already-shared solver.
    pub fn from_arc(solver: Arc<dyn MapSolver>) -> Self {
        SolverHandle(solver)
    }

    /// The underlying shared solver.
    pub fn as_arc(&self) -> &Arc<dyn MapSolver> {
        &self.0
    }
}

impl Deref for SolverHandle {
    type Target = dyn MapSolver;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl Default for SolverHandle {
    fn default() -> Self {
        Backend::default().into()
    }
}

impl From<Backend> for SolverHandle {
    /// The single place where the closed [`Backend`] spec meets the
    /// open solver interface.
    fn from(backend: Backend) -> Self {
        match backend {
            Backend::MlnExact => SolverHandle::new(BranchAndBound::new()),
            Backend::MlnWalkSat(config) => SolverHandle::new(MaxWalkSat::new(config)),
            Backend::MlnCuttingPlane(config) => SolverHandle::new(CpiSolver::new(config)),
            Backend::PslAdmm { psl, admm } => SolverHandle::new(PslAdmm::new(psl, admm)),
        }
    }
}

impl From<Arc<dyn MapSolver>> for SolverHandle {
    fn from(solver: Arc<dyn MapSolver>) -> Self {
        SolverHandle(solver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_names_match_solver_names() {
        for backend in [
            Backend::MlnExact,
            Backend::MlnWalkSat(WalkSatConfig::default()),
            Backend::MlnCuttingPlane(CpiConfig::default()),
            Backend::default_psl(),
        ] {
            let name = backend.name();
            let handle = SolverHandle::from(backend);
            assert_eq!(handle.name(), name);
        }
    }

    #[test]
    fn default_backend_is_cpi() {
        assert_eq!(SolverHandle::default().name(), "mln-cpi");
        assert!(SolverHandle::default().caps().lazy_grounding);
    }

    #[test]
    fn handle_is_cheaply_cloneable() {
        let a = SolverHandle::default();
        let b = a.clone();
        assert!(Arc::ptr_eq(a.as_arc(), b.as_arc()));
    }
}
