//! Automatic constraint suggestion — the paper's stated research goal.
//!
//! §4 (Goals): "...with particular emphasis on the following aspects:
//! (i) inference expressiveness and scalability; (ii) **automatic
//! derivation or suggestion of constraints** and inference rules." This
//! module implements a data-driven advisor for (ii): it profiles each
//! predicate of the selected uTKG and proposes constraints from the
//! paper's three classes where the data supports them:
//!
//! * **disjointness** (c2 shape) for fluents whose same-subject spells
//!   rarely intersect — occasional overlaps are then likely extraction
//!   noise;
//! * **functional / equality-generating** (c3 shape) for attributes
//!   that almost always take a single value per subject at a time;
//! * **temporal order** (c1 shape) for predicate pairs whose intervals
//!   are consistently ordered (e.g. `birthDate` before `deathDate`).
//!
//! Each suggestion carries its supporting evidence (violation rate in
//! the data) so a domain expert can review before accepting — the demo
//! explicitly keeps humans in the loop.

use std::collections::HashMap;

use tecore_kg::tindex::IntervalIndex;
use tecore_kg::{Symbol, UtkGraph};
use tecore_logic::builder;
use tecore_logic::formula::Formula;
use tecore_temporal::AllenSet;

/// A suggested constraint with its data support.
#[derive(Debug, Clone)]
pub struct SuggestedConstraint {
    /// The ready-to-use formula.
    pub formula: Formula,
    /// Human-readable rationale.
    pub rationale: String,
    /// Fraction of observed groundings that would *violate* the
    /// suggestion (0.0 = the data fully supports it). Suggestions are
    /// only emitted below the advisor's tolerance.
    pub violation_rate: f64,
    /// Number of observations backing the estimate.
    pub support: usize,
}

/// Advisor configuration.
#[derive(Debug, Clone)]
pub struct AdvisorConfig {
    /// Maximum tolerated violation rate for a suggestion (default 0.2:
    /// a constraint violated by a fifth of the data is still plausibly
    /// a real rule over noisy extractions).
    pub tolerance: f64,
    /// Minimum observations before suggesting anything about a
    /// predicate (default 10).
    pub min_support: usize,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            tolerance: 0.2,
            min_support: 10,
        }
    }
}

/// Profiles the graph and proposes constraints.
pub fn suggest_constraints(graph: &UtkGraph, config: &AdvisorConfig) -> Vec<SuggestedConstraint> {
    let mut out = Vec::new();
    for p in graph.predicates() {
        let pname = graph.dict().resolve(p).to_string();
        if let Some(s) = suggest_disjointness(graph, p, &pname, config) {
            out.push(s);
        }
        if let Some(s) = suggest_functional(graph, p, &pname, config) {
            out.push(s);
        }
    }
    out
}

/// Same-subject spell pairs of `p`: how often do they intersect?
fn suggest_disjointness(
    graph: &UtkGraph,
    p: Symbol,
    pname: &str,
    config: &AdvisorConfig,
) -> Option<SuggestedConstraint> {
    let mut per_subject: HashMap<Symbol, Vec<(tecore_kg::FactId, tecore_temporal::Interval)>> =
        HashMap::new();
    for (id, f) in graph.facts_with_predicate(p) {
        per_subject
            .entry(f.subject)
            .or_default()
            .push((id, f.interval));
    }
    let mut pairs = 0usize;
    let mut overlapping = 0usize;
    for facts in per_subject.values() {
        if facts.len() < 2 {
            continue;
        }
        let n = facts.len();
        pairs += n * (n - 1) / 2;
        overlapping += IntervalIndex::build(facts.iter().copied()).count_overlapping_pairs();
    }
    if pairs < config.min_support {
        return None;
    }
    let rate = overlapping as f64 / pairs as f64;
    if rate > config.tolerance {
        return None;
    }
    Some(SuggestedConstraint {
        formula: builder::disjointness(&format!("auto_disjoint_{pname}"), pname),
        rationale: format!(
            "{overlapping} of {pairs} same-subject `{pname}` spell pairs intersect \
             ({:.1}%): `{pname}` looks like an exclusive fluent",
            rate * 100.0
        ),
        violation_rate: rate,
        support: pairs,
    })
}

/// Same-subject, time-intersecting facts of `p`: how often do they
/// disagree on the object?
fn suggest_functional(
    graph: &UtkGraph,
    p: Symbol,
    pname: &str,
    config: &AdvisorConfig,
) -> Option<SuggestedConstraint> {
    let mut per_subject: HashMap<Symbol, Vec<(Symbol, tecore_temporal::Interval)>> = HashMap::new();
    for (_, f) in graph.facts_with_predicate(p) {
        per_subject
            .entry(f.subject)
            .or_default()
            .push((f.object, f.interval));
    }
    let mut concurrent_pairs = 0usize;
    let mut disagreeing = 0usize;
    for facts in per_subject.values() {
        for i in 0..facts.len() {
            for j in (i + 1)..facts.len() {
                if facts[i].1.intersects(facts[j].1) {
                    concurrent_pairs += 1;
                    if facts[i].0 != facts[j].0 {
                        disagreeing += 1;
                    }
                }
            }
        }
    }
    // A predicate with no concurrent pairs at all gives no signal for
    // functionality (disjointness already covers it).
    if concurrent_pairs < config.min_support {
        return None;
    }
    let rate = disagreeing as f64 / concurrent_pairs as f64;
    if rate > config.tolerance {
        return None;
    }
    Some(SuggestedConstraint {
        formula: builder::functional(&format!("auto_functional_{pname}"), pname),
        rationale: format!(
            "{disagreeing} of {concurrent_pairs} concurrent `{pname}` pairs disagree on \
             the object ({:.1}%): `{pname}` looks time-functional",
            rate * 100.0
        ),
        violation_rate: rate,
        support: concurrent_pairs,
    })
}

/// Proposes a temporal-order constraint between two predicates if their
/// same-subject interval pairs consistently satisfy one basic relation
/// set (e.g. `birthDate` before `deathDate`).
pub fn suggest_order(
    graph: &UtkGraph,
    pred_a: &str,
    pred_b: &str,
    config: &AdvisorConfig,
) -> Option<SuggestedConstraint> {
    let pa = graph.dict().lookup(pred_a)?;
    let pb = graph.dict().lookup(pred_b)?;
    let mut total = 0usize;
    let mut relation_votes: HashMap<u16, usize> = HashMap::new();
    for (_, fa) in graph.facts_with_predicate(pa) {
        for (_, fb) in graph.facts_with_subject_predicate(fa.subject, pb) {
            total += 1;
            let r = tecore_temporal::AllenRelation::between(fa.interval, fb.interval);
            *relation_votes.entry(1 << r.index()).or_default() += 1;
        }
    }
    if total < config.min_support {
        return None;
    }
    let (&bits, &votes) = relation_votes.iter().max_by_key(|(_, &v)| v)?;
    let rate = 1.0 - votes as f64 / total as f64;
    if rate > config.tolerance {
        return None;
    }
    let relation = AllenSet::from_bits(bits);
    Some(SuggestedConstraint {
        formula: builder::temporal_order(
            &format!("auto_order_{pred_a}_{pred_b}"),
            pred_a,
            pred_b,
            relation,
        ),
        rationale: format!(
            "{votes} of {total} same-subject ({pred_a}, {pred_b}) pairs satisfy \
             `{relation}`",
        ),
        violation_rate: rate,
        support: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tecore_logic::pretty::format_formula;
    use tecore_temporal::Interval;

    /// A career-style graph: per player, sequential disjoint spells,
    /// plus `overlap_players` whose spells all collide.
    fn careers(players: usize, overlap_players: usize) -> UtkGraph {
        let mut g = UtkGraph::new();
        for p in 0..players {
            let mut year = 1980 + (p as i64 % 10);
            for s in 0..4 {
                g.insert(
                    &format!("p{p}"),
                    "playsFor",
                    &format!("club{}", (p + s) % 7),
                    Interval::new(year, year + 2).unwrap(),
                    0.9,
                )
                .unwrap();
                year += 4;
            }
        }
        for p in 0..overlap_players {
            for s in 0..4 {
                g.insert(
                    &format!("noisy{p}"),
                    "playsFor",
                    &format!("club{s}"),
                    Interval::new(2000, 2004).unwrap(),
                    0.6,
                )
                .unwrap();
            }
        }
        g
    }

    #[test]
    fn suggests_disjointness_for_plays_for() {
        // 40 clean players, 1 noisy one: low violation rate.
        let graph = careers(40, 1);
        let suggestions = suggest_constraints(&graph, &AdvisorConfig::default());
        let plays = suggestions
            .iter()
            .find(|s| s.formula.name.as_deref() == Some("auto_disjoint_playsFor"))
            .expect("playsFor disjointness should be suggested");
        assert!(plays.violation_rate < 0.2, "{}", plays.rationale);
        assert!(plays.support > 50);
        // The suggestion is a valid, usable formula.
        tecore_logic::validate::check_formula(&plays.formula).unwrap();
        let printed = format_formula(&plays.formula);
        assert!(printed.contains("disjoint(t, t')"), "{printed}");
    }

    #[test]
    fn no_disjointness_on_heavily_overlapping_data() {
        // Half the players have fully colliding spells: the violation
        // rate exceeds any reasonable tolerance.
        let graph = careers(10, 10);
        let cfg = AdvisorConfig {
            tolerance: 0.05,
            ..AdvisorConfig::default()
        };
        let suggestions = suggest_constraints(&graph, &cfg);
        assert!(
            !suggestions
                .iter()
                .any(|s| s.formula.name.as_deref() == Some("auto_disjoint_playsFor")),
            "overlapping data must suppress the suggestion at 5% tolerance"
        );
    }

    #[test]
    fn suggests_birth_before_death_order() {
        let mut graph = UtkGraph::new();
        for i in 0..20 {
            let birth = 1900 + i;
            let death = birth + 70;
            graph
                .insert(
                    &format!("p{i}"),
                    "birthDate",
                    &birth.to_string(),
                    tecore_temporal::Interval::at(birth),
                    0.9,
                )
                .unwrap();
            graph
                .insert(
                    &format!("p{i}"),
                    "deathDate",
                    &death.to_string(),
                    tecore_temporal::Interval::at(death),
                    0.9,
                )
                .unwrap();
        }
        let s = suggest_order(&graph, "birthDate", "deathDate", &AdvisorConfig::default())
            .expect("consistent ordering should be detected");
        assert_eq!(s.violation_rate, 0.0);
        let printed = format_formula(&s.formula);
        assert!(printed.contains("before(t, t')"), "{printed}");
    }

    #[test]
    fn insufficient_support_suggests_nothing() {
        let mut graph = UtkGraph::new();
        graph
            .insert(
                "a",
                "coach",
                "b",
                tecore_temporal::Interval::new(1, 2).unwrap(),
                0.9,
            )
            .unwrap();
        let suggestions = suggest_constraints(&graph, &AdvisorConfig::default());
        assert!(suggestions.is_empty());
        assert!(suggest_order(&graph, "coach", "coach", &AdvisorConfig::default()).is_none());
    }
}
