//! The unified edit surface: [`EditBatch`] → [`Engine::apply`].
//!
//! Historically the system had three ad-hoc per-fact edit paths — the
//! engine's `insert_fact`/`remove_fact` pair, the session's mirrored
//! twins, and the server writer loop applying queued edits one by one.
//! [`EditBatch`] replaces all three with one builder: a group of
//! inserts, removes and upserts that [`Engine::apply`] validates and
//! applies **as one delta** — the ops land in consecutive epochs of the
//! graph's change log, so the next `resolve_incremental` sees them
//! netted into a single [`Delta`](tecore_kg::Delta), journaled as one
//! consecutive WAL entry group on a durable engine.
//!
//! Semantics are **sequential**: ops apply in builder order, each
//! against the graph state left by its predecessors, so
//! `apply(batch)` is observationally identical to issuing the same ops
//! through the per-fact methods one at a time (the conformance tests
//! pin this on all four backends). A semantically invalid op (bad
//! confidence, unknown fact id) is [`EditOutcome::Rejected`] — nothing
//! journaled, nothing applied, later ops continue — matching a
//! per-fact caller that ignores an `Err` and moves on. Only a
//! write-ahead-log failure aborts the batch: the failing op reports
//! [`EditOutcome::Failed`] and the rest [`EditOutcome::Skipped`],
//! leaving the applied prefix journaled and consistent.
//!
//! [`Engine::apply`]: crate::Engine::apply

use tecore_kg::{Confidence, FactId, KgError, TemporalFact, UtkGraph};
use tecore_temporal::Interval;

use crate::error::TecoreError;

/// One edit operation in an [`EditBatch`].
#[derive(Debug, Clone, PartialEq)]
pub enum EditOp {
    /// Insert a fact (interning terms as needed).
    Insert {
        /// Subject term.
        subject: String,
        /// Predicate term.
        predicate: String,
        /// Object term.
        object: String,
        /// Valid-time interval.
        interval: Interval,
        /// Confidence in `(0, 1]`.
        confidence: f64,
    },
    /// Tombstone a fact by id.
    Remove(FactId),
    /// Replace every live fact asserting the same `(subject,
    /// predicate, object)` statement — regardless of interval or
    /// confidence — with this one. With no live match it degenerates
    /// to an insert.
    Upsert {
        /// Subject term.
        subject: String,
        /// Predicate term.
        predicate: String,
        /// Object term.
        object: String,
        /// Valid-time interval.
        interval: Interval,
        /// Confidence in `(0, 1]`.
        confidence: f64,
    },
}

/// A builder grouping edits for one [`Engine::apply`] call.
///
/// ```
/// use tecore_core::prelude::*;
/// use tecore_kg::parser::parse_graph;
/// use tecore_logic::LogicProgram;
/// use tecore_temporal::Interval;
///
/// let graph = parse_graph("(CR, coach, Chelsea, [2000,2004]) 0.9\n").unwrap();
/// let program = LogicProgram::parse(
///     "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf",
/// ).unwrap();
/// let mut engine = Engine::new(graph, program);
/// let iv = |a, b| Interval::new(a, b).unwrap();
/// let report = engine.apply(
///     &EditBatch::new()
///         .insert("CR", "coach", "Leicester", iv(2015, 2017), 0.7)
///         .upsert("CR", "coach", "Chelsea", iv(2000, 2003), 0.95),
/// );
/// assert_eq!(report.applied(), 2);
/// let snapshot = engine.resolve_incremental().unwrap();
/// assert_eq!(snapshot.stats.conflicting_facts, 0);
/// ```
///
/// [`Engine::apply`]: crate::Engine::apply
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EditBatch {
    ops: Vec<EditOp>,
}

impl EditBatch {
    /// An empty batch.
    pub fn new() -> Self {
        EditBatch::default()
    }

    /// Appends an insert.
    #[must_use]
    pub fn insert(
        mut self,
        subject: impl Into<String>,
        predicate: impl Into<String>,
        object: impl Into<String>,
        interval: Interval,
        confidence: f64,
    ) -> Self {
        self.ops.push(EditOp::Insert {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
            interval,
            confidence,
        });
        self
    }

    /// Appends a removal.
    #[must_use]
    pub fn remove(mut self, id: FactId) -> Self {
        self.ops.push(EditOp::Remove(id));
        self
    }

    /// Appends an upsert (replace all live facts with the same
    /// statement, then insert).
    #[must_use]
    pub fn upsert(
        mut self,
        subject: impl Into<String>,
        predicate: impl Into<String>,
        object: impl Into<String>,
        interval: Interval,
        confidence: f64,
    ) -> Self {
        self.ops.push(EditOp::Upsert {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
            interval,
            confidence,
        });
        self
    }

    /// Appends a pre-built op (the non-builder entry, used by queue
    /// drains that already hold `EditOp`s).
    pub fn push(&mut self, op: EditOp) {
        self.ops.push(op);
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[EditOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// What happened to one op of an applied batch (index-aligned with
/// [`EditBatch::ops`]).
#[derive(Debug)]
pub enum EditOutcome {
    /// The insert landed under this id.
    Inserted(FactId),
    /// The removal tombstoned this fact.
    Removed(TemporalFact),
    /// The upsert tombstoned `removed` facts and inserted `id`.
    Upserted {
        /// Facts replaced (possibly none).
        removed: Vec<TemporalFact>,
        /// Id of the inserted replacement.
        id: FactId,
    },
    /// Semantic rejection (invalid confidence, unknown/dead fact id):
    /// nothing journaled, nothing applied; later ops still ran.
    Rejected(TecoreError),
    /// The write-ahead log refused the op before it touched the graph;
    /// the engine should be treated as read-only and every later op in
    /// the batch is [`EditOutcome::Skipped`].
    Failed(TecoreError),
    /// Not attempted because an earlier op [`EditOutcome::Failed`].
    Skipped,
}

impl EditOutcome {
    /// Graph mutations this outcome performed (an upsert counts its
    /// removals and its insert).
    fn changes(&self) -> u64 {
        match self {
            EditOutcome::Inserted(_) | EditOutcome::Removed(_) => 1,
            EditOutcome::Upserted { removed, .. } => removed.len() as u64 + 1,
            EditOutcome::Rejected(_) | EditOutcome::Failed(_) | EditOutcome::Skipped => 0,
        }
    }
}

/// Per-op outcomes of one [`Engine::apply`](crate::Engine::apply).
#[derive(Debug, Default)]
pub struct ApplyReport {
    /// One outcome per batch op, in order.
    pub outcomes: Vec<EditOutcome>,
}

impl ApplyReport {
    /// Ops that applied (inserted, removed, or upserted).
    pub fn applied(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    EditOutcome::Inserted(_)
                        | EditOutcome::Removed(_)
                        | EditOutcome::Upserted { .. }
                )
            })
            .count()
    }

    /// Total graph mutations across the batch (upserts count each
    /// replaced fact plus the insert) — the delta's gross size.
    pub fn changes(&self) -> u64 {
        self.outcomes.iter().map(EditOutcome::changes).sum()
    }

    /// Ids minted by inserts and upserts, in op order.
    pub fn inserted_ids(&self) -> impl Iterator<Item = FactId> + '_ {
        self.outcomes.iter().filter_map(|o| match o {
            EditOutcome::Inserted(id) | EditOutcome::Upserted { id, .. } => Some(*id),
            _ => None,
        })
    }

    /// Did the write-ahead log fail mid-batch?
    pub fn wal_failed(&self) -> bool {
        self.outcomes
            .iter()
            .any(|o| matches!(o, EditOutcome::Failed(_)))
    }

    /// The first rejection or failure, if any.
    pub fn first_error(&self) -> Option<&TecoreError> {
        self.outcomes.iter().find_map(|o| match o {
            EditOutcome::Rejected(e) | EditOutcome::Failed(e) => Some(e),
            _ => None,
        })
    }

    /// Strict view: `Ok(self)` when every op applied, otherwise the
    /// first rejection/failure as an error (for callers that treat a
    /// partially honoured batch as a unit failure).
    pub fn into_result(mut self) -> Result<ApplyReport, TecoreError> {
        let bad = self
            .outcomes
            .iter()
            .position(|o| matches!(o, EditOutcome::Rejected(_) | EditOutcome::Failed(_)));
        match bad {
            None => Ok(self),
            Some(i) => match self.outcomes.swap_remove(i) {
                EditOutcome::Rejected(e) | EditOutcome::Failed(e) => Err(e),
                _ => unreachable!("position() matched Rejected/Failed"),
            },
        }
    }
}

/// An op that passed semantic validation against a concrete graph
/// state and is guaranteed to execute (upsert targets resolved to
/// concrete ids). On a durable engine this is the unit that gets
/// journaled — the log never records an op the graph would reject.
#[derive(Debug)]
pub(crate) enum PlannedOp<'a> {
    Insert {
        subject: &'a str,
        predicate: &'a str,
        object: &'a str,
        interval: Interval,
        confidence: f64,
    },
    Remove(FactId),
    Upsert {
        doomed: Vec<FactId>,
        subject: &'a str,
        predicate: &'a str,
        object: &'a str,
        interval: Interval,
        confidence: f64,
    },
}

/// Validates one op against the current graph state. No mutation.
pub(crate) fn plan_op<'a>(graph: &UtkGraph, op: &'a EditOp) -> Result<PlannedOp<'a>, TecoreError> {
    match op {
        EditOp::Insert {
            subject,
            predicate,
            object,
            interval,
            confidence,
        } => {
            Confidence::new(*confidence)?;
            Ok(PlannedOp::Insert {
                subject,
                predicate,
                object,
                interval: *interval,
                confidence: *confidence,
            })
        }
        EditOp::Remove(id) => {
            if !graph.is_alive(*id) {
                return Err(KgError::UnknownFact(id.0).into());
            }
            Ok(PlannedOp::Remove(*id))
        }
        EditOp::Upsert {
            subject,
            predicate,
            object,
            interval,
            confidence,
        } => {
            Confidence::new(*confidence)?;
            Ok(PlannedOp::Upsert {
                doomed: graph.statement_ids(subject, predicate, object),
                subject,
                predicate,
                object,
                interval: *interval,
                confidence: *confidence,
            })
        }
    }
}

/// Executes a planned (pre-validated) op. Infallible by construction:
/// the plan resolved against exactly this graph state.
pub(crate) fn execute_op(graph: &mut UtkGraph, planned: PlannedOp<'_>) -> EditOutcome {
    match planned {
        PlannedOp::Insert {
            subject,
            predicate,
            object,
            interval,
            confidence,
        } => {
            let id = graph
                .insert(subject, predicate, object, interval, confidence)
                .expect("confidence validated by plan_op");
            EditOutcome::Inserted(id)
        }
        PlannedOp::Remove(id) => {
            let fact = graph.remove(id).expect("liveness validated by plan_op");
            EditOutcome::Removed(fact)
        }
        PlannedOp::Upsert {
            doomed,
            subject,
            predicate,
            object,
            interval,
            confidence,
        } => {
            let removed: Vec<TemporalFact> = doomed
                .into_iter()
                .map(|id| graph.remove(id).expect("doomed ids live at plan time"))
                .collect();
            let id = graph
                .insert(subject, predicate, object, interval, confidence)
                .expect("confidence validated by plan_op");
            EditOutcome::Upserted { removed, id }
        }
    }
}

/// Applies a batch to a bare (non-journaled) graph with the same
/// sequential semantics as [`Engine::apply`](crate::Engine::apply).
/// Used by [`Session`](crate::Session) for its dataset copies and by
/// tests that model batch application without an engine.
pub fn apply_to_graph(graph: &mut UtkGraph, batch: &EditBatch) -> ApplyReport {
    let mut report = ApplyReport {
        outcomes: Vec::with_capacity(batch.len()),
    };
    for op in batch.ops() {
        let outcome = match plan_op(graph, op) {
            Ok(planned) => execute_op(graph, planned),
            Err(e) => EditOutcome::Rejected(e),
        };
        report.outcomes.push(outcome);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tecore_kg::parser::parse_graph;

    fn iv(a: i64, b: i64) -> Interval {
        Interval::new(a, b).unwrap()
    }

    #[test]
    fn builder_orders_ops() {
        let batch = EditBatch::new()
            .insert("a", "p", "b", iv(1, 2), 0.5)
            .remove(FactId(0))
            .upsert("a", "p", "c", iv(3, 4), 0.6);
        assert_eq!(batch.len(), 3);
        assert!(matches!(batch.ops()[0], EditOp::Insert { .. }));
        assert!(matches!(batch.ops()[1], EditOp::Remove(FactId(0))));
        assert!(matches!(batch.ops()[2], EditOp::Upsert { .. }));
    }

    #[test]
    fn apply_to_graph_sequential_semantics() {
        let mut graph = parse_graph("(CR, coach, Chelsea, [2000,2004]) 0.9\n").unwrap();
        // Remove sees the id the insert just minted: sequential.
        let batch = EditBatch::new()
            .insert("CR", "coach", "Napoli", iv(2001, 2003), 0.6)
            .remove(FactId(1));
        let report = apply_to_graph(&mut graph, &batch);
        assert_eq!(report.applied(), 2);
        assert_eq!(report.changes(), 2);
        assert_eq!(graph.len(), 1);
        assert_eq!(report.inserted_ids().collect::<Vec<_>>(), vec![FactId(1)]);
    }

    #[test]
    fn upsert_replaces_every_statement_match() {
        let mut graph = parse_graph(
            "(CR, coach, Chelsea, [2000,2004]) 0.9\n\
             (CR, coach, Chelsea, [2010,2011]) 0.4\n\
             (CR, coach, Leicester, [2015,2017]) 0.7\n",
        )
        .unwrap();
        let report = apply_to_graph(
            &mut graph,
            &EditBatch::new().upsert("CR", "coach", "Chelsea", iv(2000, 2003), 0.95),
        );
        let EditOutcome::Upserted { removed, id } = &report.outcomes[0] else {
            panic!("expected upsert outcome: {report:?}");
        };
        assert_eq!(removed.len(), 2, "both Chelsea spells replaced");
        assert_eq!(*id, FactId(3));
        assert_eq!(graph.len(), 2); // Leicester + new Chelsea
        assert_eq!(report.changes(), 3);
    }

    #[test]
    fn upsert_without_match_is_an_insert() {
        let mut graph = parse_graph("(CR, coach, Chelsea, [2000,2004]) 0.9\n").unwrap();
        let report = apply_to_graph(
            &mut graph,
            &EditBatch::new().upsert("CR", "coach", "Napoli", iv(2001, 2003), 0.6),
        );
        let EditOutcome::Upserted { removed, .. } = &report.outcomes[0] else {
            panic!("expected upsert outcome");
        };
        assert!(removed.is_empty());
        assert_eq!(graph.len(), 2);
    }

    #[test]
    fn rejected_op_skips_nothing_else() {
        let mut graph = parse_graph("(CR, coach, Chelsea, [2000,2004]) 0.9\n").unwrap();
        let batch = EditBatch::new()
            .insert("CR", "coach", "Bad", iv(1, 2), 1.5) // invalid confidence
            .remove(FactId(99)) // unknown id
            .insert("CR", "coach", "Napoli", iv(2001, 2003), 0.6);
        let report = apply_to_graph(&mut graph, &batch);
        assert!(matches!(report.outcomes[0], EditOutcome::Rejected(_)));
        assert!(matches!(report.outcomes[1], EditOutcome::Rejected(_)));
        assert!(matches!(report.outcomes[2], EditOutcome::Inserted(_)));
        assert_eq!(report.applied(), 1);
        assert!(report.first_error().is_some());
        assert!(!report.wal_failed());
        assert!(report.into_result().is_err());
    }
}
