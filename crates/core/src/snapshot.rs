//! Immutable, shareable views of a resolved KG.
//!
//! TeCoRe's deliverable is not a solver trace but a *queryable,
//! conflict-free temporal KG*. A [`Snapshot`] is the frozen outcome of
//! one [`Engine`](crate::engine::Engine) resolution: the
//! [`Resolution`] itself, the **expanded graph** (consistent evidence
//! plus inferred facts) materialised at most once, and the temporal /
//! secondary indexes the [query layer](crate::query) scans.
//!
//! Snapshots are handed out as `Arc<Snapshot>` and are `Send + Sync`:
//! any number of reader threads can run point-in-time and window
//! queries against one snapshot while the engine that produced it keeps
//! mutating and re-resolving — readers are never invalidated, they
//! simply observe the epoch they captured.

use std::ops::Deref;
use std::sync::OnceLock;

use tecore_kg::{GraphTemporalIndex, UtkGraph};
use tecore_temporal::TimePoint;

use crate::query::TemporalQuery;
use crate::resolution::Resolution;

/// The frozen result of one resolution, stamped with the graph epoch it
/// was computed at.
///
/// `Snapshot` dereferences to [`Resolution`], so all the familiar
/// fields (`consistent`, `removed`, `inferred`, `conflicts`, `stats`)
/// read straight through — migrating from `Resolution`-returning APIs
/// is mechanical. On top of that it owns:
///
/// * [`Snapshot::expanded`] — the expanded KG, built **once** per
///   snapshot (lazily, on first access) instead of re-cloned per call
///   like the old `Resolution::expanded_graph`;
/// * [`Snapshot::index`] — a [`GraphTemporalIndex`] over the expanded
///   graph (global + per-predicate + per-subject interval indexes);
/// * [`Snapshot::query`] — the entry point of the typed temporal query
///   layer.
///
/// Lazy members use [`OnceLock`], so concurrent readers racing on the
/// first access still build each structure exactly once.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    resolution: Resolution,
    expanded: OnceLock<UtkGraph>,
    index: OnceLock<GraphTemporalIndex>,
}

impl Snapshot {
    /// Wraps a resolution computed at graph epoch `epoch`.
    ///
    /// Public so external pipelines (and conformance tests) can put the
    /// query layer on top of resolutions they produced themselves.
    pub fn from_resolution(resolution: Resolution, epoch: u64) -> Self {
        Snapshot {
            epoch,
            resolution,
            expanded: OnceLock::new(),
            index: OnceLock::new(),
        }
    }

    /// The graph epoch this snapshot was resolved at. Monotonically
    /// increasing across an engine's lifetime: two snapshots from the
    /// same engine compare by recency through their epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying resolution.
    pub fn resolution(&self) -> &Resolution {
        &self.resolution
    }

    /// Unwraps into the resolution, discarding the indexes.
    pub fn into_resolution(self) -> Resolution {
        self.resolution
    }

    /// The expanded KG — consistent evidence plus inferred facts
    /// materialised as graph facts — by reference.
    ///
    /// Materialised at most once per snapshot; every later call (from
    /// any thread) returns the same graph.
    pub fn expanded(&self) -> &UtkGraph {
        self.expanded
            .get_or_init(|| self.resolution.expanded_graph())
    }

    /// The temporal index set over [`Snapshot::expanded`], built at
    /// most once per snapshot.
    pub fn index(&self) -> &GraphTemporalIndex {
        self.index
            .get_or_init(|| GraphTemporalIndex::build(self.expanded()))
    }

    /// Starts a temporal query over the expanded graph.
    pub fn query(&self) -> TemporalQuery<'_> {
        TemporalQuery::new(self)
    }

    /// Shortcut: a point-in-time stabbing query (`who/what held at t`).
    pub fn at(&self, t: impl Into<TimePoint>) -> TemporalQuery<'_> {
        self.query().at(t)
    }
}

impl Deref for Snapshot {
    type Target = Resolution;

    fn deref(&self) -> &Resolution {
        &self.resolution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tecore_kg::parser::parse_graph;

    fn snapshot() -> Snapshot {
        let graph = parse_graph(
            "(CR, coach, Chelsea, [2000,2004]) 0.9\n\
             (CR, coach, Leicester, [2015,2017]) 0.7\n",
        )
        .unwrap();
        let resolution = Resolution {
            consistent: graph,
            removed: Vec::new(),
            inferred: vec![crate::resolution::InferredFact {
                subject: "CR".into(),
                predicate: "worksFor".into(),
                object: "Chelsea".into(),
                interval: tecore_temporal::Interval::new(2000, 2004).unwrap(),
                confidence: 0.8,
            }],
            conflicts: Vec::new(),
            stats: crate::stats::DebugStats::default(),
        };
        Snapshot::from_resolution(resolution, 7)
    }

    #[test]
    fn snapshot_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Snapshot>();
        assert_send_sync::<std::sync::Arc<Snapshot>>();
    }

    #[test]
    fn expanded_materialised_once_by_reference() {
        let snap = snapshot();
        assert_eq!(snap.epoch(), 7);
        let first = snap.expanded() as *const UtkGraph;
        let second = snap.expanded() as *const UtkGraph;
        assert_eq!(first, second, "same materialisation on every access");
        assert_eq!(snap.expanded().len(), 3, "2 consistent + 1 inferred");
    }

    #[test]
    fn deref_reaches_resolution_fields() {
        let snap = snapshot();
        assert_eq!(snap.inferred.len(), 1);
        assert_eq!(snap.stats.conflicting_facts, 0);
        assert_eq!(snap.resolution().consistent.len(), 2);
    }
}
