//! The outcome of conflict resolution.

use tecore_kg::{FactId, TemporalFact, UtkGraph};
use tecore_temporal::Interval;

use crate::explain::ConflictExplanation;
use crate::stats::DebugStats;

/// An evidence fact rejected by MAP inference — a **conflicting fact**
/// in the paper's terminology (Figure 8 counts these).
#[derive(Debug, Clone, PartialEq)]
pub struct RemovedFact {
    /// Original fact id in the input graph.
    pub id: FactId,
    /// The fact itself.
    pub fact: TemporalFact,
}

/// A derived fact accepted by MAP inference (made explicit by the
/// inference rules), graded by confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct InferredFact {
    /// Subject term (resolved).
    pub subject: String,
    /// Predicate term (resolved).
    pub predicate: String,
    /// Object term (resolved).
    pub object: String,
    /// Validity interval.
    pub interval: Interval,
    /// Confidence: PSL soft truth value or MLN Gibbs marginal
    /// (`1.0` when marginal estimation is disabled).
    pub confidence: f64,
}

impl std::fmt::Display for InferredFact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({}, {}, {}, {}) {:.3}",
            self.subject, self.predicate, self.object, self.interval, self.confidence
        )
    }
}

/// The most probable conflict-free temporal KG plus the debugging
/// by-products the demo UI displays.
#[derive(Debug, Clone)]
pub struct Resolution {
    /// The maximal consistent subgraph (evidence kept by MAP).
    pub consistent: UtkGraph,
    /// Evidence facts removed (the conflicting statements).
    pub removed: Vec<RemovedFact>,
    /// Derived facts accepted by MAP, above the configured threshold.
    pub inferred: Vec<InferredFact>,
    /// Why each conflict was detected: the violated constraint and its
    /// participating facts (independent of which side was removed).
    pub conflicts: Vec<ConflictExplanation>,
    /// Statistics (Figure 8).
    pub stats: DebugStats,
}

impl Resolution {
    /// Builds the expanded KG: consistent evidence plus inferred facts
    /// materialised as graph facts (confidence = inferred confidence,
    /// floored at a minimum positive value).
    ///
    /// **This clones the whole consistent graph on every call.** Unless
    /// you need an owned graph, go through
    /// [`Snapshot::expanded`](crate::snapshot::Snapshot::expanded),
    /// which materialises the expansion at most once per resolution and
    /// hands it out by reference (and carries the temporal indexes the
    /// query layer needs).
    pub fn expanded_graph(&self) -> UtkGraph {
        let mut g = self.consistent.clone();
        for inf in &self.inferred {
            let conf = inf.confidence.clamp(0.001, 1.0);
            g.insert(
                &inf.subject,
                &inf.predicate,
                &inf.object,
                inf.interval,
                conf,
            )
            .expect("clamped confidence is valid");
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inferred_fact_display() {
        let f = InferredFact {
            subject: "CR".into(),
            predicate: "worksFor".into(),
            object: "Palermo".into(),
            interval: Interval::new(1984, 1986).unwrap(),
            confidence: 0.912,
        };
        assert_eq!(f.to_string(), "(CR, worksFor, Palermo, [1984,1986]) 0.912");
    }
}
