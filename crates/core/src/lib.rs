//! # tecore-core
//!
//! TeCoRe proper: temporal conflict resolution in uncertain temporal
//! knowledge graphs (VLDB 2017).
//!
//! Given a uTKG `G`, temporal inference rules `F` and temporal
//! constraints `C`, TeCoRe computes `map(θ(G), F ∪ C)` — the **most
//! probable, expanded and conflict-free temporal KG** (paper §2/§3):
//!
//! 1. the [`translate`] module implements θ: it validates the program
//!    against the chosen backend's expressivity and grounds everything
//!    into a weighted clause program (`tecore-ground`);
//! 2. a backend solves MAP: MLN (exact / MaxWalkSAT / cutting-plane —
//!    `tecore-mln`) or PSL (consensus ADMM — `tecore-psl`);
//! 3. the [`pipeline`] interprets the MAP world: evidence atoms kept →
//!    the consistent subgraph, evidence atoms rejected → **conflicting
//!    facts**, hidden atoms accepted → **inferred facts** (graded by
//!    marginal confidence and filtered by the user's threshold);
//! 4. [`stats::DebugStats`] is the Figure-8 statistics screen.
//!
//! The public API is the versioned **engine → snapshot** model: an
//! [`engine::Engine`] owns the mutable graph + program and every
//! resolve returns a cheap `Arc`-shared, epoch-stamped
//! [`snapshot::Snapshot`] — an immutable view carrying the expanded
//! graph and temporal indexes, queried through the typed [`query`]
//! layer while the engine keeps mutating and re-resolving.
//!
//! The [`session`] module reproduces the demo's Web-UI flow headlessly
//! as a thin compatibility wrapper over the engine: select a dataset,
//! add rules/constraints with auto-completion, run either reasoner,
//! browse consistent and conflicting statements.
//!
//! ```
//! use tecore_core::prelude::*;
//! use tecore_kg::parser::parse_graph;
//! use tecore_logic::LogicProgram;
//!
//! let graph = parse_graph(
//!     "(CR, coach, Chelsea, [2000,2004]) 0.9\n\
//!      (CR, coach, Napoli, [2001,2003]) 0.6\n",
//! ).unwrap();
//! let program = LogicProgram::parse(
//!     "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf",
//! ).unwrap();
//! let snapshot = Engine::new(graph, program).resolve().unwrap();
//! assert_eq!(snapshot.stats.conflicting_facts, 1); // Napoli removed
//! assert_eq!(snapshot.at(2002).predicate("coach").count(), 1); // Chelsea
//! ```

#![forbid(unsafe_code)]

pub mod advisor;
pub mod backends;
pub mod batch;
pub mod engine;
pub mod error;
pub mod explain;
pub mod pipeline;
pub mod query;
pub mod registry;
pub mod resolution;
pub mod session;
pub mod snapshot;
pub mod stats;
pub mod threshold;
pub mod translate;

pub use advisor::{suggest_constraints, AdvisorConfig, SuggestedConstraint};
pub use backends::{Backend, SolverHandle};
pub use batch::{ApplyReport, EditBatch, EditOp, EditOutcome};
pub use engine::Engine;
pub use error::TecoreError;
pub use explain::ConflictExplanation;
pub use pipeline::{ConfidenceMode, Tecore, TecoreConfig};
pub use query::{QueryIter, TemporalQuery, TimelineEntry};
pub use registry::{BackendSelector, SolverRegistry};
pub use resolution::{InferredFact, RemovedFact, Resolution};
pub use session::Session;
pub use snapshot::Snapshot;
pub use stats::DebugStats;
// The backend interface itself lives in `tecore-ground` (below the
// substrate crates); re-exported here because this is where users meet
// it.
pub use tecore_ground::{
    FormulaPlan, JoinPlanner, MapSolver, MapState, SolveError, SolveOpts, SolverCaps,
};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::backends::{Backend, SolverHandle};
    pub use crate::batch::{ApplyReport, EditBatch, EditOp, EditOutcome};
    pub use crate::engine::Engine;
    pub use crate::error::TecoreError;
    pub use crate::pipeline::{ConfidenceMode, Tecore, TecoreConfig};
    pub use crate::query::{TemporalQuery, TimelineEntry};
    pub use crate::registry::SolverRegistry;
    pub use crate::resolution::Resolution;
    pub use crate::session::Session;
    pub use crate::snapshot::Snapshot;
    pub use crate::stats::DebugStats;
    pub use tecore_ground::{ComponentMode, JoinPlanner, MapSolver, MapState, SolverCaps};
}
