//! The end-to-end conflict-resolution pipeline.
//!
//! The pipeline is **backend-agnostic**: it translates, asks its
//! configured [`MapSolver`](tecore_ground::MapSolver) for a
//! [`MapState`](tecore_ground::MapState), and interprets that state as
//! a repaired knowledge graph. There is deliberately no per-backend
//! dispatch anywhere in this module — what a solver can do is read off
//! its [`SolverCaps`](tecore_ground::SolverCaps), so backends added at
//! runtime through the [`crate::registry::SolverRegistry`] behave
//! exactly like the built-in ones.

use std::time::{Duration, Instant};

use tecore_ground::incremental::DeltaStats;
use tecore_ground::{AtomKind, GroundConfig, Grounding, MapState, SolveOpts};
use tecore_kg::{Delta, FactId, TemporalFact, UtkGraph};
use tecore_logic::LogicProgram;
use tecore_mln::marginal::{gibbs_marginals, GibbsConfig};
use tecore_mln::SatProblem;
use tecore_temporal::Interval;

pub use crate::backends::{Backend, SolverHandle};
use crate::error::TecoreError;
use crate::resolution::{InferredFact, RemovedFact, Resolution};
use crate::stats::DebugStats;
use crate::threshold;
use crate::translate::translate;

/// How inferred facts are graded with a confidence value.
///
/// Backends that produce per-atom soft truth values (see
/// [`SolverCaps::soft_values`](tecore_ground::SolverCaps)) always use
/// those; this mode only governs grading when the solver is discrete.
#[derive(Debug, Clone, Default)]
pub enum ConfidenceMode {
    /// Report `1.0` for every accepted derived fact (no extra cost).
    #[default]
    Constant,
    /// Estimate marginals with a Gibbs sampler over the grounding.
    Gibbs(GibbsConfig),
}

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct TecoreConfig {
    /// The reasoner. Any [`SolverHandle`] works here; [`Backend`] specs
    /// convert with `.into()`, registry entries come as-is.
    pub backend: SolverHandle,
    /// Grounding options (`ground_constraints` is overridden per
    /// backend by the translator, driven by the solver's caps).
    pub ground: GroundConfig,
    /// Confidence threshold for derived facts ("remove derived facts
    /// below that" — paper §1). `0.0` keeps everything.
    pub threshold: f64,
    /// Confidence grading for derived facts.
    pub confidence: ConfidenceMode,
}

/// The cached state of the incremental engine: the materialised
/// grounding plus the last MAP state (the warm start for the next
/// solve).
#[derive(Debug, Clone)]
struct EngineState {
    grounding: Grounding,
    last_state: Option<MapState>,
}

/// The TeCoRe system: a uTKG plus rules and constraints, ready to
/// compute the most probable conflict-free KG.
///
/// Two solve paths share one interpretation:
///
/// * [`Tecore::resolve`] — the stateless batch path: translate, ground,
///   solve from scratch (unchanged semantics, `&self`);
/// * [`Tecore::resolve_incremental`] — the interactive path: the first
///   call grounds cold and caches the materialisation; afterwards
///   [`Tecore::insert_fact`]/[`Tecore::remove_fact`] (or any edit
///   through [`Tecore::graph_mut`]) accumulate a [`Delta`] in the
///   graph's change log, and the next `resolve_incremental` applies
///   just that delta to the cached grounding and warm-starts the solver
///   from the previous MAP state — work proportional to the edit, not
///   the graph.
#[derive(Debug, Clone)]
pub struct Tecore {
    graph: UtkGraph,
    program: LogicProgram,
    config: TecoreConfig,
    engine: Option<EngineState>,
}

impl Tecore {
    /// Creates a pipeline with default configuration.
    pub fn new(graph: UtkGraph, program: LogicProgram) -> Self {
        Tecore::with_config(graph, program, TecoreConfig::default())
    }

    /// Creates a pipeline with an explicit configuration.
    pub fn with_config(graph: UtkGraph, program: LogicProgram, config: TecoreConfig) -> Self {
        Tecore {
            graph,
            program,
            config,
            engine: None,
        }
    }

    /// The input graph.
    pub fn graph(&self) -> &UtkGraph {
        &self.graph
    }

    /// Mutable access to the graph. Edits are picked up by the next
    /// [`Tecore::resolve_incremental`] through the graph's change log;
    /// if the log was truncated past the cached epoch the engine falls
    /// back to a full re-ground.
    pub fn graph_mut(&mut self) -> &mut UtkGraph {
        &mut self.graph
    }

    /// The logic program.
    pub fn program(&self) -> &LogicProgram {
        &self.program
    }

    /// The configuration.
    pub fn config(&self) -> &TecoreConfig {
        &self.config
    }

    /// Updates the derived-fact confidence threshold without
    /// invalidating the cached incremental state (thresholding only
    /// affects result interpretation, never the grounding).
    pub fn set_threshold(&mut self, threshold: f64) {
        self.config.threshold = threshold;
    }

    /// Inserts a fact (interning as needed); the change feeds the next
    /// incremental resolve.
    pub fn insert_fact(
        &mut self,
        subject: &str,
        predicate: &str,
        object: &str,
        interval: Interval,
        confidence: f64,
    ) -> Result<FactId, TecoreError> {
        Ok(self
            .graph
            .insert(subject, predicate, object, interval, confidence)?)
    }

    /// Removes (tombstones) a fact; the change feeds the next
    /// incremental resolve.
    pub fn remove_fact(&mut self, id: FactId) -> Result<TemporalFact, TecoreError> {
        Ok(self.graph.remove(id)?)
    }

    /// The grounding configuration actually used: the backend's caps
    /// decide whether constraints ground eagerly or lazily, and the
    /// incremental path must keep applying the same choice.
    fn effective_ground_config(&self) -> GroundConfig {
        let mut config = self.config.ground.clone();
        config.ground_constraints = !self.config.backend.caps().lazy_grounding;
        config
    }

    /// Applies a delta to the cached grounding, if one exists and the
    /// delta starts at its epoch. Returns the delta statistics, or
    /// `None` when there is no cached materialisation to update (or
    /// the epochs don't line up — the cache is then invalidated and
    /// the next resolve re-grounds).
    pub fn apply_delta(&mut self, delta: &Delta) -> Option<DeltaStats> {
        let config = self.effective_ground_config();
        let engine = self.engine.as_mut()?;
        if engine.grounding.epoch() != delta.from_epoch {
            self.engine = None;
            return None;
        }
        Some(engine.grounding.apply_delta(&self.graph, delta, &config))
    }

    /// Runs `map(θ(G), F ∪ C)` from scratch and interprets the result.
    pub fn resolve(&self) -> Result<Resolution, TecoreError> {
        let solver = &self.config.backend;
        let grounding = translate(
            &self.graph,
            &self.program,
            &solver.caps(),
            &self.config.ground,
        )?;
        let solve_start = Instant::now();
        let state = solver.solve(&grounding, &SolveOpts::default())?;
        let solve_time = solve_start.elapsed();
        check_solver_contract(solver, &grounding, &state)?;
        Ok(interpret(
            &self.graph,
            &grounding,
            state,
            &self.config,
            grounding.stats.elapsed,
            solve_time,
        ))
    }

    /// Runs conflict resolution incrementally: syncs the cached
    /// grounding with the graph's change log (cold-grounding on the
    /// first call or after log truncation), warm-starts the solver
    /// from the previous MAP state when its caps allow, and interprets
    /// the result exactly like [`Tecore::resolve`].
    pub fn resolve_incremental(&mut self) -> Result<Resolution, TecoreError> {
        let solver = self.config.backend.clone();
        let caps = solver.caps();

        // 1. Sync the materialised grounding with the graph. Note that
        // an empty *net* delta still goes through apply_delta (a no-op
        // except for advancing the epoch): the epoch must move so the
        // log truncation below can drop netted churn (insert+remove
        // pairs) instead of re-netting a growing log every resolve.
        let mut engine = match self.engine.take() {
            Some(mut engine) => match self.graph.since(engine.grounding.epoch()) {
                Some(delta) => {
                    let config = self.effective_ground_config();
                    let delta_stats = engine.grounding.apply_delta(&self.graph, &delta, &config);
                    engine.grounding.stats.elapsed = delta_stats.elapsed;
                    engine
                }
                None => EngineState {
                    // The change log no longer reaches back to the
                    // cached epoch: re-ground from scratch.
                    grounding: translate(&self.graph, &self.program, &caps, &self.config.ground)?,
                    last_state: None,
                },
            },
            None => EngineState {
                grounding: translate(&self.graph, &self.program, &caps, &self.config.ground)?,
                last_state: None,
            },
        };
        // Long churny sessions accumulate dead atom slots (ids are
        // never reused so solver vectors stay index-stable); once the
        // graveyard dominates, a compacting re-ground is cheaper than
        // dragging it through every solve.
        let dead = engine.grounding.store.dead_count();
        if dead > 64 && dead * 2 > engine.grounding.num_atoms() {
            engine = EngineState {
                grounding: translate(&self.graph, &self.program, &caps, &self.config.ground)?,
                last_state: None, // atom ids changed: warm state is void
            };
        }
        // The cache has consumed the history; keep the log bounded.
        self.graph.truncate_log(engine.grounding.epoch());

        // 2. Warm-started solve.
        let opts = SolveOpts {
            seed: None,
            warm_start: if caps.warm_start {
                engine.last_state.as_ref()
            } else {
                None
            },
        };
        let solve_start = Instant::now();
        let state = solver.solve(&engine.grounding, &opts)?;
        let solve_time = solve_start.elapsed();
        check_solver_contract(&solver, &engine.grounding, &state)?;

        // 3. Interpret, then cache grounding + state for the next round.
        let resolution = interpret(
            &self.graph,
            &engine.grounding,
            state.clone(),
            &self.config,
            engine.grounding.stats.elapsed,
            solve_time,
        );
        engine.last_state = Some(state);
        self.engine = Some(engine);
        Ok(resolution)
    }
}

/// Enforces the MapSolver contract on plugin backends: wrong vector
/// lengths or a caps/state mismatch must surface as the documented
/// error, not as an index panic (or silently wrong confidences)
/// further down.
fn check_solver_contract(
    solver: &SolverHandle,
    grounding: &Grounding,
    state: &MapState,
) -> Result<(), TecoreError> {
    let contract_violation = if state.assignment.len() != grounding.num_atoms() {
        Some(format!(
            "returned {} assignments for {} ground atoms",
            state.assignment.len(),
            grounding.num_atoms()
        ))
    } else if state
        .soft_values
        .as_ref()
        .is_some_and(|v| v.len() != grounding.num_atoms())
    {
        Some(format!(
            "returned {} soft values for {} ground atoms",
            state.soft_values.as_ref().map_or(0, Vec::len),
            grounding.num_atoms()
        ))
    } else if solver.caps().soft_values != state.soft_values.is_some() {
        Some(format!(
            "caps declare soft_values = {} but the solve {} them",
            solver.caps().soft_values,
            if state.soft_values.is_some() {
                "returned"
            } else {
                "omitted"
            }
        ))
    } else {
        None
    };
    match contract_violation {
        Some(violation) => Err(TecoreError::Solve(tecore_ground::SolveError::Backend(
            format!("solver `{}` {violation}", solver.name()),
        ))),
        None => Ok(()),
    }
}

/// Interprets a MAP state as a repaired knowledge graph — shared by the
/// batch and incremental paths.
fn interpret(
    graph: &UtkGraph,
    grounding: &Grounding,
    mut state: MapState,
    config: &TecoreConfig,
    grounding_time: Duration,
    solve_time: Duration,
) -> Resolution {
    // Detected conflicts: constraint groundings violated by the
    // "keep everything" world, with full provenance.
    let conflicts = crate::explain::explain_conflicts(grounding);
    let mut per_constraint: Vec<(String, usize)> = Vec::new();
    for c in &conflicts {
        match per_constraint.iter_mut().find(|(n, _)| *n == c.constraint) {
            Some((_, count)) => *count += 1,
            None => per_constraint.push((c.constraint.clone(), 1)),
        }
    }

    // Partition evidence by the MAP world.
    let mut removed = Vec::new();
    let consistent = graph.filtered(|id, fact| {
        let atom = grounding.fact_atoms[&id];
        let keep = state.assignment[atom.index()];
        if !keep {
            removed.push(RemovedFact { id, fact: *fact });
        }
        keep
    });

    // Confidence source for accepted derived facts: the solver's
    // own soft truth values when it has them (taken, not cloned —
    // on large groundings this vector is num_atoms wide), else the
    // configured grading mode over the grounding.
    let marginals: Option<Vec<f64>> = match (state.soft_values.take(), &config.confidence) {
        (Some(values), _) => Some(values),
        (None, ConfidenceMode::Gibbs(cfg)) => {
            let problem = SatProblem::from_grounding(grounding);
            Some(gibbs_marginals(&problem, Some(&state.assignment), cfg))
        }
        (None, ConfidenceMode::Constant) => None,
    };
    let mut inferred = Vec::new();
    // Dead atoms (retracted by deltas) keep their assignment slot but
    // are not part of the result.
    for (id, atom) in grounding.store.iter_alive() {
        if matches!(atom.kind, AtomKind::Hidden) && state.assignment[id.index()] {
            let confidence = marginals
                .as_ref()
                .map_or(1.0, |m| m[id.index()].clamp(0.0, 1.0));
            inferred.push(InferredFact {
                subject: grounding.dict.resolve(atom.subject).to_string(),
                predicate: grounding.dict.resolve(atom.predicate).to_string(),
                object: grounding.dict.resolve(atom.object).to_string(),
                interval: atom.interval,
                confidence,
            });
        }
    }
    let (inferred, thresholded) = threshold::apply(inferred, config.threshold);

    let stats = DebugStats {
        total_facts: graph.len(),
        conflicting_facts: removed.len(),
        inferred_facts: inferred.len(),
        thresholded_facts: thresholded,
        atoms: grounding.num_atoms() - grounding.store.dead_count(),
        clauses: state.active_clauses,
        per_constraint,
        backend: config.backend.name().to_string(),
        feasible: state.feasible,
        cost: state.cost,
        grounding_time,
        solve_time,
    };
    Resolution {
        consistent,
        removed,
        inferred,
        conflicts,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tecore_kg::parser::parse_graph;
    use tecore_mln::{CpiConfig, WalkSatConfig};

    const RANIERI: &str = "\
        (CR, coach, Chelsea, [2000,2004]) 0.9\n\
        (CR, coach, Leicester, [2015,2017]) 0.7\n\
        (CR, playsFor, Palermo, [1984,1986]) 0.5\n\
        (CR, birthDate, 1951, [1951,2017]) 1.0\n\
        (CR, coach, Napoli, [2001,2003]) 0.6\n";

    const PAPER_PROGRAM: &str = "\
        f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5\n\
        f2: quad(x, worksFor, y, t) ^ quad(y, locatedIn, z, t') ^ overlap(t, t') \
            -> quad(x, livesIn, z, t ∩ t') w = 1.6\n\
        f3: quad(x, playsFor, y, t) ^ quad(x, birthDate, z, t') ^ t - t' < 20 \
            -> quad(x, type, TeenPlayer) w = 2.9\n\
        c1: quad(x, birthDate, y, t) ^ quad(x, deathDate, z, t') -> before(t, t') w = inf\n\
        c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf\n\
        c3: quad(x, bornIn, y, t) ^ quad(x, bornIn, z, t') ^ overlap(t, t') -> y = z w = inf\n";

    fn run(backend: impl Into<SolverHandle>) -> Resolution {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend: backend.into(),
            ..TecoreConfig::default()
        };
        Tecore::with_config(graph, program, config)
            .resolve()
            .unwrap()
    }

    /// The paper's running example, Figure 7: fact (5) (Napoli) removed,
    /// facts (1)–(4) kept, on every backend.
    #[test]
    fn running_example_all_backends() {
        for backend in [
            Backend::MlnExact,
            Backend::MlnWalkSat(WalkSatConfig::default()),
            Backend::MlnCuttingPlane(CpiConfig::default()),
            Backend::default_psl(),
        ] {
            let name = backend.name();
            let r = run(backend);
            assert!(r.stats.feasible, "{name}: must be feasible");
            assert_eq!(
                r.stats.conflicting_facts, 1,
                "{name}: exactly the Napoli fact removed"
            );
            assert_eq!(r.consistent.len(), 4, "{name}");
            let removed = &r.removed[0];
            assert_eq!(
                r.consistent.dict().resolve(removed.fact.object),
                "Napoli",
                "{name}"
            );
            // f1 derives worksFor(CR, Palermo, [1984,1986]).
            assert_eq!(r.inferred.len(), 1, "{name}: {:?}", r.inferred);
            assert_eq!(r.inferred[0].predicate, "worksFor", "{name}");
            // c2 detected exactly one conflict.
            assert_eq!(
                r.stats.per_constraint,
                vec![("c2".to_string(), 1)],
                "{name}"
            );
        }
    }

    fn iv(a: i64, b: i64) -> tecore_temporal::Interval {
        tecore_temporal::Interval::new(a, b).unwrap()
    }

    /// Sorted display strings of a resolution's surviving facts.
    fn canonical(r: &Resolution) -> (Vec<String>, Vec<String>, Vec<String>) {
        let mut kept: Vec<String> = r
            .consistent
            .iter()
            .map(|(_, f)| f.display(r.consistent.dict()).to_string())
            .collect();
        kept.sort();
        let mut removed: Vec<String> = r
            .removed
            .iter()
            .map(|rf| rf.fact.display(r.consistent.dict()).to_string())
            .collect();
        removed.sort();
        let mut inferred: Vec<String> = r
            .inferred
            .iter()
            .map(|f| format!("{} {} {} {}", f.subject, f.predicate, f.object, f.interval))
            .collect();
        inferred.sort();
        (kept, removed, inferred)
    }

    /// A sequence of edits through the incremental engine must land on
    /// exactly the repair a cold solve of the final graph computes — on
    /// every backend, warm starts included.
    #[test]
    fn incremental_edits_match_cold_resolve_on_all_backends() {
        for backend in [
            Backend::MlnExact,
            Backend::MlnWalkSat(WalkSatConfig::default()),
            Backend::MlnCuttingPlane(CpiConfig::default()),
            Backend::default_psl(),
        ] {
            let name = backend.name();
            let graph = parse_graph(RANIERI).unwrap();
            let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
            let config = TecoreConfig {
                backend: backend.into(),
                ..TecoreConfig::default()
            };
            let mut engine = Tecore::with_config(graph, program.clone(), config.clone());

            // Prime: identical to the batch result.
            let first = engine.resolve_incremental().unwrap();
            assert_eq!(first.stats.conflicting_facts, 1, "{name}");

            // Edit burst: a fresh clash with Leicester, and the Palermo
            // spell (the worksFor derivation's support) goes away.
            engine
                .insert_fact("CR", "coach", "Roma", iv(2016, 2018), 0.95)
                .unwrap();
            let plays = engine.graph().dict().lookup("playsFor").unwrap();
            let palermo_fact = engine
                .graph()
                .facts_with_predicate(plays)
                .next()
                .map(|(id, _)| id)
                .unwrap();
            engine.remove_fact(palermo_fact).unwrap();

            let incremental = engine.resolve_incremental().unwrap();
            let cold = Tecore::with_config(engine.graph().clone(), program, config)
                .resolve()
                .unwrap();
            assert_eq!(canonical(&incremental), canonical(&cold), "{name}");
            assert_eq!(incremental.stats.feasible, cold.stats.feasible, "{name}");
            assert!(
                (incremental.stats.cost - cold.stats.cost).abs() < 1e-6,
                "{name}: incremental cost {} vs cold {}",
                incremental.stats.cost,
                cold.stats.cost
            );
            // The derivation died with its support.
            assert!(incremental.inferred.is_empty(), "{name}");
        }
    }

    /// Re-resolving with no edits reuses the cached grounding and stays
    /// correct; netted churn (insert+remove pairs) still advances the
    /// cached epoch so the graph's change log drains instead of being
    /// re-netted forever.
    #[test]
    fn incremental_noop_resolve_reuses_cache() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let mut engine = Tecore::new(graph, program);
        let first = engine.resolve_incremental().unwrap();
        let again = engine.resolve_incremental().unwrap();
        assert_eq!(canonical(&first), canonical(&again));

        // Churn that nets to nothing: the cache must still catch up to
        // the graph's epoch (otherwise the log accumulates forever).
        let id = engine
            .insert_fact("CR", "coach", "Churn", iv(1990, 1991), 0.8)
            .unwrap();
        engine.remove_fact(id).unwrap();
        let after_churn = engine.resolve_incremental().unwrap();
        assert_eq!(canonical(&first), canonical(&after_churn));
        assert_eq!(
            engine.engine.as_ref().unwrap().grounding.epoch(),
            engine.graph.epoch(),
            "cached epoch caught up through the net-empty delta"
        );
    }

    /// Long churny sessions must not drag an ever-growing graveyard of
    /// dead atom slots through every solve: once dead slots dominate,
    /// the engine re-grounds compactly.
    #[test]
    fn graveyard_compaction_triggers_reground() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let mut engine = Tecore::new(graph, program);
        engine.resolve_incremental().unwrap();
        // Each round materialises a fresh atom, then kills it.
        for i in 0..70 {
            let id = engine
                .insert_fact(
                    &format!("p{i}"),
                    "coach",
                    &format!("c{i}"),
                    iv(2000, 2001),
                    0.8,
                )
                .unwrap();
            engine.resolve_incremental().unwrap();
            engine.remove_fact(id).unwrap();
        }
        let r = engine.resolve_incremental().unwrap();
        assert_eq!(r.stats.conflicting_facts, 1);
        let atoms = engine.engine.as_ref().unwrap().grounding.num_atoms();
        assert!(atoms < 20, "graveyard compacted away, got {atoms} atoms");
    }

    /// Edits through `graph_mut` (bypassing the convenience methods)
    /// are picked up via the change log; a truncated log falls back to
    /// a full re-ground instead of returning stale results.
    #[test]
    fn graph_mut_edits_and_log_truncation_are_handled() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let mut engine = Tecore::new(graph, program);
        engine.resolve_incremental().unwrap();

        engine
            .graph_mut()
            .insert("CR", "coach", "Roma", iv(2016, 2018), 0.95)
            .unwrap();
        let via_log = engine.resolve_incremental().unwrap();
        assert_eq!(via_log.stats.conflicting_facts, 2);

        // Sever the history: the engine must rebuild, not misbehave.
        engine
            .graph_mut()
            .insert("X", "coach", "A", iv(1, 2), 0.9)
            .unwrap();
        let epoch = engine.graph().epoch();
        engine.graph_mut().truncate_log(epoch);
        let rebuilt = engine.resolve_incremental().unwrap();
        assert_eq!(rebuilt.stats.conflicting_facts, 2);
    }

    #[test]
    fn expanded_graph_contains_inferred() {
        let r = run(Backend::MlnExact);
        let expanded = r.expanded_graph();
        assert_eq!(expanded.len(), 5); // 4 kept + 1 inferred
        let works_for = expanded.dict().lookup("worksFor").unwrap();
        assert_eq!(expanded.facts_with_predicate(works_for).count(), 1);
    }

    #[test]
    fn gibbs_confidence_grades_inferred() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend: Backend::MlnExact.into(),
            confidence: ConfidenceMode::Gibbs(GibbsConfig::default()),
            ..TecoreConfig::default()
        };
        let r = Tecore::with_config(graph, program, config)
            .resolve()
            .unwrap();
        assert_eq!(r.inferred.len(), 1);
        let c = r.inferred[0].confidence;
        assert!((0.0..=1.0).contains(&c));
        // The worksFor derivation is supported by a w=2.5 rule from a
        // 0.5-confidence fact; its marginal should be clearly above 0.5.
        assert!(c > 0.5, "confidence {c}");
    }

    #[test]
    fn threshold_drops_inferred() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend: Backend::MlnExact.into(),
            threshold: 2.0, // impossible bar: drops everything
            ..TecoreConfig::default()
        };
        let r = Tecore::with_config(graph, program, config)
            .resolve()
            .unwrap();
        assert_eq!(r.inferred.len(), 0);
        assert_eq!(r.stats.thresholded_facts, 1);
    }

    #[test]
    fn psl_confidences_are_soft_values() {
        let r = run(Backend::default_psl());
        assert_eq!(r.inferred.len(), 1);
        let c = r.inferred[0].confidence;
        assert!((0.0..=1.0).contains(&c));
        assert!(
            c > 0.5,
            "supported derivation should have high value, got {c}"
        );
    }

    #[test]
    fn conflict_free_graph_untouched() {
        let graph = parse_graph(
            "(CR, coach, Chelsea, [2000,2004]) 0.9\n\
             (CR, coach, Leicester, [2015,2017]) 0.7\n",
        )
        .unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let r = Tecore::new(graph, program).resolve().unwrap();
        assert_eq!(r.stats.conflicting_facts, 0);
        assert_eq!(r.consistent.len(), 2);
        assert!(r.stats.per_constraint.is_empty());
    }

    /// A backend outside the [`Backend`] enum drops straight into the
    /// config — the acceptance test for the open solver seam.
    #[test]
    fn external_solver_plugs_in() {
        use tecore_ground::{Grounding, MapSolver, MapState, SolveError, SolverCaps};

        /// Trivial "solver": keeps every atom (never repairs anything).
        #[derive(Debug)]
        struct KeepAll;

        impl MapSolver for KeepAll {
            fn name(&self) -> &str {
                "keep-all"
            }
            fn caps(&self) -> SolverCaps {
                SolverCaps::mln()
            }
            fn solve(
                &self,
                grounding: &Grounding,
                _opts: &SolveOpts,
            ) -> Result<MapState, SolveError> {
                let (cost, hard) = tecore_ground::evaluate_world(
                    &grounding.clauses,
                    &vec![true; grounding.num_atoms()],
                );
                Ok(MapState {
                    assignment: vec![true; grounding.num_atoms()],
                    cost,
                    feasible: hard == 0,
                    active_clauses: grounding.clauses.len(),
                    soft_values: None,
                })
            }
        }

        let r = run(SolverHandle::new(KeepAll));
        // Keeping everything keeps the Napoli clash: infeasible, nothing
        // removed, and the stats carry the external backend's name.
        assert!(!r.stats.feasible);
        assert_eq!(r.stats.conflicting_facts, 0);
        assert_eq!(r.stats.backend, "keep-all");
    }

    /// A plugin that violates the assignment-length contract must fail
    /// with the documented solver error, not an index panic.
    #[test]
    fn short_assignment_is_a_solve_error() {
        use tecore_ground::{Grounding, MapSolver, MapState, SolveError, SolverCaps};

        #[derive(Debug)]
        struct Truncated;

        impl MapSolver for Truncated {
            fn name(&self) -> &str {
                "truncated"
            }
            fn caps(&self) -> SolverCaps {
                SolverCaps::mln()
            }
            fn solve(
                &self,
                _grounding: &Grounding,
                _opts: &SolveOpts,
            ) -> Result<MapState, SolveError> {
                Ok(MapState {
                    assignment: vec![true], // wrong length
                    cost: 0.0,
                    feasible: true,
                    active_clauses: 0,
                    soft_values: None,
                })
            }
        }

        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend: SolverHandle::new(Truncated),
            ..TecoreConfig::default()
        };
        let err = Tecore::with_config(graph, program, config)
            .resolve()
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("solver error"), "{message}");
        assert!(message.contains("truncated"), "{message}");
        assert!(message.contains("1 assignments"), "{message}");
    }

    /// Declared caps and the returned state must agree on soft values.
    #[test]
    fn caps_state_mismatch_is_a_solve_error() {
        use tecore_ground::{Grounding, MapSolver, MapState, SolveError, SolverCaps};

        /// Claims to be discrete but returns soft values.
        #[derive(Debug)]
        struct TwoFaced;

        impl MapSolver for TwoFaced {
            fn name(&self) -> &str {
                "two-faced"
            }
            fn caps(&self) -> SolverCaps {
                SolverCaps::mln() // soft_values: false
            }
            fn solve(
                &self,
                grounding: &Grounding,
                _opts: &SolveOpts,
            ) -> Result<MapState, SolveError> {
                let n = grounding.num_atoms();
                Ok(MapState {
                    assignment: vec![true; n],
                    cost: 0.0,
                    feasible: true,
                    active_clauses: 0,
                    soft_values: Some(vec![0.5; n]),
                })
            }
        }

        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend: SolverHandle::new(TwoFaced),
            ..TecoreConfig::default()
        };
        let err = Tecore::with_config(graph, program, config)
            .resolve()
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("two-faced"), "{message}");
        assert!(message.contains("soft_values = false"), "{message}");
    }
}
