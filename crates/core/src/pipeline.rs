//! The end-to-end conflict-resolution pipeline.

use std::time::Instant;

use tecore_ground::{AtomKind, GroundConfig, Grounding};
use tecore_kg::UtkGraph;
use tecore_logic::LogicProgram;
use tecore_mln::marginal::{gibbs_marginals, GibbsConfig};
use tecore_mln::{BranchAndBound, CpiConfig, CpiSolver, MaxWalkSat, SatProblem, WalkSatConfig};
use tecore_psl::{AdmmConfig, PslConfig};

use crate::error::TecoreError;
use crate::resolution::{InferredFact, RemovedFact, Resolution};
use crate::stats::DebugStats;
use crate::threshold;
use crate::translate::translate;

/// Which reasoner computes the MAP state (paper §2.1: nRockIt vs PSL).
#[derive(Debug, Clone)]
pub enum Backend {
    /// MLN with the exact branch & bound solver.
    MlnExact,
    /// MLN with MaxWalkSAT over the eager grounding.
    MlnWalkSat(WalkSatConfig),
    /// MLN with cutting-plane inference (lazy constraint grounding) —
    /// the nRockIt configuration.
    MlnCuttingPlane(CpiConfig),
    /// PSL solved by consensus ADMM — the nPSL configuration.
    PslAdmm {
        /// HL-MRF construction options.
        psl: PslConfig,
        /// ADMM parameters.
        admm: AdmmConfig,
    },
}

impl Backend {
    /// Short identifier used in statistics output.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::MlnExact => "mln-exact",
            Backend::MlnWalkSat(_) => "mln-walksat",
            Backend::MlnCuttingPlane(_) => "mln-cpi",
            Backend::PslAdmm { .. } => "psl-admm",
        }
    }

    /// The default PSL backend.
    pub fn default_psl() -> Backend {
        Backend::PslAdmm {
            psl: PslConfig::default(),
            admm: AdmmConfig::default(),
        }
    }
}

impl Default for Backend {
    /// The paper's default reasoner is the MLN one; cutting-plane
    /// inference is its scalable configuration.
    fn default() -> Self {
        Backend::MlnCuttingPlane(CpiConfig::default())
    }
}

/// How inferred facts are graded with a confidence value.
#[derive(Debug, Clone, Default)]
pub enum ConfidenceMode {
    /// Report `1.0` for every accepted derived fact (no extra cost).
    #[default]
    Constant,
    /// Estimate marginals with a Gibbs sampler (MLN backends; the PSL
    /// backend always uses its soft truth values instead).
    Gibbs(GibbsConfig),
}

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct TecoreConfig {
    /// The reasoner.
    pub backend: Backend,
    /// Grounding options (`ground_constraints` is overridden per
    /// backend by the translator).
    pub ground: GroundConfig,
    /// Confidence threshold for derived facts ("remove derived facts
    /// below that" — paper §1). `0.0` keeps everything.
    pub threshold: f64,
    /// Confidence grading for derived facts.
    pub confidence: ConfidenceMode,
}

/// The TeCoRe system: a uTKG plus rules and constraints, ready to
/// compute the most probable conflict-free KG.
#[derive(Debug, Clone)]
pub struct Tecore {
    graph: UtkGraph,
    program: LogicProgram,
    config: TecoreConfig,
}

impl Tecore {
    /// Creates a pipeline with default configuration.
    pub fn new(graph: UtkGraph, program: LogicProgram) -> Self {
        Tecore {
            graph,
            program,
            config: TecoreConfig::default(),
        }
    }

    /// Creates a pipeline with an explicit configuration.
    pub fn with_config(graph: UtkGraph, program: LogicProgram, config: TecoreConfig) -> Self {
        Tecore {
            graph,
            program,
            config,
        }
    }

    /// The input graph.
    pub fn graph(&self) -> &UtkGraph {
        &self.graph
    }

    /// The logic program.
    pub fn program(&self) -> &LogicProgram {
        &self.program
    }

    /// The configuration.
    pub fn config(&self) -> &TecoreConfig {
        &self.config
    }

    /// Runs `map(θ(G), F ∪ C)` and interprets the result.
    pub fn resolve(&self) -> Result<Resolution, TecoreError> {
        let grounding = translate(
            &self.graph,
            &self.program,
            &self.config.backend,
            &self.config.ground,
        )?;

        let solve_start = Instant::now();
        let (assignment, cost, feasible, active_clauses, soft_values) =
            self.run_backend(&grounding);
        let solve_time = solve_start.elapsed();

        // Detected conflicts: constraint groundings violated by the
        // "keep everything" world, with full provenance.
        let conflicts = crate::explain::explain_conflicts(&grounding);
        let mut per_constraint: Vec<(String, usize)> = Vec::new();
        for c in &conflicts {
            match per_constraint.iter_mut().find(|(n, _)| *n == c.constraint) {
                Some((_, count)) => *count += 1,
                None => per_constraint.push((c.constraint.clone(), 1)),
            }
        }

        // Partition evidence by the MAP world.
        let mut removed = Vec::new();
        let consistent = self.graph.filtered(|id, fact| {
            let atom = grounding.fact_atoms[&id];
            let keep = assignment[atom.index()];
            if !keep {
                removed.push(RemovedFact { id, fact: *fact });
            }
            keep
        });

        // Collect accepted derived facts.
        let marginals: Option<Vec<f64>> = match (&self.config.confidence, &self.config.backend) {
            (_, Backend::PslAdmm { .. }) => soft_values,
            (ConfidenceMode::Gibbs(cfg), _) => {
                let problem = SatProblem::from_grounding(&grounding);
                Some(gibbs_marginals(&problem, Some(&assignment), cfg))
            }
            (ConfidenceMode::Constant, _) => None,
        };
        let mut inferred = Vec::new();
        for (id, atom) in grounding.store.iter() {
            if matches!(atom.kind, AtomKind::Hidden) && assignment[id.index()] {
                let confidence = marginals
                    .as_ref()
                    .map_or(1.0, |m| m[id.index()].clamp(0.0, 1.0));
                inferred.push(InferredFact {
                    subject: grounding.dict.resolve(atom.subject).to_string(),
                    predicate: grounding.dict.resolve(atom.predicate).to_string(),
                    object: grounding.dict.resolve(atom.object).to_string(),
                    interval: atom.interval,
                    confidence,
                });
            }
        }
        let (inferred, thresholded) = threshold::apply(inferred, self.config.threshold);

        let stats = DebugStats {
            total_facts: self.graph.len(),
            conflicting_facts: removed.len(),
            inferred_facts: inferred.len(),
            thresholded_facts: thresholded,
            atoms: grounding.num_atoms(),
            clauses: active_clauses,
            per_constraint,
            backend: self.config.backend.name(),
            feasible,
            cost,
            grounding_time: grounding.stats.elapsed,
            solve_time,
        };
        Ok(Resolution {
            consistent,
            removed,
            inferred,
            conflicts,
            stats,
        })
    }

    /// Dispatches to the configured solver. Returns
    /// `(assignment, discrete cost, feasible, active clauses, PSL values)`.
    fn run_backend(
        &self,
        grounding: &Grounding,
    ) -> (Vec<bool>, f64, bool, usize, Option<Vec<f64>>) {
        match &self.config.backend {
            Backend::MlnExact => {
                let problem = SatProblem::from_grounding(grounding);
                let r = BranchAndBound::new().solve(&problem);
                (
                    r.assignment,
                    r.cost,
                    r.feasible,
                    r.stats.active_clauses,
                    None,
                )
            }
            Backend::MlnWalkSat(cfg) => {
                let problem = SatProblem::from_grounding(grounding);
                let r = MaxWalkSat::new(cfg.clone()).solve(&problem);
                (
                    r.assignment,
                    r.cost,
                    r.feasible,
                    r.stats.active_clauses,
                    None,
                )
            }
            Backend::MlnCuttingPlane(cfg) => {
                let r = CpiSolver::new(cfg.clone()).solve_lazy(grounding);
                (
                    r.assignment,
                    r.cost,
                    r.feasible,
                    r.stats.active_clauses,
                    None,
                )
            }
            Backend::PslAdmm { psl, admm } => {
                let r = tecore_psl::solve(grounding, psl, admm);
                // Discrete cost of the rounded world, for comparability
                // with the MLN backends. Hard-clause satisfaction of the
                // rounded world defines feasibility.
                let problem = SatProblem::from_grounding(grounding);
                let (cost, hard_violations) = problem.evaluate(&r.assignment);
                (
                    r.assignment,
                    cost,
                    hard_violations == 0,
                    grounding.clauses.len(),
                    Some(r.values),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tecore_kg::parser::parse_graph;

    const RANIERI: &str = "\
        (CR, coach, Chelsea, [2000,2004]) 0.9\n\
        (CR, coach, Leicester, [2015,2017]) 0.7\n\
        (CR, playsFor, Palermo, [1984,1986]) 0.5\n\
        (CR, birthDate, 1951, [1951,2017]) 1.0\n\
        (CR, coach, Napoli, [2001,2003]) 0.6\n";

    const PAPER_PROGRAM: &str = "\
        f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5\n\
        f2: quad(x, worksFor, y, t) ^ quad(y, locatedIn, z, t') ^ overlap(t, t') \
            -> quad(x, livesIn, z, t ∩ t') w = 1.6\n\
        f3: quad(x, playsFor, y, t) ^ quad(x, birthDate, z, t') ^ t - t' < 20 \
            -> quad(x, type, TeenPlayer) w = 2.9\n\
        c1: quad(x, birthDate, y, t) ^ quad(x, deathDate, z, t') -> before(t, t') w = inf\n\
        c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf\n\
        c3: quad(x, bornIn, y, t) ^ quad(x, bornIn, z, t') ^ overlap(t, t') -> y = z w = inf\n";

    fn run(backend: Backend) -> Resolution {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend,
            ..TecoreConfig::default()
        };
        Tecore::with_config(graph, program, config).resolve().unwrap()
    }

    /// The paper's running example, Figure 7: fact (5) (Napoli) removed,
    /// facts (1)–(4) kept, on every backend.
    #[test]
    fn running_example_all_backends() {
        for backend in [
            Backend::MlnExact,
            Backend::MlnWalkSat(WalkSatConfig::default()),
            Backend::MlnCuttingPlane(CpiConfig::default()),
            Backend::default_psl(),
        ] {
            let name = backend.name();
            let r = run(backend);
            assert!(r.stats.feasible, "{name}: must be feasible");
            assert_eq!(
                r.stats.conflicting_facts, 1,
                "{name}: exactly the Napoli fact removed"
            );
            assert_eq!(r.consistent.len(), 4, "{name}");
            let removed = &r.removed[0];
            assert_eq!(
                r.consistent.dict().resolve(removed.fact.object),
                "Napoli",
                "{name}"
            );
            // f1 derives worksFor(CR, Palermo, [1984,1986]).
            assert_eq!(r.inferred.len(), 1, "{name}: {:?}", r.inferred);
            assert_eq!(r.inferred[0].predicate, "worksFor", "{name}");
            // c2 detected exactly one conflict.
            assert_eq!(
                r.stats.per_constraint,
                vec![("c2".to_string(), 1)],
                "{name}"
            );
        }
    }

    #[test]
    fn expanded_graph_contains_inferred() {
        let r = run(Backend::MlnExact);
        let expanded = r.expanded_graph();
        assert_eq!(expanded.len(), 5); // 4 kept + 1 inferred
        let works_for = expanded.dict().lookup("worksFor").unwrap();
        assert_eq!(expanded.facts_with_predicate(works_for).count(), 1);
    }

    #[test]
    fn gibbs_confidence_grades_inferred() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend: Backend::MlnExact,
            confidence: ConfidenceMode::Gibbs(GibbsConfig::default()),
            ..TecoreConfig::default()
        };
        let r = Tecore::with_config(graph, program, config).resolve().unwrap();
        assert_eq!(r.inferred.len(), 1);
        let c = r.inferred[0].confidence;
        assert!((0.0..=1.0).contains(&c));
        // The worksFor derivation is supported by a w=2.5 rule from a
        // 0.5-confidence fact; its marginal should be clearly above 0.5.
        assert!(c > 0.5, "confidence {c}");
    }

    #[test]
    fn threshold_drops_inferred() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend: Backend::MlnExact,
            threshold: 2.0, // impossible bar: drops everything
            ..TecoreConfig::default()
        };
        let r = Tecore::with_config(graph, program, config).resolve().unwrap();
        assert_eq!(r.inferred.len(), 0);
        assert_eq!(r.stats.thresholded_facts, 1);
    }

    #[test]
    fn psl_confidences_are_soft_values() {
        let r = run(Backend::default_psl());
        assert_eq!(r.inferred.len(), 1);
        let c = r.inferred[0].confidence;
        assert!((0.0..=1.0).contains(&c));
        assert!(c > 0.5, "supported derivation should have high value, got {c}");
    }

    #[test]
    fn conflict_free_graph_untouched() {
        let graph = parse_graph(
            "(CR, coach, Chelsea, [2000,2004]) 0.9\n\
             (CR, coach, Leicester, [2015,2017]) 0.7\n",
        )
        .unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let r = Tecore::new(graph, program).resolve().unwrap();
        assert_eq!(r.stats.conflicting_facts, 0);
        assert_eq!(r.consistent.len(), 2);
        assert!(r.stats.per_constraint.is_empty());
    }
}
