//! Pipeline configuration and MAP-state interpretation.
//!
//! The compute pipeline is **backend-agnostic**: the [`Engine`]
//! translates, asks its configured
//! [`MapSolver`](tecore_ground::MapSolver) for a [`MapState`], and the
//! interpretation step turns that state into a repaired knowledge
//! graph. There is deliberately no
//! per-backend dispatch anywhere in this module — what a solver can do
//! is read off its [`SolverCaps`](tecore_ground::SolverCaps), so
//! backends added at runtime through the
//! [`crate::registry::SolverRegistry`] behave exactly like the built-in
//! ones.

use std::time::Duration;

use tecore_ground::{AtomKind, ComponentMode, GroundConfig, Grounding, MapState};
use tecore_kg::UtkGraph;
use tecore_mln::marginal::{gibbs_marginals, GibbsConfig};
use tecore_mln::SatProblem;

pub use crate::backends::{Backend, SolverHandle};
// Compatibility re-exports: the pipeline struct moved to
// [`crate::engine`] and now hands out snapshots; the old
// `pipeline::Tecore` path keeps resolving to it.
pub use crate::engine::Engine;
pub use crate::engine::Engine as Tecore;
use crate::error::TecoreError;
use crate::resolution::{InferredFact, RemovedFact, Resolution};
use crate::stats::DebugStats;
use crate::threshold;

/// How inferred facts are graded with a confidence value.
///
/// Backends that produce per-atom soft truth values (see
/// [`SolverCaps::soft_values`](tecore_ground::SolverCaps)) always use
/// those; this mode only governs grading when the solver is discrete.
#[derive(Debug, Clone, Default)]
pub enum ConfidenceMode {
    /// Report `1.0` for every accepted derived fact (no extra cost).
    #[default]
    Constant,
    /// Estimate marginals with a Gibbs sampler over the grounding.
    Gibbs(GibbsConfig),
}

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct TecoreConfig {
    /// The reasoner. Any [`SolverHandle`] works here; [`Backend`] specs
    /// convert with `.into()`, registry entries come as-is.
    pub backend: SolverHandle,
    /// Grounding options (`ground_constraints` is overridden per
    /// backend by the translator, driven by the solver's caps).
    pub ground: GroundConfig,
    /// Confidence threshold for derived facts ("remove derived facts
    /// below that" — paper §1). `0.0` keeps everything.
    pub threshold: f64,
    /// Confidence grading for derived facts.
    pub confidence: ConfidenceMode,
    /// Conflict-component treatment for the solve step: partition the
    /// ground problem into independent components and solve them
    /// separately (default [`ComponentMode::Auto`]), or force one
    /// monolithic solve. Copied into
    /// [`SolveOpts::component_mode`](tecore_ground::SolveOpts) by the
    /// engine; changing it never invalidates the cached incremental
    /// grounding.
    pub component_mode: ComponentMode,
}

/// Enforces the MapSolver contract on plugin backends: wrong vector
/// lengths or a caps/state mismatch must surface as the documented
/// error, not as an index panic (or silently wrong confidences)
/// further down.
pub(crate) fn check_solver_contract(
    solver: &SolverHandle,
    grounding: &Grounding,
    state: &MapState,
) -> Result<(), TecoreError> {
    let contract_violation = if state.assignment.len() != grounding.num_atoms() {
        Some(format!(
            "returned {} assignments for {} ground atoms",
            state.assignment.len(),
            grounding.num_atoms()
        ))
    } else if state
        .soft_values
        .as_ref()
        .is_some_and(|v| v.len() != grounding.num_atoms())
    {
        Some(format!(
            "returned {} soft values for {} ground atoms",
            state.soft_values.as_ref().map_or(0, Vec::len),
            grounding.num_atoms()
        ))
    } else if solver.caps().soft_values != state.soft_values.is_some() {
        Some(format!(
            "caps declare soft_values = {} but the solve {} them",
            solver.caps().soft_values,
            if state.soft_values.is_some() {
                "returned"
            } else {
                "omitted"
            }
        ))
    } else {
        None
    };
    match contract_violation {
        Some(violation) => Err(TecoreError::Solve(tecore_ground::SolveError::Backend(
            format!("solver `{}` {violation}", solver.name()),
        ))),
        None => Ok(()),
    }
}

/// Interprets a MAP state as a repaired knowledge graph — shared by the
/// batch and incremental paths.
pub(crate) fn interpret(
    graph: &UtkGraph,
    grounding: &Grounding,
    mut state: MapState,
    config: &TecoreConfig,
    grounding_time: Duration,
    solve_time: Duration,
) -> Resolution {
    // Detected conflicts: constraint groundings violated by the
    // "keep everything" world, with full provenance.
    let conflicts = crate::explain::explain_conflicts(grounding);
    let mut per_constraint: Vec<(String, usize)> = Vec::new();
    for c in &conflicts {
        match per_constraint.iter_mut().find(|(n, _)| *n == c.constraint) {
            Some((_, count)) => *count += 1,
            None => per_constraint.push((c.constraint.clone(), 1)),
        }
    }

    // Partition evidence by the MAP world.
    let mut removed = Vec::new();
    let consistent = graph.filtered(|id, fact| {
        let atom = grounding.fact_atoms[&id];
        let keep = state.assignment[atom.index()];
        if !keep {
            removed.push(RemovedFact { id, fact: *fact });
        }
        keep
    });

    // Confidence source for accepted derived facts: the solver's
    // own soft truth values when it has them (taken, not cloned —
    // on large groundings this vector is num_atoms wide), else the
    // configured grading mode over the grounding.
    let marginals: Option<Vec<f64>> = match (state.soft_values.take(), &config.confidence) {
        (Some(values), _) => Some(values),
        (None, ConfidenceMode::Gibbs(cfg)) => {
            let problem = SatProblem::from_grounding(grounding);
            Some(gibbs_marginals(&problem, Some(&state.assignment), cfg))
        }
        (None, ConfidenceMode::Constant) => None,
    };
    let mut inferred = Vec::new();
    // Dead atoms (retracted by deltas) keep their assignment slot but
    // are not part of the result.
    for (id, atom) in grounding.store.iter_alive() {
        if matches!(atom.kind, AtomKind::Hidden) && state.assignment[id.index()] {
            let confidence = marginals
                .as_ref()
                .map_or(1.0, |m| m[id.index()].clamp(0.0, 1.0));
            inferred.push(InferredFact {
                subject: grounding.dict.resolve(atom.subject).to_string(),
                predicate: grounding.dict.resolve(atom.predicate).to_string(),
                object: grounding.dict.resolve(atom.object).to_string(),
                interval: atom.interval,
                confidence,
            });
        }
    }
    let (inferred, thresholded) = threshold::apply(inferred, config.threshold);

    let stats = DebugStats {
        total_facts: graph.len(),
        conflicting_facts: removed.len(),
        inferred_facts: inferred.len(),
        thresholded_facts: thresholded,
        atoms: grounding.num_atoms() - grounding.store.dead_count(),
        clauses: state.active_clauses,
        // Filled in by the engine after interpretation (the solve
        // driver owns the component accounting; the engine owns the
        // fallback-reground counter).
        components: 0,
        components_solved: 0,
        fallback_regrounds: 0,
        per_constraint,
        backend: config.backend.name().to_string(),
        feasible: state.feasible,
        cost: state.cost,
        grounding_time,
        solve_time,
        plans: grounding.plans.clone(),
    };
    Resolution {
        consistent,
        removed,
        inferred,
        conflicts,
        stats,
    }
}
