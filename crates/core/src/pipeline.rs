//! The end-to-end conflict-resolution pipeline.
//!
//! The pipeline is **backend-agnostic**: it translates, asks its
//! configured [`MapSolver`](tecore_ground::MapSolver) for a
//! [`MapState`](tecore_ground::MapState), and interprets that state as
//! a repaired knowledge graph. There is deliberately no per-backend
//! dispatch anywhere in this module — what a solver can do is read off
//! its [`SolverCaps`](tecore_ground::SolverCaps), so backends added at
//! runtime through the [`crate::registry::SolverRegistry`] behave
//! exactly like the built-in ones.

use std::time::Instant;

use tecore_ground::{AtomKind, GroundConfig, SolveOpts};
use tecore_kg::UtkGraph;
use tecore_logic::LogicProgram;
use tecore_mln::marginal::{gibbs_marginals, GibbsConfig};
use tecore_mln::SatProblem;

pub use crate::backends::{Backend, SolverHandle};
use crate::error::TecoreError;
use crate::resolution::{InferredFact, RemovedFact, Resolution};
use crate::stats::DebugStats;
use crate::threshold;
use crate::translate::translate;

/// How inferred facts are graded with a confidence value.
///
/// Backends that produce per-atom soft truth values (see
/// [`SolverCaps::soft_values`](tecore_ground::SolverCaps)) always use
/// those; this mode only governs grading when the solver is discrete.
#[derive(Debug, Clone, Default)]
pub enum ConfidenceMode {
    /// Report `1.0` for every accepted derived fact (no extra cost).
    #[default]
    Constant,
    /// Estimate marginals with a Gibbs sampler over the grounding.
    Gibbs(GibbsConfig),
}

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct TecoreConfig {
    /// The reasoner. Any [`SolverHandle`] works here; [`Backend`] specs
    /// convert with `.into()`, registry entries come as-is.
    pub backend: SolverHandle,
    /// Grounding options (`ground_constraints` is overridden per
    /// backend by the translator, driven by the solver's caps).
    pub ground: GroundConfig,
    /// Confidence threshold for derived facts ("remove derived facts
    /// below that" — paper §1). `0.0` keeps everything.
    pub threshold: f64,
    /// Confidence grading for derived facts.
    pub confidence: ConfidenceMode,
}

/// The TeCoRe system: a uTKG plus rules and constraints, ready to
/// compute the most probable conflict-free KG.
#[derive(Debug, Clone)]
pub struct Tecore {
    graph: UtkGraph,
    program: LogicProgram,
    config: TecoreConfig,
}

impl Tecore {
    /// Creates a pipeline with default configuration.
    pub fn new(graph: UtkGraph, program: LogicProgram) -> Self {
        Tecore {
            graph,
            program,
            config: TecoreConfig::default(),
        }
    }

    /// Creates a pipeline with an explicit configuration.
    pub fn with_config(graph: UtkGraph, program: LogicProgram, config: TecoreConfig) -> Self {
        Tecore {
            graph,
            program,
            config,
        }
    }

    /// The input graph.
    pub fn graph(&self) -> &UtkGraph {
        &self.graph
    }

    /// The logic program.
    pub fn program(&self) -> &LogicProgram {
        &self.program
    }

    /// The configuration.
    pub fn config(&self) -> &TecoreConfig {
        &self.config
    }

    /// Runs `map(θ(G), F ∪ C)` and interprets the result.
    pub fn resolve(&self) -> Result<Resolution, TecoreError> {
        let solver = &self.config.backend;
        let grounding = translate(
            &self.graph,
            &self.program,
            &solver.caps(),
            &self.config.ground,
        )?;

        let solve_start = Instant::now();
        let mut state = solver.solve(&grounding, &SolveOpts::default())?;
        let solve_time = solve_start.elapsed();
        // Enforce the MapSolver contract on plugin backends: wrong
        // vector lengths or a caps/state mismatch must surface as the
        // documented error, not as an index panic (or silently wrong
        // confidences) further down.
        let contract_violation = if state.assignment.len() != grounding.num_atoms() {
            Some(format!(
                "returned {} assignments for {} ground atoms",
                state.assignment.len(),
                grounding.num_atoms()
            ))
        } else if state
            .soft_values
            .as_ref()
            .is_some_and(|v| v.len() != grounding.num_atoms())
        {
            Some(format!(
                "returned {} soft values for {} ground atoms",
                state.soft_values.as_ref().map_or(0, Vec::len),
                grounding.num_atoms()
            ))
        } else if solver.caps().soft_values != state.soft_values.is_some() {
            Some(format!(
                "caps declare soft_values = {} but the solve {} them",
                solver.caps().soft_values,
                if state.soft_values.is_some() {
                    "returned"
                } else {
                    "omitted"
                }
            ))
        } else {
            None
        };
        if let Some(violation) = contract_violation {
            return Err(TecoreError::Solve(tecore_ground::SolveError::Backend(
                format!("solver `{}` {violation}", solver.name()),
            )));
        }

        // Detected conflicts: constraint groundings violated by the
        // "keep everything" world, with full provenance.
        let conflicts = crate::explain::explain_conflicts(&grounding);
        let mut per_constraint: Vec<(String, usize)> = Vec::new();
        for c in &conflicts {
            match per_constraint.iter_mut().find(|(n, _)| *n == c.constraint) {
                Some((_, count)) => *count += 1,
                None => per_constraint.push((c.constraint.clone(), 1)),
            }
        }

        // Partition evidence by the MAP world.
        let mut removed = Vec::new();
        let consistent = self.graph.filtered(|id, fact| {
            let atom = grounding.fact_atoms[&id];
            let keep = state.assignment[atom.index()];
            if !keep {
                removed.push(RemovedFact { id, fact: *fact });
            }
            keep
        });

        // Confidence source for accepted derived facts: the solver's
        // own soft truth values when it has them (taken, not cloned —
        // on large groundings this vector is num_atoms wide), else the
        // configured grading mode over the grounding.
        let marginals: Option<Vec<f64>> = match (state.soft_values.take(), &self.config.confidence)
        {
            (Some(values), _) => Some(values),
            (None, ConfidenceMode::Gibbs(cfg)) => {
                let problem = SatProblem::from_grounding(&grounding);
                Some(gibbs_marginals(&problem, Some(&state.assignment), cfg))
            }
            (None, ConfidenceMode::Constant) => None,
        };
        let mut inferred = Vec::new();
        for (id, atom) in grounding.store.iter() {
            if matches!(atom.kind, AtomKind::Hidden) && state.assignment[id.index()] {
                let confidence = marginals
                    .as_ref()
                    .map_or(1.0, |m| m[id.index()].clamp(0.0, 1.0));
                inferred.push(InferredFact {
                    subject: grounding.dict.resolve(atom.subject).to_string(),
                    predicate: grounding.dict.resolve(atom.predicate).to_string(),
                    object: grounding.dict.resolve(atom.object).to_string(),
                    interval: atom.interval,
                    confidence,
                });
            }
        }
        let (inferred, thresholded) = threshold::apply(inferred, self.config.threshold);

        let stats = DebugStats {
            total_facts: self.graph.len(),
            conflicting_facts: removed.len(),
            inferred_facts: inferred.len(),
            thresholded_facts: thresholded,
            atoms: grounding.num_atoms(),
            clauses: state.active_clauses,
            per_constraint,
            backend: solver.name().to_string(),
            feasible: state.feasible,
            cost: state.cost,
            grounding_time: grounding.stats.elapsed,
            solve_time,
        };
        Ok(Resolution {
            consistent,
            removed,
            inferred,
            conflicts,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tecore_kg::parser::parse_graph;
    use tecore_mln::{CpiConfig, WalkSatConfig};

    const RANIERI: &str = "\
        (CR, coach, Chelsea, [2000,2004]) 0.9\n\
        (CR, coach, Leicester, [2015,2017]) 0.7\n\
        (CR, playsFor, Palermo, [1984,1986]) 0.5\n\
        (CR, birthDate, 1951, [1951,2017]) 1.0\n\
        (CR, coach, Napoli, [2001,2003]) 0.6\n";

    const PAPER_PROGRAM: &str = "\
        f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5\n\
        f2: quad(x, worksFor, y, t) ^ quad(y, locatedIn, z, t') ^ overlap(t, t') \
            -> quad(x, livesIn, z, t ∩ t') w = 1.6\n\
        f3: quad(x, playsFor, y, t) ^ quad(x, birthDate, z, t') ^ t - t' < 20 \
            -> quad(x, type, TeenPlayer) w = 2.9\n\
        c1: quad(x, birthDate, y, t) ^ quad(x, deathDate, z, t') -> before(t, t') w = inf\n\
        c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf\n\
        c3: quad(x, bornIn, y, t) ^ quad(x, bornIn, z, t') ^ overlap(t, t') -> y = z w = inf\n";

    fn run(backend: impl Into<SolverHandle>) -> Resolution {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend: backend.into(),
            ..TecoreConfig::default()
        };
        Tecore::with_config(graph, program, config)
            .resolve()
            .unwrap()
    }

    /// The paper's running example, Figure 7: fact (5) (Napoli) removed,
    /// facts (1)–(4) kept, on every backend.
    #[test]
    fn running_example_all_backends() {
        for backend in [
            Backend::MlnExact,
            Backend::MlnWalkSat(WalkSatConfig::default()),
            Backend::MlnCuttingPlane(CpiConfig::default()),
            Backend::default_psl(),
        ] {
            let name = backend.name();
            let r = run(backend);
            assert!(r.stats.feasible, "{name}: must be feasible");
            assert_eq!(
                r.stats.conflicting_facts, 1,
                "{name}: exactly the Napoli fact removed"
            );
            assert_eq!(r.consistent.len(), 4, "{name}");
            let removed = &r.removed[0];
            assert_eq!(
                r.consistent.dict().resolve(removed.fact.object),
                "Napoli",
                "{name}"
            );
            // f1 derives worksFor(CR, Palermo, [1984,1986]).
            assert_eq!(r.inferred.len(), 1, "{name}: {:?}", r.inferred);
            assert_eq!(r.inferred[0].predicate, "worksFor", "{name}");
            // c2 detected exactly one conflict.
            assert_eq!(
                r.stats.per_constraint,
                vec![("c2".to_string(), 1)],
                "{name}"
            );
        }
    }

    #[test]
    fn expanded_graph_contains_inferred() {
        let r = run(Backend::MlnExact);
        let expanded = r.expanded_graph();
        assert_eq!(expanded.len(), 5); // 4 kept + 1 inferred
        let works_for = expanded.dict().lookup("worksFor").unwrap();
        assert_eq!(expanded.facts_with_predicate(works_for).count(), 1);
    }

    #[test]
    fn gibbs_confidence_grades_inferred() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend: Backend::MlnExact.into(),
            confidence: ConfidenceMode::Gibbs(GibbsConfig::default()),
            ..TecoreConfig::default()
        };
        let r = Tecore::with_config(graph, program, config)
            .resolve()
            .unwrap();
        assert_eq!(r.inferred.len(), 1);
        let c = r.inferred[0].confidence;
        assert!((0.0..=1.0).contains(&c));
        // The worksFor derivation is supported by a w=2.5 rule from a
        // 0.5-confidence fact; its marginal should be clearly above 0.5.
        assert!(c > 0.5, "confidence {c}");
    }

    #[test]
    fn threshold_drops_inferred() {
        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend: Backend::MlnExact.into(),
            threshold: 2.0, // impossible bar: drops everything
            ..TecoreConfig::default()
        };
        let r = Tecore::with_config(graph, program, config)
            .resolve()
            .unwrap();
        assert_eq!(r.inferred.len(), 0);
        assert_eq!(r.stats.thresholded_facts, 1);
    }

    #[test]
    fn psl_confidences_are_soft_values() {
        let r = run(Backend::default_psl());
        assert_eq!(r.inferred.len(), 1);
        let c = r.inferred[0].confidence;
        assert!((0.0..=1.0).contains(&c));
        assert!(
            c > 0.5,
            "supported derivation should have high value, got {c}"
        );
    }

    #[test]
    fn conflict_free_graph_untouched() {
        let graph = parse_graph(
            "(CR, coach, Chelsea, [2000,2004]) 0.9\n\
             (CR, coach, Leicester, [2015,2017]) 0.7\n",
        )
        .unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let r = Tecore::new(graph, program).resolve().unwrap();
        assert_eq!(r.stats.conflicting_facts, 0);
        assert_eq!(r.consistent.len(), 2);
        assert!(r.stats.per_constraint.is_empty());
    }

    /// A backend outside the [`Backend`] enum drops straight into the
    /// config — the acceptance test for the open solver seam.
    #[test]
    fn external_solver_plugs_in() {
        use tecore_ground::{Grounding, MapSolver, MapState, SolveError, SolverCaps};

        /// Trivial "solver": keeps every atom (never repairs anything).
        #[derive(Debug)]
        struct KeepAll;

        impl MapSolver for KeepAll {
            fn name(&self) -> &str {
                "keep-all"
            }
            fn caps(&self) -> SolverCaps {
                SolverCaps::mln()
            }
            fn solve(
                &self,
                grounding: &Grounding,
                _opts: &SolveOpts,
            ) -> Result<MapState, SolveError> {
                let (cost, hard) = tecore_ground::evaluate_world(
                    &grounding.clauses,
                    &vec![true; grounding.num_atoms()],
                );
                Ok(MapState {
                    assignment: vec![true; grounding.num_atoms()],
                    cost,
                    feasible: hard == 0,
                    active_clauses: grounding.clauses.len(),
                    soft_values: None,
                })
            }
        }

        let r = run(SolverHandle::new(KeepAll));
        // Keeping everything keeps the Napoli clash: infeasible, nothing
        // removed, and the stats carry the external backend's name.
        assert!(!r.stats.feasible);
        assert_eq!(r.stats.conflicting_facts, 0);
        assert_eq!(r.stats.backend, "keep-all");
    }

    /// A plugin that violates the assignment-length contract must fail
    /// with the documented solver error, not an index panic.
    #[test]
    fn short_assignment_is_a_solve_error() {
        use tecore_ground::{Grounding, MapSolver, MapState, SolveError, SolverCaps};

        #[derive(Debug)]
        struct Truncated;

        impl MapSolver for Truncated {
            fn name(&self) -> &str {
                "truncated"
            }
            fn caps(&self) -> SolverCaps {
                SolverCaps::mln()
            }
            fn solve(
                &self,
                _grounding: &Grounding,
                _opts: &SolveOpts,
            ) -> Result<MapState, SolveError> {
                Ok(MapState {
                    assignment: vec![true], // wrong length
                    cost: 0.0,
                    feasible: true,
                    active_clauses: 0,
                    soft_values: None,
                })
            }
        }

        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend: SolverHandle::new(Truncated),
            ..TecoreConfig::default()
        };
        let err = Tecore::with_config(graph, program, config)
            .resolve()
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("solver error"), "{message}");
        assert!(message.contains("truncated"), "{message}");
        assert!(message.contains("1 assignments"), "{message}");
    }

    /// Declared caps and the returned state must agree on soft values.
    #[test]
    fn caps_state_mismatch_is_a_solve_error() {
        use tecore_ground::{Grounding, MapSolver, MapState, SolveError, SolverCaps};

        /// Claims to be discrete but returns soft values.
        #[derive(Debug)]
        struct TwoFaced;

        impl MapSolver for TwoFaced {
            fn name(&self) -> &str {
                "two-faced"
            }
            fn caps(&self) -> SolverCaps {
                SolverCaps::mln() // soft_values: false
            }
            fn solve(
                &self,
                grounding: &Grounding,
                _opts: &SolveOpts,
            ) -> Result<MapState, SolveError> {
                let n = grounding.num_atoms();
                Ok(MapState {
                    assignment: vec![true; n],
                    cost: 0.0,
                    feasible: true,
                    active_clauses: 0,
                    soft_values: Some(vec![0.5; n]),
                })
            }
        }

        let graph = parse_graph(RANIERI).unwrap();
        let program = LogicProgram::parse(PAPER_PROGRAM).unwrap();
        let config = TecoreConfig {
            backend: SolverHandle::new(TwoFaced),
            ..TecoreConfig::default()
        };
        let err = Tecore::with_config(graph, program, config)
            .resolve()
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("two-faced"), "{message}");
        assert!(message.contains("soft_values = false"), "{message}");
    }
}
