//! Thresholding of derived facts.
//!
//! "TeCoRe allows to set a threshold value and remove derived facts
//! below that" (paper §1). The threshold applies to *derived* facts
//! only — evidence facts are governed by MAP inference itself.

use crate::resolution::InferredFact;

/// Retains inferred facts with `confidence >= threshold`; returns the
/// kept facts and the number dropped.
pub fn apply(inferred: Vec<InferredFact>, threshold: f64) -> (Vec<InferredFact>, usize) {
    if threshold <= 0.0 {
        return (inferred, 0);
    }
    let before = inferred.len();
    let kept: Vec<InferredFact> = inferred
        .into_iter()
        .filter(|f| f.confidence >= threshold)
        .collect();
    let dropped = before - kept.len();
    (kept, dropped)
}

/// Sweeps a set of thresholds and reports `(threshold, kept)` pairs —
/// the curve behind experiment E5.
pub fn sweep(inferred: &[InferredFact], thresholds: &[f64]) -> Vec<(f64, usize)> {
    thresholds
        .iter()
        .map(|&t| {
            let kept = inferred.iter().filter(|f| f.confidence >= t).count();
            (t, kept)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tecore_temporal::Interval;

    fn fact(conf: f64) -> InferredFact {
        InferredFact {
            subject: "s".into(),
            predicate: "p".into(),
            object: "o".into(),
            interval: Interval::new(1, 2).unwrap(),
            confidence: conf,
        }
    }

    #[test]
    fn zero_threshold_keeps_all() {
        let (kept, dropped) = apply(vec![fact(0.1), fact(0.9)], 0.0);
        assert_eq!(kept.len(), 2);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn filters_below() {
        let (kept, dropped) = apply(vec![fact(0.1), fact(0.5), fact(0.9)], 0.5);
        assert_eq!(kept.len(), 2); // 0.5 inclusive
        assert_eq!(dropped, 1);
    }

    #[test]
    fn sweep_monotone_decreasing() {
        let facts = vec![fact(0.2), fact(0.4), fact(0.6), fact(0.8)];
        let curve = sweep(&facts, &[0.0, 0.3, 0.5, 0.7, 0.9]);
        assert_eq!(
            curve,
            vec![(0.0, 4), (0.3, 3), (0.5, 2), (0.7, 1), (0.9, 0)]
        );
        for w in curve.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
