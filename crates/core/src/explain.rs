//! Conflict explanations: *why* was a fact flagged?
//!
//! The demo lets the audience browse "consistent and conflicting
//! statements" (Figure 8). A bare list of removed facts is hard to act
//! on, so TeCoRe attaches provenance: for every detected conflict, the
//! constraint that fired and the complete set of facts in the violated
//! grounding. Rendered, the running example's conflict reads:
//!
//! ```text
//! constraint c2 violated by:
//!   (CR, coach, Chelsea, [2000,2004]) 0.9
//!   (CR, coach, Napoli, [2001,2003]) 0.6
//! ```

use tecore_ground::violation::violated_clauses;
use tecore_ground::{AtomKind, ClauseOrigin, Grounding, Lit};

/// One violated constraint grounding, rendered for display.
#[derive(Debug, Clone, PartialEq)]
pub struct ConflictExplanation {
    /// Name of the violated constraint (`c2`, or `formula#i` if
    /// unnamed).
    pub constraint: String,
    /// The facts participating in the violation, in the paper's
    /// notation.
    pub participants: Vec<String>,
}

impl std::fmt::Display for ConflictExplanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "constraint {} violated by:", self.constraint)?;
        for p in &self.participants {
            writeln!(f, "  {p}")?;
        }
        Ok(())
    }
}

/// Enumerates every constraint grounding violated by the *input* KG
/// (the "keep everything" world) — these are the conflicts TeCoRe
/// resolves, independent of which side MAP inference later removes.
///
/// Under an eagerly grounded backend this is a read off the clause
/// arena: a constraint grounding violated by keep-everything is exactly
/// a live `Formula`-origin clause with no positive literal (rule
/// clauses carry their positive head, which is alive and hence
/// satisfied). The incremental path calls this per resolve, so the
/// O(clauses) scan replacing the full match search matters. Lazily
/// grounded backends (cutting-plane) keep the search — their arena
/// deliberately lacks the constraint clauses.
pub fn explain_conflicts(grounding: &Grounding) -> Vec<ConflictExplanation> {
    if grounding.constraints_grounded_eagerly() {
        let mut hits: Vec<(usize, &[Lit])> = grounding
            .clauses
            .iter()
            .filter_map(|c| match c.origin {
                ClauseOrigin::Formula(idx) if c.lits.iter().all(|l| !l.positive) => {
                    Some((idx, c.lits))
                }
                _ => None,
            })
            .collect();
        // Same presentation order as the search path: by formula, then
        // by literals. (The arena is already duplicate-free.)
        hits.sort_unstable();
        return hits
            .into_iter()
            .map(|(idx, lits)| explanation(grounding, idx, lits))
            .collect();
    }
    // "Keep everything" means every *live* atom; atoms retracted by
    // incremental deltas keep their slot but are not part of the KG.
    let all_true: Vec<bool> = (0..grounding.num_atoms())
        .map(|i| grounding.store.is_alive(tecore_ground::AtomId(i as u32)))
        .collect();
    let mut out = Vec::new();
    for clause in violated_clauses(&grounding.store, &grounding.program, &all_true) {
        let ClauseOrigin::Formula(idx) = clause.origin else {
            continue;
        };
        out.push(explanation(grounding, idx, &clause.lits));
    }
    out
}

/// Renders one violated constraint grounding.
fn explanation(grounding: &Grounding, idx: usize, lits: &[Lit]) -> ConflictExplanation {
    let constraint = grounding.program.formulas[idx]
        .name
        .clone()
        .unwrap_or_else(|| format!("formula#{idx}"));
    let participants: Vec<String> = lits
        .iter()
        .filter(|l| !l.positive)
        .map(|l| {
            let atom = grounding.store.atom(l.atom);
            let conf = match &atom.kind {
                AtomKind::Evidence { log_odds, .. } => {
                    // Invert the log-odds mapping for display.
                    let p = 1.0 / (1.0 + (-log_odds).exp());
                    format!(" {p:.2}")
                }
                AtomKind::Hidden => " (derived)".to_string(),
            };
            format!(
                "({}, {}, {}, {}){}",
                grounding.dict.resolve(atom.subject),
                grounding.dict.resolve(atom.predicate),
                grounding.dict.resolve(atom.object),
                atom.interval,
                conf
            )
        })
        .collect();
    ConflictExplanation {
        constraint,
        participants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tecore_ground::{ground, GroundConfig};
    use tecore_kg::parser::parse_graph;
    use tecore_logic::LogicProgram;

    fn grounding() -> Grounding {
        let graph = parse_graph(
            "(CR, coach, Chelsea, [2000,2004]) 0.9\n\
             (CR, coach, Leicester, [2015,2017]) 0.7\n\
             (CR, coach, Napoli, [2001,2003]) 0.6\n",
        )
        .unwrap();
        let program = LogicProgram::parse(
            "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf",
        )
        .unwrap();
        ground(&graph, &program, &GroundConfig::default()).unwrap()
    }

    #[test]
    fn explains_the_chelsea_napoli_clash() {
        let explanations = explain_conflicts(&grounding());
        assert_eq!(explanations.len(), 1);
        let e = &explanations[0];
        assert_eq!(e.constraint, "c2");
        assert_eq!(e.participants.len(), 2);
        let text = e.to_string();
        assert!(text.contains("Chelsea"), "{text}");
        assert!(text.contains("Napoli"), "{text}");
        assert!(!text.contains("Leicester"), "{text}");
        // Confidence round-trips through the log-odds display mapping.
        assert!(text.contains("0.90") || text.contains("0.9"), "{text}");
    }

    #[test]
    fn conflict_free_graph_has_no_explanations() {
        let graph = parse_graph("(CR, coach, Chelsea, [2000,2004]) 0.9\n").unwrap();
        let program = LogicProgram::parse(
            "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf",
        )
        .unwrap();
        let g = ground(&graph, &program, &GroundConfig::default()).unwrap();
        assert!(explain_conflicts(&g).is_empty());
    }
}
