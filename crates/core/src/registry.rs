//! The **solver registry**: name → [`SolverHandle`] resolution.
//!
//! The registry is how backends stay *open for extension* (the
//! follow-up-work motivation: PaTeCon-style mined constraint substrates,
//! streaming workloads, sharded solvers, ... keep arriving): a new
//! backend implements `tecore_ground::MapSolver`, registers under its
//! name, and is immediately selectable by
//! [`crate::session::Session::set_backend`] and the bench harness —
//! no change to `pipeline.rs` or to this crate's enums required.
//!
//! Every [`crate::session::Session`] owns a registry pre-populated with
//! the four seed substrates (`mln-exact`, `mln-walksat`, `mln-cpi`,
//! `psl-admm`) under their default configurations; re-registering a
//! name replaces the entry (e.g. to install a differently-tuned
//! `mln-walksat`).

use std::collections::BTreeMap;

use crate::backends::{Backend, SolverHandle};
use crate::error::TecoreError;

/// A name-indexed collection of MAP solver backends.
#[derive(Debug, Clone)]
pub struct SolverRegistry {
    entries: BTreeMap<String, SolverHandle>,
}

impl Default for SolverRegistry {
    /// The four seed substrates — so a default [`crate::Session`] can
    /// immediately select any of them by name.
    fn default() -> Self {
        SolverRegistry::with_default_backends()
    }
}

impl SolverRegistry {
    /// A registry with no backends.
    pub fn empty() -> Self {
        SolverRegistry {
            entries: BTreeMap::new(),
        }
    }

    /// A registry holding the four seed substrates under default
    /// configuration.
    pub fn with_default_backends() -> Self {
        let mut registry = SolverRegistry::empty();
        registry.register(Backend::MlnExact);
        registry.register(Backend::MlnWalkSat(Default::default()));
        registry.register(Backend::MlnCuttingPlane(Default::default()));
        registry.register(Backend::default_psl());
        registry
    }

    /// Registers a backend under [`tecore_ground::MapSolver::name`];
    /// returns the handle it replaced, if any.
    pub fn register(&mut self, solver: impl Into<SolverHandle>) -> Option<SolverHandle> {
        let handle = solver.into();
        self.entries.insert(handle.name().to_string(), handle)
    }

    /// Looks up a backend by name.
    pub fn get(&self, name: &str) -> Option<&SolverHandle> {
        self.entries.get(name)
    }

    /// Resolves a backend by name, with a did-you-mean error listing
    /// the registered names.
    pub fn resolve(&self, name: &str) -> Result<SolverHandle, TecoreError> {
        self.get(name).cloned().ok_or_else(|| {
            TecoreError::Session(format!(
                "unknown backend `{name}` (registered: {})",
                self.names().collect::<Vec<_>>().join(", ")
            ))
        })
    }

    /// Registered backend names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Number of registered backends.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Anything [`crate::session::Session::set_backend`] accepts: a
/// registered name, a [`Backend`] spec, or a ready [`SolverHandle`].
pub trait BackendSelector {
    /// Produces the solver this selector describes, resolving names
    /// against `registry`.
    fn select(self, registry: &SolverRegistry) -> Result<SolverHandle, TecoreError>;
}

impl BackendSelector for &str {
    fn select(self, registry: &SolverRegistry) -> Result<SolverHandle, TecoreError> {
        registry.resolve(self)
    }
}

impl BackendSelector for String {
    fn select(self, registry: &SolverRegistry) -> Result<SolverHandle, TecoreError> {
        registry.resolve(&self)
    }
}

impl BackendSelector for Backend {
    fn select(self, _registry: &SolverRegistry) -> Result<SolverHandle, TecoreError> {
        Ok(self.into())
    }
}

impl BackendSelector for SolverHandle {
    fn select(self, _registry: &SolverRegistry) -> Result<SolverHandle, TecoreError> {
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_backends_present() {
        let registry = SolverRegistry::with_default_backends();
        let names: Vec<&str> = registry.names().collect();
        assert_eq!(
            names,
            vec!["mln-cpi", "mln-exact", "mln-walksat", "psl-admm"]
        );
        assert_eq!(registry.len(), 4);
        assert!(!registry.is_empty());
    }

    #[test]
    fn resolve_known_and_unknown() {
        let registry = SolverRegistry::with_default_backends();
        assert_eq!(registry.resolve("psl-admm").unwrap().name(), "psl-admm");
        let err = registry.resolve("nope").unwrap_err();
        let message = err.to_string();
        assert!(message.contains("unknown backend `nope`"), "{message}");
        assert!(message.contains("mln-exact"), "{message}");
    }

    #[test]
    fn register_replaces_by_name() {
        let mut registry = SolverRegistry::with_default_backends();
        let replaced = registry.register(Backend::MlnExact);
        assert!(replaced.is_some());
        assert_eq!(registry.len(), 4);
    }

    #[test]
    fn selector_forms() {
        let registry = SolverRegistry::with_default_backends();
        assert_eq!("mln-exact".select(&registry).unwrap().name(), "mln-exact");
        assert_eq!(
            String::from("mln-cpi").select(&registry).unwrap().name(),
            "mln-cpi"
        );
        assert_eq!(
            Backend::default_psl().select(&registry).unwrap().name(),
            "psl-admm"
        );
        let handle = SolverHandle::default();
        assert_eq!(
            handle.clone().select(&registry).unwrap().name(),
            handle.name()
        );
    }

    #[test]
    fn empty_registry_errors_helpfully() {
        let registry = SolverRegistry::empty();
        let err = registry.resolve("mln-exact").unwrap_err();
        assert!(err.to_string().contains("unknown backend"));
    }
}
