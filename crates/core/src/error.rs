//! TeCoRe pipeline errors.

use std::fmt;

use tecore_ground::SolveError;
use tecore_kg::KgError;
use tecore_logic::LogicError;
use tecore_wal::WalError;

/// Errors of the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TecoreError {
    /// Rule/constraint language error (parse or validation).
    Logic(LogicError),
    /// Graph/data error.
    Kg(KgError),
    /// A MAP backend failed (see `tecore_ground::SolveError`).
    Solve(SolveError),
    /// A session-level misuse (unknown dataset, no program, unknown
    /// backend name, ...).
    Session(String),
    /// The durability layer failed (see `tecore_wal::WalError`). The
    /// in-memory engine is still consistent, but edits were refused.
    Wal(WalError),
}

impl fmt::Display for TecoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TecoreError::Logic(e) => write!(f, "logic error: {e}"),
            TecoreError::Kg(e) => write!(f, "knowledge-graph error: {e}"),
            TecoreError::Solve(e) => write!(f, "solver error: {e}"),
            TecoreError::Session(msg) => write!(f, "session error: {msg}"),
            TecoreError::Wal(e) => write!(f, "wal error: {e}"),
        }
    }
}

impl std::error::Error for TecoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TecoreError::Logic(e) => Some(e),
            TecoreError::Kg(e) => Some(e),
            TecoreError::Solve(e) => Some(e),
            TecoreError::Session(_) => None,
            TecoreError::Wal(e) => Some(e),
        }
    }
}

impl From<LogicError> for TecoreError {
    fn from(e: LogicError) -> Self {
        TecoreError::Logic(e)
    }
}

impl From<KgError> for TecoreError {
    fn from(e: KgError) -> Self {
        TecoreError::Kg(e)
    }
}

impl From<SolveError> for TecoreError {
    fn from(e: SolveError) -> Self {
        TecoreError::Solve(e)
    }
}

impl From<WalError> for TecoreError {
    fn from(e: WalError) -> Self {
        TecoreError::Wal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        use std::error::Error;
        let e: TecoreError = LogicError::Validation {
            formula: Some("c1".into()),
            message: "bad".into(),
        }
        .into();
        assert!(e.to_string().contains("logic error"));
        assert!(e.source().is_some());

        let e: TecoreError = KgError::InvalidConfidence(2.0).into();
        assert!(e.to_string().contains("knowledge-graph"));

        let e = TecoreError::Session("no dataset selected".into());
        assert!(e.to_string().contains("no dataset"));
        assert!(e.source().is_none());
    }
}
