//! The TeCoRe translator θ.
//!
//! "The translator parses data, inference rules, and temporal
//! constraints, and transforms those into the specific syntax of the
//! chosen solver. Special care is taken to verify that the input adheres
//! to the expressivity of the solver." (paper §2.1)
//!
//! Concretely: validate every formula against the backend's declared
//! [`SolverCaps`], then ground (`tecore-ground`). A backend that
//! grounds constraint violations lazily (`caps.lazy_grounding`, e.g.
//! cutting-plane inference) gets its constraint grounding deferred;
//! everything else grounds eagerly. The translator never inspects
//! *which* backend it serves — only what the backend declared it can
//! do — so new backends steer translation purely through their caps.

use tecore_ground::{ground, GroundConfig, Grounding, SolverCaps};
use tecore_kg::UtkGraph;
use tecore_logic::validate::check_expressivity;
use tecore_logic::LogicProgram;

use crate::error::TecoreError;

/// Translates a (graph, program) pair for a backend with `caps`.
pub fn translate(
    graph: &UtkGraph,
    program: &LogicProgram,
    caps: &SolverCaps,
    base: &GroundConfig,
) -> Result<Grounding, TecoreError> {
    for f in program.formulas() {
        check_expressivity(f, caps.expressivity)?;
    }
    let mut config = base.clone();
    config.ground_constraints = !caps.lazy_grounding;
    Ok(ground(graph, program, &config)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tecore_kg::parser::parse_graph;

    #[test]
    fn psl_expressivity_enforced() {
        let graph = parse_graph("(a, rel, b, [1,2]) 0.9\n").unwrap();
        // Numeric consequent: fine for MLN, rejected for PSL.
        let program = LogicProgram::parse("quad(x, rel, y, t) -> t - t < 1").unwrap();
        assert!(translate(
            &graph,
            &program,
            &SolverCaps::mln(),
            &GroundConfig::default()
        )
        .is_ok());
        let err = translate(
            &graph,
            &program,
            &SolverCaps::psl(),
            &GroundConfig::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("PSL"));
    }

    #[test]
    fn lazy_caps_defer_constraints() {
        let graph = parse_graph("(a, coach, b, [1,5]) 0.9\n(a, coach, c, [2,4]) 0.5\n").unwrap();
        let program = LogicProgram::parse(
            "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf",
        )
        .unwrap();
        let eager = translate(
            &graph,
            &program,
            &SolverCaps::mln(),
            &GroundConfig::default(),
        )
        .unwrap();
        let lazy_caps = SolverCaps {
            lazy_grounding: true,
            ..SolverCaps::mln()
        };
        let lazy = translate(&graph, &program, &lazy_caps, &GroundConfig::default()).unwrap();
        assert_eq!(eager.stats.formula_clauses, 1);
        assert_eq!(lazy.stats.formula_clauses, 0);
    }
}
