//! The TeCoRe translator θ.
//!
//! "The translator parses data, inference rules, and temporal
//! constraints, and transforms those into the specific syntax of the
//! chosen solver. Special care is taken to verify that the input adheres
//! to the expressivity of the solver." (paper §2.1)
//!
//! Concretely: validate every formula against the backend's
//! expressivity, then ground (`tecore-ground`). The MLN backend with
//! cutting-plane inference defers constraint grounding; everything else
//! grounds eagerly.

use tecore_ground::{ground, GroundConfig, Grounding};
use tecore_kg::UtkGraph;
use tecore_logic::validate::{check_expressivity, Expressivity};
use tecore_logic::LogicProgram;

use crate::error::TecoreError;
use crate::pipeline::Backend;

/// Translates a (graph, program) pair for the given backend.
pub fn translate(
    graph: &UtkGraph,
    program: &LogicProgram,
    backend: &Backend,
    base: &GroundConfig,
) -> Result<Grounding, TecoreError> {
    let expressivity = match backend {
        Backend::PslAdmm { .. } => Expressivity::Psl,
        _ => Expressivity::Mln,
    };
    for f in program.formulas() {
        check_expressivity(f, expressivity)?;
    }
    let mut config = base.clone();
    config.ground_constraints = !matches!(backend, Backend::MlnCuttingPlane(_));
    Ok(ground(graph, program, &config)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Backend;
    use tecore_kg::parser::parse_graph;

    #[test]
    fn psl_expressivity_enforced() {
        let graph = parse_graph("(a, rel, b, [1,2]) 0.9\n").unwrap();
        // Numeric consequent: fine for MLN, rejected for PSL.
        let program = LogicProgram::parse("quad(x, rel, y, t) -> t - t < 1").unwrap();
        assert!(translate(&graph, &program, &Backend::MlnExact, &GroundConfig::default()).is_ok());
        let err = translate(
            &graph,
            &program,
            &Backend::default_psl(),
            &GroundConfig::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("PSL"));
    }

    #[test]
    fn cpi_defers_constraints() {
        let graph = parse_graph(
            "(a, coach, b, [1,5]) 0.9\n(a, coach, c, [2,4]) 0.5\n",
        )
        .unwrap();
        let program = LogicProgram::parse(
            "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf",
        )
        .unwrap();
        let eager = translate(&graph, &program, &Backend::MlnExact, &GroundConfig::default())
            .unwrap();
        let lazy = translate(
            &graph,
            &program,
            &Backend::MlnCuttingPlane(Default::default()),
            &GroundConfig::default(),
        )
        .unwrap();
        assert_eq!(eager.stats.formula_clauses, 1);
        assert_eq!(lazy.stats.formula_clauses, 0);
    }
}
