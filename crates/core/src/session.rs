//! Headless session: the demo's Web-UI flow as a library API.
//!
//! The paper's demonstration walks through: select a uTKG → pick/edit
//! inference rules and constraints (with predicate auto-completion,
//! Figure 5) → run a reasoner → browse the consistent and conflicting
//! statements and the statistics screen (Figure 8). [`Session`] models
//! exactly that flow; `examples/constraint_editor.rs` drives it from a
//! CLI.

use tecore_kg::{FactId, GraphStats, TemporalFact, UtkGraph};
use tecore_logic::pretty::format_formula;
use tecore_logic::suggest::{CompletionEngine, Suggestion};
use tecore_logic::validate::check_formula;
use tecore_logic::LogicProgram;
use tecore_temporal::Interval;

use std::sync::Arc;

use crate::batch::{self, ApplyReport, EditBatch, EditOutcome};
use crate::engine::Engine;
use crate::error::TecoreError;
use crate::pipeline::TecoreConfig;
use crate::registry::{BackendSelector, SolverRegistry};
use crate::snapshot::Snapshot;

/// An interactive TeCoRe session — a thin compatibility wrapper over
/// the [`Engine`] → [`Snapshot`] API that adds dataset bookkeeping and
/// the editor conveniences (completion, validation, registry). Both
/// [`Session::run`] and [`Session::resolve_incremental`] return
/// `Arc<Snapshot>`, which dereferences to
/// [`Resolution`](crate::Resolution) so existing result-consuming code
/// migrates mechanically.
///
/// Each session owns a [`SolverRegistry`] pre-loaded with the four seed
/// substrates, so backends are selectable **by name** —
/// `session.set_backend("psl-admm")` — as well as by [`Backend`]
/// spec or ready-made solver handle; custom backends become selectable
/// after [`Session::register_backend`].
///
/// [`Backend`]: crate::backends::Backend
#[derive(Debug, Default)]
pub struct Session {
    datasets: Vec<(String, UtkGraph)>,
    selected: Option<usize>,
    program: LogicProgram,
    config: TecoreConfig,
    registry: SolverRegistry,
    /// The incremental engine for the selected dataset, if one has been
    /// primed by [`Session::resolve_incremental`]. Its graph is a clone
    /// of the dataset kept in lock-step by
    /// [`Session::insert_fact`]/[`Session::remove_fact`] (identical
    /// operation order ⇒ identical fact ids); program/backend edits
    /// invalidate it.
    engine: Option<(usize, Engine)>,
}

impl Session {
    /// Creates an empty session.
    pub fn new() -> Self {
        Session::default()
    }

    /// Registers a dataset under a display name.
    pub fn add_dataset(&mut self, name: impl Into<String>, graph: UtkGraph) {
        self.datasets.push((name.into(), graph));
        if self.selected.is_none() {
            self.selected = Some(self.datasets.len() - 1);
        }
    }

    /// Registers a dataset recovered from a write-ahead-log directory
    /// (latest checkpoint plus replayed tail — see `tecore_wal`) and
    /// returns the recovered epoch. The session itself stays
    /// in-memory; pair with [`Engine::open_durable`] when edits must
    /// keep journaling.
    pub fn open_durable(
        &mut self,
        name: impl Into<String>,
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<u64, TecoreError> {
        let (_wal, graph) = tecore_wal::Wal::open(dir, tecore_wal::WalConfig::default())?;
        let epoch = graph.epoch();
        self.add_dataset(name, graph);
        Ok(epoch)
    }

    /// Lists registered dataset names.
    pub fn dataset_names(&self) -> Vec<&str> {
        self.datasets.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Selects a dataset by name.
    pub fn select(&mut self, name: &str) -> Result<(), TecoreError> {
        match self.datasets.iter().position(|(n, _)| n == name) {
            Some(i) => {
                if self.selected != Some(i) {
                    self.engine = None;
                }
                self.selected = Some(i);
                Ok(())
            }
            None => Err(TecoreError::Session(format!("unknown dataset `{name}`"))),
        }
    }

    /// Index of the selected dataset.
    fn selected_index(&self) -> Result<usize, TecoreError> {
        self.selected
            .filter(|&i| i < self.datasets.len())
            .ok_or_else(|| TecoreError::Session("no dataset selected".into()))
    }

    /// The currently selected graph.
    pub fn graph(&self) -> Result<&UtkGraph, TecoreError> {
        self.selected
            .and_then(|i| self.datasets.get(i))
            .map(|(_, g)| g)
            .ok_or_else(|| TecoreError::Session("no dataset selected".into()))
    }

    /// Statistics of the selected graph.
    pub fn graph_stats(&self) -> Result<GraphStats, TecoreError> {
        Ok(GraphStats::compute(self.graph()?))
    }

    /// The auto-completion engine for the selected graph (predicates +
    /// Allen relations + language keywords).
    pub fn completion(&self) -> Result<CompletionEngine, TecoreError> {
        let graph = self.graph()?;
        let preds = graph
            .predicates()
            .into_iter()
            .map(|p| graph.dict().resolve(p).to_string());
        Ok(CompletionEngine::with_predicates(preds))
    }

    /// Completion shortcut: ranked suggestion list for a partial token.
    pub fn complete(&self, partial: &str, limit: usize) -> Result<Vec<Suggestion>, TecoreError> {
        Ok(self.completion()?.complete(partial, limit))
    }

    /// Parses, validates and adds one rule/constraint; returns its
    /// pretty-printed canonical form (what the editor displays).
    pub fn add_formula(&mut self, source: &str) -> Result<String, TecoreError> {
        let formula = tecore_logic::parser::parse_formula(source)?;
        check_formula(&formula)?;
        let rendered = format_formula(&formula);
        self.program.push(formula);
        self.engine = None; // program changed: cached grounding is stale
        Ok(rendered)
    }

    /// Adds a whole program text (multiple statements).
    pub fn add_program(&mut self, source: &str) -> Result<usize, TecoreError> {
        let program = LogicProgram::parse(source)?;
        program.validate()?;
        let added = program.len();
        self.program.extend(program);
        self.engine = None;
        Ok(added)
    }

    /// Removes a formula by name; `true` if something was removed.
    pub fn remove_formula(&mut self, name: &str) -> bool {
        let before = self.program.len();
        self.program = self
            .program
            .formulas()
            .iter()
            .filter(|f| f.name.as_deref() != Some(name))
            .cloned()
            .collect();
        if self.program.len() < before {
            self.engine = None;
            true
        } else {
            false
        }
    }

    /// The current program.
    pub fn program(&self) -> &LogicProgram {
        &self.program
    }

    /// Clears all rules and constraints.
    pub fn clear_program(&mut self) {
        self.program = LogicProgram::new();
        self.engine = None;
    }

    /// Sets the reasoner: by registered name (`"mln-cpi"`,
    /// `"psl-admm"`, ...), by [`Backend`](crate::backends::Backend)
    /// spec, or by [`SolverHandle`](crate::backends::SolverHandle).
    pub fn set_backend(&mut self, backend: impl BackendSelector) -> Result<(), TecoreError> {
        self.config.backend = backend.select(&self.registry)?;
        self.engine = None; // different solver: grounding caps may differ
        Ok(())
    }

    /// Registers a custom backend; it becomes selectable by its
    /// [`MapSolver::name`](tecore_ground::MapSolver::name).
    pub fn register_backend(
        &mut self,
        solver: impl Into<crate::backends::SolverHandle>,
    ) -> &mut Self {
        self.registry.register(solver);
        self
    }

    /// Names of the backends selectable in this session.
    pub fn backend_names(&self) -> Vec<&str> {
        self.registry.names().collect()
    }

    /// The session's solver registry.
    pub fn registry(&self) -> &SolverRegistry {
        &self.registry
    }

    /// Mutable access to the solver registry.
    pub fn registry_mut(&mut self) -> &mut SolverRegistry {
        &mut self.registry
    }

    /// Sets the conflict-component treatment for the solve step (see
    /// [`ComponentMode`](tecore_ground::ComponentMode)). The mode only
    /// affects solve dispatch, never the grounding, so a primed
    /// incremental engine survives (its config is updated in place).
    pub fn set_component_mode(&mut self, mode: tecore_ground::ComponentMode) {
        self.config.component_mode = mode;
        if let Some((_, engine)) = &mut self.engine {
            engine.set_component_mode(mode);
        }
    }

    /// Sets the derived-fact confidence threshold. Thresholding only
    /// affects result interpretation, so a primed incremental engine
    /// survives (its config is updated in place).
    pub fn set_threshold(&mut self, threshold: f64) {
        self.config.threshold = threshold;
        if let Some((_, engine)) = &mut self.engine {
            engine.set_threshold(threshold);
        }
    }

    /// Sets the grounding join planner (cost-based vs syntactic). The
    /// chosen plans are baked into the materialised grounding, so a
    /// primed incremental engine re-grounds cold on its next resolve
    /// (the engine survives, only its grounding cache drops).
    pub fn set_planner(&mut self, planner: tecore_ground::JoinPlanner) {
        self.config.ground.planner = planner;
        if let Some((_, engine)) = &mut self.engine {
            engine.set_planner(planner);
        }
    }

    /// Mutable access to the full configuration. Conservatively drops
    /// the incremental engine: the caller may change grounding options.
    pub fn config_mut(&mut self) -> &mut TecoreConfig {
        self.engine = None;
        &mut self.config
    }

    /// Runs conflict resolution on the selected dataset (batch path:
    /// translates, grounds and solves from scratch) and returns the
    /// resolved [`Snapshot`].
    ///
    /// The snapshot dereferences to [`Resolution`](crate::Resolution),
    /// so pre-snapshot code reading `run()?.stats` / `.consistent` /
    /// `.removed` keeps compiling unchanged.
    pub fn run(&self) -> Result<Arc<Snapshot>, TecoreError> {
        let graph = self.graph()?.clone();
        self.require_program()?;
        Engine::with_config(graph, self.program.clone(), self.config.clone()).resolve()
    }

    /// The most recent snapshot produced by
    /// [`Session::resolve_incremental`] on the selected dataset, if the
    /// incremental engine is primed.
    pub fn snapshot(&self) -> Option<Arc<Snapshot>> {
        match (&self.engine, self.selected) {
            (Some((engine_idx, engine)), Some(idx)) if *engine_idx == idx => engine.latest(),
            _ => None,
        }
    }

    fn require_program(&self) -> Result<(), TecoreError> {
        if self.program.is_empty() {
            return Err(TecoreError::Session(
                "no rules or constraints registered".into(),
            ));
        }
        Ok(())
    }

    /// Applies an [`EditBatch`] to the selected dataset, mirroring it
    /// into the primed incremental engine (if any), so the next
    /// [`Session::resolve_incremental`] re-solves in time proportional
    /// to the batch — one netted delta, one warm-started solve.
    ///
    /// Errors only when no dataset is selected; per-op results
    /// (including semantic rejections) are in the returned
    /// [`ApplyReport`].
    pub fn apply(&mut self, edits: &EditBatch) -> Result<ApplyReport, TecoreError> {
        let idx = self.selected_index()?;
        let report = batch::apply_to_graph(&mut self.datasets[idx].1, edits);
        if let Some((engine_idx, engine)) = &mut self.engine {
            if *engine_idx == idx {
                let mirrored = engine.apply(edits);
                let lockstep = report.outcomes.len() == mirrored.outcomes.len()
                    && report
                        .outcomes
                        .iter()
                        .zip(&mirrored.outcomes)
                        .all(|(a, b)| outcomes_in_lockstep(a, b));
                if !lockstep {
                    // The engine's copy drifted from the dataset (a
                    // mutation path that bypassed the mirroring). Drop
                    // it: the next resolve_incremental re-primes from
                    // the dataset instead of serving stale results.
                    debug_assert!(lockstep, "engine graph in lock-step with dataset");
                    self.engine = None;
                }
            }
        }
        Ok(report)
    }

    /// Inserts a fact into the selected dataset. The edit is mirrored
    /// into the primed incremental engine (if any), so the next
    /// [`Session::resolve_incremental`] re-solves in time proportional
    /// to the edit.
    ///
    /// Thin wrapper over [`Session::apply`] with a one-op batch, kept
    /// for convenience and compatibility; prefer building an
    /// [`EditBatch`] when issuing more than one edit per resolve.
    pub fn insert_fact(
        &mut self,
        subject: &str,
        predicate: &str,
        object: &str,
        interval: Interval,
        confidence: f64,
    ) -> Result<FactId, TecoreError> {
        let edits = EditBatch::new().insert(subject, predicate, object, interval, confidence);
        match self.apply(&edits)?.outcomes.pop() {
            Some(EditOutcome::Inserted(id)) => Ok(id),
            Some(EditOutcome::Rejected(e) | EditOutcome::Failed(e)) => Err(e),
            _ => Err(TecoreError::Session(
                "single-op batch produced no outcome".into(),
            )),
        }
    }

    /// Removes a fact from the selected dataset, mirroring the edit
    /// into the primed incremental engine (if any).
    ///
    /// Thin wrapper over [`Session::apply`] with a one-op batch, kept
    /// for convenience and compatibility; prefer building an
    /// [`EditBatch`] when issuing more than one edit per resolve.
    pub fn remove_fact(&mut self, id: FactId) -> Result<TemporalFact, TecoreError> {
        let edits = EditBatch::new().remove(id);
        match self.apply(&edits)?.outcomes.pop() {
            Some(EditOutcome::Removed(fact)) => Ok(fact),
            Some(EditOutcome::Rejected(e) | EditOutcome::Failed(e)) => Err(e),
            _ => Err(TecoreError::Session(
                "single-op batch produced no outcome".into(),
            )),
        }
    }

    /// Runs conflict resolution incrementally on the selected dataset.
    ///
    /// The first call (or the first after a program/backend/dataset
    /// change) grounds from scratch and primes the engine; subsequent
    /// calls consume only the [`Session::insert_fact`] /
    /// [`Session::remove_fact`] edits since the previous call and
    /// warm-start the solver from the previous MAP state.
    pub fn resolve_incremental(&mut self) -> Result<Arc<Snapshot>, TecoreError> {
        let idx = self.selected_index()?;
        self.require_program()?;
        let stale = !matches!(&self.engine, Some((engine_idx, _)) if *engine_idx == idx);
        if stale {
            let graph = self.datasets[idx].1.clone();
            self.engine = Some((
                idx,
                Engine::with_config(graph, self.program.clone(), self.config.clone()),
            ));
        }
        let (_, engine) = self.engine.as_mut().expect("engine just primed");
        engine.resolve_incremental()
    }
}

/// Do a dataset-side and an engine-side outcome describe the same
/// state change? (The drift guard for [`Session::apply`]'s mirroring:
/// identical operation order on identical graphs must mint identical
/// ids.)
fn outcomes_in_lockstep(a: &EditOutcome, b: &EditOutcome) -> bool {
    match (a, b) {
        (EditOutcome::Inserted(x), EditOutcome::Inserted(y)) => x == y,
        (EditOutcome::Removed(_), EditOutcome::Removed(_)) => true,
        (
            EditOutcome::Upserted {
                id: x, removed: rx, ..
            },
            EditOutcome::Upserted {
                id: y, removed: ry, ..
            },
        ) => x == y && rx.len() == ry.len(),
        (EditOutcome::Rejected(_), EditOutcome::Rejected(_)) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tecore_kg::parser::parse_graph;

    fn ranieri() -> UtkGraph {
        parse_graph(
            "(CR, coach, Chelsea, [2000,2004]) 0.9\n\
             (CR, coach, Leicester, [2015,2017]) 0.7\n\
             (CR, coach, Napoli, [2001,2003]) 0.6\n",
        )
        .unwrap()
    }

    #[test]
    fn full_demo_flow() {
        let mut session = Session::new();
        session.add_dataset("ranieri", ranieri());
        assert_eq!(session.dataset_names(), vec!["ranieri"]);
        session.select("ranieri").unwrap();

        // Auto-completion sees the graph's predicates.
        let suggestions = session.complete("co", 5).unwrap();
        assert_eq!(suggestions[0].text, "coach");

        // Build c2 in the editor.
        let rendered = session
            .add_formula(
                "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z \
                 -> disjoint(t, t') w = inf",
            )
            .unwrap();
        assert!(rendered.contains("disjoint"));

        let resolution = session.run().unwrap();
        assert_eq!(resolution.stats.conflicting_facts, 1);
        assert_eq!(
            resolution
                .consistent
                .dict()
                .resolve(resolution.removed[0].fact.object),
            "Napoli"
        );
    }

    #[test]
    fn errors_without_dataset_or_program() {
        let session = Session::new();
        assert!(session.graph().is_err());
        assert!(session.run().is_err());

        let mut session = Session::new();
        session.add_dataset("d", ranieri());
        // No program registered.
        assert!(matches!(
            session.run().unwrap_err(),
            TecoreError::Session(_)
        ));
    }

    #[test]
    fn select_unknown_dataset() {
        let mut session = Session::new();
        session.add_dataset("a", ranieri());
        assert!(session.select("b").is_err());
        assert!(session.select("a").is_ok());
    }

    #[test]
    fn invalid_formula_rejected_by_editor() {
        let mut session = Session::new();
        session.add_dataset("d", ranieri());
        // Unsafe head variable.
        let err = session
            .add_formula("quad(x, coach, y, t) -> quad(x, coach, z2, t) w = 1.0")
            .unwrap_err();
        assert!(err.to_string().contains("unsafe"));
        assert!(session.program().is_empty());
    }

    #[test]
    fn remove_and_clear() {
        let mut session = Session::new();
        session.add_dataset("d", ranieri());
        session
            .add_formula("c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf")
            .unwrap();
        session
            .add_formula("f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5")
            .unwrap();
        assert_eq!(session.program().len(), 2);
        assert!(session.remove_formula("f1"));
        assert!(!session.remove_formula("f1"));
        assert_eq!(session.program().len(), 1);
        session.clear_program();
        assert!(session.program().is_empty());
    }

    #[test]
    fn add_program_bulk() {
        let mut session = Session::new();
        session.add_dataset("d", ranieri());
        let added = session
            .add_program(
                "f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5\n\
                 c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf\n",
            )
            .unwrap();
        assert_eq!(added, 2);
        assert_eq!(session.program().len(), 2);
    }

    #[test]
    fn graph_stats_available() {
        let mut session = Session::new();
        session.add_dataset("d", ranieri());
        let stats = session.graph_stats().unwrap();
        assert_eq!(stats.fact_count, 3);
    }

    #[test]
    fn backend_selection_by_name() {
        let mut session = Session::new();
        session.add_dataset("ranieri", ranieri());
        session
            .add_formula(
                "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z \
                 -> disjoint(t, t') w = inf",
            )
            .unwrap();
        // All four seed substrates are selectable by name out of the box.
        assert_eq!(
            session.backend_names(),
            vec!["mln-cpi", "mln-exact", "mln-walksat", "psl-admm"]
        );
        for name in ["mln-exact", "mln-walksat", "mln-cpi", "psl-admm"] {
            session.set_backend(name).unwrap();
            let r = session.run().unwrap();
            assert_eq!(r.stats.backend, name);
            assert_eq!(r.stats.conflicting_facts, 1, "{name}");
        }
        // Unknown names error with the available list.
        let err = session.set_backend("gurobi").unwrap_err();
        assert!(err.to_string().contains("unknown backend"));
    }

    #[test]
    fn incremental_session_flow() {
        let mut session = Session::new();
        session.add_dataset("ranieri", ranieri());
        session
            .add_formula(
                "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z \
                 -> disjoint(t, t') w = inf",
            )
            .unwrap();

        // Prime the engine: same answer as the batch path.
        let r1 = session.resolve_incremental().unwrap();
        assert_eq!(r1.stats.conflicting_facts, 1);

        // Streaming edit: a strong Roma spell clashes with Leicester.
        let iv = |a, b| tecore_temporal::Interval::new(a, b).unwrap();
        let roma = session
            .insert_fact("CR", "coach", "Roma", iv(2016, 2018), 0.95)
            .unwrap();
        let r2 = session.resolve_incremental().unwrap();
        assert_eq!(r2.stats.conflicting_facts, 2, "Napoli + Leicester");

        // Undo: back to the original repair, and in agreement with a
        // cold batch run over the same (edited) dataset.
        session.remove_fact(roma).unwrap();
        let r3 = session.resolve_incremental().unwrap();
        assert_eq!(r3.stats.conflicting_facts, 1);
        let batch = session.run().unwrap();
        assert_eq!(r3.stats.conflicting_facts, batch.stats.conflicting_facts);
        assert_eq!(r3.consistent.len(), batch.consistent.len());

        // A program edit invalidates the cached engine but the flow
        // keeps working.
        session
            .add_formula("f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5")
            .unwrap();
        let r4 = session.resolve_incremental().unwrap();
        assert_eq!(r4.stats.conflicting_facts, 1);
    }

    #[test]
    fn incremental_edits_require_selection() {
        let mut session = Session::new();
        let iv = tecore_temporal::Interval::new(1, 2).unwrap();
        assert!(session.insert_fact("a", "p", "b", iv, 0.5).is_err());
        assert!(session.resolve_incremental().is_err());
    }

    #[test]
    fn custom_backend_registers_and_runs() {
        use tecore_ground::{Grounding, MapSolver, MapState, SolveError, SolveOpts, SolverCaps};

        /// Rejects every evidence atom (worst possible repair).
        #[derive(Debug)]
        struct DropAll;

        impl MapSolver for DropAll {
            fn name(&self) -> &str {
                "drop-all"
            }
            fn caps(&self) -> SolverCaps {
                SolverCaps::mln()
            }
            fn solve(
                &self,
                grounding: &Grounding,
                _opts: &SolveOpts,
            ) -> Result<MapState, SolveError> {
                let world = vec![false; grounding.num_atoms()];
                let (cost, hard) = tecore_ground::evaluate_world(&grounding.clauses, &world);
                Ok(MapState {
                    assignment: world,
                    cost,
                    feasible: hard == 0,
                    active_clauses: grounding.clauses.len(),
                    soft_values: None,
                })
            }
        }

        let mut session = Session::new();
        session.add_dataset("ranieri", ranieri());
        session
            .add_formula(
                "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z \
                 -> disjoint(t, t') w = inf",
            )
            .unwrap();
        session.register_backend(crate::backends::SolverHandle::new(DropAll));
        assert!(session.backend_names().contains(&"drop-all"));
        session.set_backend("drop-all").unwrap();
        let r = session.run().unwrap();
        assert_eq!(r.stats.backend, "drop-all");
        assert_eq!(r.stats.conflicting_facts, 3); // everything rejected
    }
}
