//! Qualitative Allen constraint networks with path-consistency
//! propagation (Allen 1983).
//!
//! A network has one node per interval variable and an [`AllenSet`] edge
//! between every pair — "the relation between i and j is one of these".
//! **Path consistency** (the PC-2 / Allen propagation algorithm) tightens
//! every edge through every intermediate node using the composition
//! table: `R(i,j) ← R(i,j) ∩ (R(i,k) ∘ R(k,j))` until a fixpoint.
//!
//! TeCoRe uses this to vet a *set* of temporal constraints before any
//! grounding happens: if the user asserts `before(t, t')`,
//! `before(t', t'')` and `before(t'', t)` in one formula set over shared
//! variables, the network collapses to an empty relation and the
//! constraint editor can reject the input immediately — no uTKG needed.
//! (Path consistency is complete for consistency detection on the
//! pointisable subalgebra, which covers every relation expressible in
//! the paper's constraint language.)

use crate::allen::AllenRelation;
use crate::compose::compose_sets;
use crate::interval::Interval;
use crate::set::AllenSet;

/// A qualitative constraint network over interval variables.
#[derive(Debug, Clone)]
pub struct AllenNetwork {
    n: usize,
    /// Row-major `n × n` relation matrix; `rel[i][j]` constrains
    /// interval i against interval j. Invariants: `rel[i][i] = {equals}`
    /// and `rel[j][i] = rel[i][j].converse()`.
    rel: Vec<AllenSet>,
}

impl AllenNetwork {
    /// A fully unconstrained network over `n` interval variables.
    pub fn new(n: usize) -> Self {
        let mut rel = vec![AllenSet::FULL; n * n];
        for i in 0..n {
            rel[i * n + i] = AllenSet::from_relation(AllenRelation::Equals);
        }
        AllenNetwork { n, rel }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Is the network empty (zero variables)?
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The current relation between `i` and `j`.
    pub fn relation(&self, i: usize, j: usize) -> AllenSet {
        self.rel[i * self.n + j]
    }

    /// Constrains `i R j`, intersecting with any existing constraint
    /// (and `j R⁻¹ i` symmetrically). Returns `false` if the edge
    /// becomes empty (immediate inconsistency).
    pub fn constrain(&mut self, i: usize, j: usize, relation: AllenSet) -> bool {
        let forward = self.rel[i * self.n + j].intersection(relation);
        self.rel[i * self.n + j] = forward;
        self.rel[j * self.n + i] = forward.converse();
        !forward.is_empty()
    }

    /// Runs path-consistency propagation to a fixpoint. Returns `false`
    /// iff some edge became empty — the constraints are unsatisfiable.
    pub fn propagate(&mut self) -> bool {
        let n = self.n;
        if n < 2 {
            return true;
        }
        // Worklist of edges to re-check, seeded with all pairs.
        let mut queue: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j)
            .collect();
        while let Some((i, j)) = queue.pop() {
            let rij = self.rel[i * n + j];
            for k in 0..n {
                if k == i || k == j {
                    continue;
                }
                // Tighten (i,k) through j and (k,j) through i.
                let rik = self.rel[i * n + k];
                let tightened_ik = rik.intersection(compose_sets(rij, self.rel[j * n + k]));
                if tightened_ik != rik {
                    if tightened_ik.is_empty() {
                        self.rel[i * n + k] = tightened_ik;
                        return false;
                    }
                    self.rel[i * n + k] = tightened_ik;
                    self.rel[k * n + i] = tightened_ik.converse();
                    queue.push((i, k));
                }
                let rkj = self.rel[k * n + j];
                let tightened_kj = rkj.intersection(compose_sets(self.rel[k * n + i], rij));
                if tightened_kj != rkj {
                    if tightened_kj.is_empty() {
                        self.rel[k * n + j] = tightened_kj;
                        return false;
                    }
                    self.rel[k * n + j] = tightened_kj;
                    self.rel[j * n + k] = tightened_kj.converse();
                    queue.push((k, j));
                }
            }
        }
        true
    }

    /// Checks whether concrete intervals satisfy every edge.
    pub fn satisfied_by(&self, intervals: &[Interval]) -> bool {
        assert_eq!(intervals.len(), self.n, "one interval per variable");
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j && !self.relation(i, j).holds(intervals[i], intervals[j]) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn before() -> AllenSet {
        AllenSet::from_relation(AllenRelation::Before)
    }

    #[test]
    fn before_chain_propagates_transitively() {
        let mut net = AllenNetwork::new(3);
        assert!(net.constrain(0, 1, before()));
        assert!(net.constrain(1, 2, before()));
        assert!(net.propagate());
        // 0 before 2 is forced by composition.
        assert_eq!(net.relation(0, 2), before());
        assert_eq!(
            net.relation(2, 0),
            AllenSet::from_relation(AllenRelation::After)
        );
    }

    #[test]
    fn before_cycle_is_inconsistent() {
        let mut net = AllenNetwork::new(3);
        net.constrain(0, 1, before());
        net.constrain(1, 2, before());
        net.constrain(2, 0, before());
        assert!(!net.propagate(), "before-cycle must collapse");
    }

    #[test]
    fn during_and_contains_conflict() {
        let mut net = AllenNetwork::new(2);
        assert!(net.constrain(0, 1, AllenSet::from_relation(AllenRelation::During)));
        assert!(
            !net.constrain(0, 1, AllenSet::from_relation(AllenRelation::Contains)),
            "contradictory direct edge detected without propagation"
        );
    }

    #[test]
    fn meets_chain() {
        // 0 meets 1, 1 meets 2 → 0 before 2 (a gap of exactly |1|).
        let mut net = AllenNetwork::new(3);
        net.constrain(0, 1, AllenSet::from_relation(AllenRelation::Meets));
        net.constrain(1, 2, AllenSet::from_relation(AllenRelation::Meets));
        assert!(net.propagate());
        assert_eq!(net.relation(0, 2), before());
    }

    #[test]
    fn disjoint_triangle_consistent() {
        let mut net = AllenNetwork::new(3);
        net.constrain(0, 1, AllenSet::DISJOINT);
        net.constrain(1, 2, AllenSet::DISJOINT);
        net.constrain(0, 2, AllenSet::DISJOINT);
        assert!(net.propagate());
        // Realisable: three separated intervals.
        let iv = |a: i64, b: i64| Interval::new(a, b).unwrap();
        assert!(net.satisfied_by(&[iv(0, 1), iv(10, 11), iv(20, 21)]));
    }

    #[test]
    fn satisfied_by_checks_edges() {
        let mut net = AllenNetwork::new(2);
        net.constrain(0, 1, before());
        let iv = |a: i64, b: i64| Interval::new(a, b).unwrap();
        assert!(net.satisfied_by(&[iv(0, 1), iv(5, 6)]));
        assert!(!net.satisfied_by(&[iv(5, 6), iv(0, 1)]));
    }

    #[test]
    fn empty_and_singleton_networks() {
        assert!(AllenNetwork::new(0).propagate());
        assert!(AllenNetwork::new(1).propagate());
        assert!(AllenNetwork::new(0).is_empty());
    }

    fn arb_interval() -> impl Strategy<Value = Interval> {
        (-30i64..30, 0i64..12).prop_map(|(s, l)| Interval::new(s, s + l).unwrap())
    }

    proptest! {
        /// Soundness: propagation never removes a realisable scenario.
        /// Build a network from the *actual* relations of concrete
        /// intervals; propagation must keep it consistent and the
        /// intervals must still satisfy every edge.
        #[test]
        fn propagation_preserves_realisable_scenarios(
            ivs in prop::collection::vec(arb_interval(), 2..6)
        ) {
            let n = ivs.len();
            let mut net = AllenNetwork::new(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    let r = AllenRelation::between(ivs[i], ivs[j]);
                    prop_assert!(net.constrain(i, j, AllenSet::from_relation(r)));
                }
            }
            prop_assert!(net.propagate(), "network of real intervals must stay consistent");
            prop_assert!(net.satisfied_by(&ivs));
        }

        /// Propagation only ever tightens edges (monotonicity).
        #[test]
        fn propagation_tightens(
            ivs in prop::collection::vec(arb_interval(), 2..5),
            extra_bits in 0u16..(1 << 13),
        ) {
            let n = ivs.len();
            let mut net = AllenNetwork::new(n);
            // Loose edges: real relation plus arbitrary extra relations.
            for i in 0..n {
                for j in (i + 1)..n {
                    let real = AllenRelation::between(ivs[i], ivs[j]);
                    let loose = AllenSet::from_relation(real)
                        .union(AllenSet::from_bits(extra_bits));
                    prop_assert!(net.constrain(i, j, loose));
                }
            }
            let before_prop: Vec<AllenSet> =
                (0..n * n).map(|k| net.rel[k]).collect();
            prop_assert!(net.propagate());
            for (k, (&after, &before)) in
                net.rel.iter().zip(before_prop.iter()).enumerate()
            {
                prop_assert_eq!(after.union(before), before,
                    "edge {} grew during propagation", k);
            }
            // The concrete intervals still satisfy the tightened net.
            prop_assert!(net.satisfied_by(&ivs));
        }
    }
}
