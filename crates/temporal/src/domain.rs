//! The finite, discrete time domain of a uTKG.

use crate::error::TemporalError;
use crate::interval::Interval;
use crate::point::TimePoint;

/// The finite discrete time domain `T` over which fact validity is
/// expressed (paper §2: "we assume that the time domain ... is finite as
/// well as discrete; hence, the set of possible worlds is finite").
///
/// A domain is an inclusive range `[lo, hi]` of time points plus a human
/// label for the granularity (used only for display/reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeDomain {
    lo: TimePoint,
    hi: TimePoint,
    granularity: Granularity,
}

/// Unit of a domain time point. Purely descriptive — all arithmetic is on
/// raw points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Granularity {
    /// Calendar years (the paper's running example).
    #[default]
    Year,
    /// Calendar days.
    Day,
    /// Minutes.
    Minute,
    /// Milliseconds.
    Millisecond,
    /// Application-defined abstract ticks.
    Tick,
}

impl Granularity {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Granularity::Year => "year",
            Granularity::Day => "day",
            Granularity::Minute => "minute",
            Granularity::Millisecond => "millisecond",
            Granularity::Tick => "tick",
        }
    }
}

impl TimeDomain {
    /// Builds a domain `[lo, hi]` with the given granularity.
    pub fn new(
        lo: impl Into<TimePoint>,
        hi: impl Into<TimePoint>,
        granularity: Granularity,
    ) -> Result<Self, TemporalError> {
        let (lo, hi) = (lo.into(), hi.into());
        if lo > hi {
            return Err(TemporalError::EmptyDomain { lo, hi });
        }
        Ok(TimeDomain {
            lo,
            hi,
            granularity,
        })
    }

    /// A year-granularity domain covering the given inclusive year range.
    pub fn years(lo: i64, hi: i64) -> Result<Self, TemporalError> {
        TimeDomain::new(lo, hi, Granularity::Year)
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> TimePoint {
        self.lo
    }

    /// Upper bound (inclusive).
    pub fn hi(&self) -> TimePoint {
        self.hi
    }

    /// The granularity label.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Number of time points in the domain.
    pub fn len(&self) -> i64 {
        self.hi.value() - self.lo.value() + 1
    }

    /// `false` by construction — a domain is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Is the point inside the domain?
    pub fn contains_point(&self, t: TimePoint) -> bool {
        self.lo <= t && t <= self.hi
    }

    /// Is the interval fully inside the domain?
    pub fn contains(&self, interval: Interval) -> bool {
        self.contains_point(interval.start()) && self.contains_point(interval.end())
    }

    /// Validates that the interval lies in the domain, reporting the
    /// offending endpoint otherwise.
    pub fn check(&self, interval: Interval) -> Result<(), TemporalError> {
        for point in [interval.start(), interval.end()] {
            if !self.contains_point(point) {
                return Err(TemporalError::OutOfDomain {
                    point,
                    lo: self.lo,
                    hi: self.hi,
                });
            }
        }
        Ok(())
    }

    /// Clips the interval to the domain, if any part is inside it.
    pub fn clip(&self, interval: Interval) -> Option<Interval> {
        let whole = Interval::new(self.lo, self.hi).expect("domain invariant");
        interval.intersection(whole)
    }

    /// The whole domain as a single interval.
    pub fn as_interval(&self) -> Interval {
        Interval::new(self.lo, self.hi).expect("domain invariant")
    }

    /// Grows the domain (in both directions) to include the interval.
    #[must_use]
    pub fn extended_to(&self, interval: Interval) -> TimeDomain {
        TimeDomain {
            lo: self.lo.min(interval.start()),
            hi: self.hi.max(interval.end()),
            granularity: self.granularity,
        }
    }
}

impl Default for TimeDomain {
    /// A generous default for year-granularity KGs (covers all of
    /// recorded history plus slack): `[-5000, 5000]`.
    fn default() -> Self {
        TimeDomain::years(-5000, 5000).expect("static bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_bounds() {
        let d = TimeDomain::years(1900, 2020).unwrap();
        assert_eq!(d.lo(), TimePoint(1900));
        assert_eq!(d.hi(), TimePoint(2020));
        assert_eq!(d.len(), 121);
        assert!(!d.is_empty());
        assert!(TimeDomain::years(10, 5).is_err());
    }

    #[test]
    fn membership() {
        let d = TimeDomain::years(1900, 2020).unwrap();
        assert!(d.contains_point(TimePoint(1951)));
        assert!(!d.contains_point(TimePoint(1850)));
        assert!(d.contains(Interval::new(2000, 2004).unwrap()));
        assert!(!d.contains(Interval::new(2000, 2050).unwrap()));
    }

    #[test]
    fn check_reports_offender() {
        let d = TimeDomain::years(1900, 2020).unwrap();
        let err = d.check(Interval::new(1800, 1950).unwrap()).unwrap_err();
        match err {
            TemporalError::OutOfDomain { point, .. } => assert_eq!(point, TimePoint(1800)),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn clip() {
        let d = TimeDomain::years(1900, 2020).unwrap();
        assert_eq!(
            d.clip(Interval::new(1850, 1950).unwrap()),
            Some(Interval::new(1900, 1950).unwrap())
        );
        assert_eq!(d.clip(Interval::new(2100, 2200).unwrap()), None);
    }

    #[test]
    fn extend() {
        let d = TimeDomain::years(1900, 2020).unwrap();
        let d2 = d.extended_to(Interval::new(1850, 2050).unwrap());
        assert_eq!(d2.lo(), TimePoint(1850));
        assert_eq!(d2.hi(), TimePoint(2050));
        assert_eq!(d2.granularity(), Granularity::Year);
    }

    #[test]
    fn granularity_names() {
        assert_eq!(Granularity::Year.name(), "year");
        assert_eq!(Granularity::Tick.name(), "tick");
    }
}
