//! Composition of Allen relations (Allen 1983, Table 1).
//!
//! `compose(r1, r2)` answers: given `r1(a, b)` and `r2(b, c)`, which basic
//! relations may hold between `a` and `c`? The answer is in general a
//! *set* of relations, so composition maps into [`AllenSet`].
//!
//! Composition powers constraint *propagation*: TeCoRe's validator uses
//! it to detect constraint networks that are unsatisfiable before any
//! grounding happens, and the test-suite uses it as an algebraic oracle
//! for the relation semantics.
//!
//! The table below is the classical 13×13 composition table. It was
//! cross-checked by exhaustive enumeration over a finite discrete domain
//! (see `derived_table_matches` in the tests), which is sound and
//! complete for this algebra: every entry is realisable with intervals of
//! length ≤ 13.

use crate::allen::AllenRelation;
use crate::set::AllenSet;

use AllenRelation as A;

/// The full set of 13 relations, used for the two "anything possible"
/// entries (`before ∘ after` and `after ∘ before`).
const FULL13: &[AllenRelation] = &[
    A::Before,
    A::Meets,
    A::Overlaps,
    A::Starts,
    A::During,
    A::Finishes,
    A::Equals,
    A::FinishedBy,
    A::Contains,
    A::StartedBy,
    A::OverlappedBy,
    A::MetBy,
    A::After,
];

#[rustfmt::skip]
const TABLE: [[&[AllenRelation]; 13]; 13] = [
    // row: Before
    [&[A::Before], &[A::Before], &[A::Before], &[A::Before],
     &[A::Before, A::Meets, A::Overlaps, A::Starts, A::During],
     &[A::Before, A::Meets, A::Overlaps, A::Starts, A::During],
     &[A::Before], &[A::Before], &[A::Before], &[A::Before],
     &[A::Before, A::Meets, A::Overlaps, A::Starts, A::During],
     &[A::Before, A::Meets, A::Overlaps, A::Starts, A::During],
     FULL13],
    // row: Meets
    [&[A::Before], &[A::Before], &[A::Before], &[A::Meets],
     &[A::Overlaps, A::Starts, A::During],
     &[A::Overlaps, A::Starts, A::During],
     &[A::Meets], &[A::Before], &[A::Before], &[A::Meets],
     &[A::Overlaps, A::Starts, A::During],
     &[A::Finishes, A::Equals, A::FinishedBy],
     &[A::Contains, A::StartedBy, A::OverlappedBy, A::MetBy, A::After]],
    // row: Overlaps
    [&[A::Before], &[A::Before],
     &[A::Before, A::Meets, A::Overlaps],
     &[A::Overlaps],
     &[A::Overlaps, A::Starts, A::During],
     &[A::Overlaps, A::Starts, A::During],
     &[A::Overlaps],
     &[A::Before, A::Meets, A::Overlaps],
     &[A::Before, A::Meets, A::Overlaps, A::FinishedBy, A::Contains],
     &[A::Overlaps, A::FinishedBy, A::Contains],
     &[A::Overlaps, A::Starts, A::During, A::Finishes, A::Equals, A::FinishedBy, A::Contains, A::StartedBy, A::OverlappedBy],
     &[A::Contains, A::StartedBy, A::OverlappedBy],
     &[A::Contains, A::StartedBy, A::OverlappedBy, A::MetBy, A::After]],
    // row: Starts
    [&[A::Before], &[A::Before],
     &[A::Before, A::Meets, A::Overlaps],
     &[A::Starts], &[A::During], &[A::During], &[A::Starts],
     &[A::Before, A::Meets, A::Overlaps],
     &[A::Before, A::Meets, A::Overlaps, A::FinishedBy, A::Contains],
     &[A::Starts, A::Equals, A::StartedBy],
     &[A::During, A::Finishes, A::OverlappedBy],
     &[A::MetBy], &[A::After]],
    // row: During
    [&[A::Before], &[A::Before],
     &[A::Before, A::Meets, A::Overlaps, A::Starts, A::During],
     &[A::During], &[A::During], &[A::During], &[A::During],
     &[A::Before, A::Meets, A::Overlaps, A::Starts, A::During],
     FULL13,
     &[A::During, A::Finishes, A::OverlappedBy, A::MetBy, A::After],
     &[A::During, A::Finishes, A::OverlappedBy, A::MetBy, A::After],
     &[A::After], &[A::After]],
    // row: Finishes
    [&[A::Before], &[A::Meets],
     &[A::Overlaps, A::Starts, A::During],
     &[A::During], &[A::During], &[A::Finishes], &[A::Finishes],
     &[A::Finishes, A::Equals, A::FinishedBy],
     &[A::Contains, A::StartedBy, A::OverlappedBy, A::MetBy, A::After],
     &[A::OverlappedBy, A::MetBy, A::After],
     &[A::OverlappedBy, A::MetBy, A::After],
     &[A::After], &[A::After]],
    // row: Equals (identity)
    [&[A::Before], &[A::Meets], &[A::Overlaps], &[A::Starts], &[A::During],
     &[A::Finishes], &[A::Equals], &[A::FinishedBy], &[A::Contains],
     &[A::StartedBy], &[A::OverlappedBy], &[A::MetBy], &[A::After]],
    // row: FinishedBy
    [&[A::Before], &[A::Meets], &[A::Overlaps], &[A::Overlaps],
     &[A::Overlaps, A::Starts, A::During],
     &[A::Finishes, A::Equals, A::FinishedBy],
     &[A::FinishedBy], &[A::FinishedBy], &[A::Contains], &[A::Contains],
     &[A::Contains, A::StartedBy, A::OverlappedBy],
     &[A::Contains, A::StartedBy, A::OverlappedBy],
     &[A::Contains, A::StartedBy, A::OverlappedBy, A::MetBy, A::After]],
    // row: Contains
    [&[A::Before, A::Meets, A::Overlaps, A::FinishedBy, A::Contains],
     &[A::Overlaps, A::FinishedBy, A::Contains],
     &[A::Overlaps, A::FinishedBy, A::Contains],
     &[A::Overlaps, A::FinishedBy, A::Contains],
     &[A::Overlaps, A::Starts, A::During, A::Finishes, A::Equals, A::FinishedBy, A::Contains, A::StartedBy, A::OverlappedBy],
     &[A::Contains, A::StartedBy, A::OverlappedBy],
     &[A::Contains], &[A::Contains], &[A::Contains], &[A::Contains],
     &[A::Contains, A::StartedBy, A::OverlappedBy],
     &[A::Contains, A::StartedBy, A::OverlappedBy],
     &[A::Contains, A::StartedBy, A::OverlappedBy, A::MetBy, A::After]],
    // row: StartedBy
    [&[A::Before, A::Meets, A::Overlaps, A::FinishedBy, A::Contains],
     &[A::Overlaps, A::FinishedBy, A::Contains],
     &[A::Overlaps, A::FinishedBy, A::Contains],
     &[A::Starts, A::Equals, A::StartedBy],
     &[A::During, A::Finishes, A::OverlappedBy],
     &[A::OverlappedBy], &[A::StartedBy], &[A::Contains], &[A::Contains],
     &[A::StartedBy], &[A::OverlappedBy], &[A::MetBy], &[A::After]],
    // row: OverlappedBy
    [&[A::Before, A::Meets, A::Overlaps, A::FinishedBy, A::Contains],
     &[A::Overlaps, A::FinishedBy, A::Contains],
     &[A::Overlaps, A::Starts, A::During, A::Finishes, A::Equals, A::FinishedBy, A::Contains, A::StartedBy, A::OverlappedBy],
     &[A::During, A::Finishes, A::OverlappedBy],
     &[A::During, A::Finishes, A::OverlappedBy],
     &[A::OverlappedBy], &[A::OverlappedBy],
     &[A::Contains, A::StartedBy, A::OverlappedBy],
     &[A::Contains, A::StartedBy, A::OverlappedBy, A::MetBy, A::After],
     &[A::OverlappedBy, A::MetBy, A::After],
     &[A::OverlappedBy, A::MetBy, A::After],
     &[A::After], &[A::After]],
    // row: MetBy
    [&[A::Before, A::Meets, A::Overlaps, A::FinishedBy, A::Contains],
     &[A::Starts, A::Equals, A::StartedBy],
     &[A::During, A::Finishes, A::OverlappedBy],
     &[A::During, A::Finishes, A::OverlappedBy],
     &[A::During, A::Finishes, A::OverlappedBy],
     &[A::MetBy], &[A::MetBy], &[A::MetBy],
     &[A::After], &[A::After], &[A::After], &[A::After], &[A::After]],
    // row: After
    [FULL13,
     &[A::During, A::Finishes, A::OverlappedBy, A::MetBy, A::After],
     &[A::During, A::Finishes, A::OverlappedBy, A::MetBy, A::After],
     &[A::During, A::Finishes, A::OverlappedBy, A::MetBy, A::After],
     &[A::During, A::Finishes, A::OverlappedBy, A::MetBy, A::After],
     &[A::After], &[A::After], &[A::After], &[A::After], &[A::After],
     &[A::After], &[A::After], &[A::After]],
];

/// Composes two basic relations: the set of relations that may hold
/// between `a` and `c` given `r1(a, b)` and `r2(b, c)`.
pub fn compose(r1: AllenRelation, r2: AllenRelation) -> AllenSet {
    AllenSet::from_relations(TABLE[r1.index()][r2.index()].iter().copied())
}

/// Composes two relation sets: the union of pairwise compositions.
pub fn compose_sets(s1: AllenSet, s2: AllenSet) -> AllenSet {
    let mut out = AllenSet::EMPTY;
    for r1 in s1.iter() {
        for r2 in s2.iter() {
            out = out.union(compose(r1, r2));
            if out == AllenSet::FULL {
                return out; // saturated; nothing more to add
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use proptest::prelude::*;

    fn iv(a: i64, b: i64) -> Interval {
        Interval::new(a, b).unwrap()
    }

    /// Re-derive the composition table by brute force over a finite
    /// domain and compare with the hard-coded table. Intervals of length
    /// ≤ 13 over 13 points realise every composition scenario for this
    /// algebra, so the derived table is exact.
    #[test]
    fn derived_table_matches() {
        const N: i64 = 13;
        let mut derived = vec![vec![AllenSet::EMPTY; 13]; 13];
        let ivs: Vec<Interval> = (0..N).flat_map(|s| (s..N).map(move |e| iv(s, e))).collect();
        for &a in &ivs {
            for &b in &ivs {
                let r1 = AllenRelation::between(a, b);
                for &c in &ivs {
                    let r2 = AllenRelation::between(b, c);
                    let r3 = AllenRelation::between(a, c);
                    derived[r1.index()][r2.index()] = derived[r1.index()][r2.index()].insert(r3);
                }
            }
        }
        for r1 in AllenRelation::ALL {
            for r2 in AllenRelation::ALL {
                assert_eq!(
                    compose(r1, r2),
                    derived[r1.index()][r2.index()],
                    "composition mismatch at ({r1}, {r2})"
                );
            }
        }
    }

    #[test]
    fn equals_is_identity() {
        for r in AllenRelation::ALL {
            assert_eq!(
                compose(AllenRelation::Equals, r),
                AllenSet::from_relation(r)
            );
            assert_eq!(
                compose(r, AllenRelation::Equals),
                AllenSet::from_relation(r)
            );
        }
    }

    #[test]
    fn before_after_is_full() {
        assert_eq!(
            compose(AllenRelation::Before, AllenRelation::After),
            AllenSet::FULL
        );
        assert_eq!(
            compose(AllenRelation::After, AllenRelation::Before),
            AllenSet::FULL
        );
    }

    #[test]
    fn before_before_is_before() {
        assert_eq!(
            compose(AllenRelation::Before, AllenRelation::Before),
            AllenSet::from_relation(AllenRelation::Before)
        );
    }

    fn arb_interval() -> impl Strategy<Value = Interval> {
        (-20i64..20, 0i64..15).prop_map(|(s, l)| iv(s, s + l))
    }

    proptest! {
        /// Soundness: the actual relation between a and c is always a
        /// member of compose(r(a,b), r(b,c)).
        #[test]
        fn composition_sound(a in arb_interval(), b in arb_interval(), c in arb_interval()) {
            let r1 = AllenRelation::between(a, b);
            let r2 = AllenRelation::between(b, c);
            prop_assert!(compose(r1, r2).contains(AllenRelation::between(a, c)));
        }

        /// Converse anti-distributes over composition:
        /// (r1 ∘ r2)⁻¹ == r2⁻¹ ∘ r1⁻¹.
        #[test]
        fn converse_antidistributes(i in 0usize..13, j in 0usize..13) {
            let r1 = AllenRelation::from_index(i).unwrap();
            let r2 = AllenRelation::from_index(j).unwrap();
            prop_assert_eq!(
                compose(r1, r2).converse(),
                compose(r2.converse(), r1.converse())
            );
        }

        /// Set composition is monotone in both arguments.
        #[test]
        fn set_composition_monotone(b1 in 0u16..(1<<13), b2 in 0u16..(1<<13)) {
            let s1 = AllenSet::from_bits(b1);
            let s2 = AllenSet::from_bits(b2);
            let whole = compose_sets(s1, s2);
            for r in s1.iter() {
                let sub = compose_sets(AllenSet::from_relation(r), s2);
                prop_assert_eq!(sub.union(whole), whole);
            }
        }
    }
}
