//! Error type for temporal operations.

use std::fmt;

use crate::point::TimePoint;

/// Errors raised by interval and domain construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemporalError {
    /// An interval was requested with `start > end`.
    EmptyInterval { start: TimePoint, end: TimePoint },
    /// A point or interval lies outside the configured [`crate::TimeDomain`].
    OutOfDomain {
        point: TimePoint,
        lo: TimePoint,
        hi: TimePoint,
    },
    /// A time domain was requested with `lo > hi`.
    EmptyDomain { lo: TimePoint, hi: TimePoint },
}

impl fmt::Display for TemporalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalError::EmptyInterval { start, end } => {
                write!(f, "empty interval: start {start} is after end {end}")
            }
            TemporalError::OutOfDomain { point, lo, hi } => {
                write!(f, "time point {point} outside domain [{lo}, {hi}]")
            }
            TemporalError::EmptyDomain { lo, hi } => {
                write!(f, "empty time domain: lo {lo} is after hi {hi}")
            }
        }
    }
}

impl std::error::Error for TemporalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TemporalError::EmptyInterval {
            start: TimePoint(5),
            end: TimePoint(3),
        };
        assert!(e.to_string().contains("empty interval"));
        let e = TemporalError::OutOfDomain {
            point: TimePoint(99),
            lo: TimePoint(0),
            hi: TimePoint(10),
        };
        assert!(e.to_string().contains("outside domain"));
        let e = TemporalError::EmptyDomain {
            lo: TimePoint(2),
            hi: TimePoint(1),
        };
        assert!(e.to_string().contains("empty time domain"));
    }
}
