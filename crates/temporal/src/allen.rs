//! The 13 basic relations of Allen's interval algebra.

use std::fmt;

use crate::interval::Interval;

/// One of the 13 basic relations of Allen's interval algebra.
///
/// The variant order is the canonical "distance from Before" order used
/// throughout the crate (and by the composition table): the first six
/// variants and their converses mirror around [`AllenRelation::Equals`].
///
/// Over the discrete time domain with closed intervals the relations are
/// defined so that they partition all interval pairs (see crate docs):
///
/// | relation      | condition on `a = [a1,a2]`, `b = [b1,b2]`        |
/// |---------------|---------------------------------------------------|
/// | `Before`      | `a2 + 1 < b1`                                     |
/// | `Meets`       | `a2 + 1 == b1`                                    |
/// | `Overlaps`    | `a1 < b1 && b1 <= a2 && a2 < b2`                  |
/// | `Starts`      | `a1 == b1 && a2 < b2`                             |
/// | `During`      | `b1 < a1 && a2 < b2`                              |
/// | `Finishes`    | `b1 < a1 && a2 == b2`                             |
/// | `Equals`      | `a1 == b1 && a2 == b2`                            |
///
/// plus the six converses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum AllenRelation {
    /// `a` ends strictly before `b` starts, with a gap.
    Before = 0,
    /// `a` is immediately followed by `b` (adjacent, nothing shared).
    Meets = 1,
    /// `a` starts first and they share a proper non-empty suffix/prefix.
    Overlaps = 2,
    /// `a` and `b` start together, `a` ends first.
    Starts = 3,
    /// `a` lies strictly inside `b`.
    During = 4,
    /// `a` and `b` end together, `a` starts later.
    Finishes = 5,
    /// Identical intervals.
    Equals = 6,
    /// Converse of [`AllenRelation::Finishes`].
    FinishedBy = 7,
    /// Converse of [`AllenRelation::During`].
    Contains = 8,
    /// Converse of [`AllenRelation::Starts`].
    StartedBy = 9,
    /// Converse of [`AllenRelation::Overlaps`].
    OverlappedBy = 10,
    /// Converse of [`AllenRelation::Meets`].
    MetBy = 11,
    /// Converse of [`AllenRelation::Before`].
    After = 12,
}

impl AllenRelation {
    /// All 13 relations in canonical order.
    pub const ALL: [AllenRelation; 13] = [
        AllenRelation::Before,
        AllenRelation::Meets,
        AllenRelation::Overlaps,
        AllenRelation::Starts,
        AllenRelation::During,
        AllenRelation::Finishes,
        AllenRelation::Equals,
        AllenRelation::FinishedBy,
        AllenRelation::Contains,
        AllenRelation::StartedBy,
        AllenRelation::OverlappedBy,
        AllenRelation::MetBy,
        AllenRelation::After,
    ];

    /// The unique basic relation holding between `a` and `b`.
    pub fn between(a: Interval, b: Interval) -> AllenRelation {
        use AllenRelation as R;
        let (a1, a2) = (a.start(), a.end());
        let (b1, b2) = (b.start(), b.end());
        if a2.value() + 1 < b1.value() {
            return R::Before;
        }
        if a2.value() + 1 == b1.value() {
            return R::Meets;
        }
        if b2.value() + 1 < a1.value() {
            return R::After;
        }
        if b2.value() + 1 == a1.value() {
            return R::MetBy;
        }
        // From here on the intervals share at least one point.
        if a1 == b1 && a2 == b2 {
            R::Equals
        } else if a1 == b1 {
            if a2 < b2 {
                R::Starts
            } else {
                R::StartedBy
            }
        } else if a2 == b2 {
            if a1 > b1 {
                R::Finishes
            } else {
                R::FinishedBy
            }
        } else if a1 > b1 && a2 < b2 {
            R::During
        } else if a1 < b1 && a2 > b2 {
            R::Contains
        } else if a1 < b1 {
            R::Overlaps
        } else {
            R::OverlappedBy
        }
    }

    /// Does this relation hold between `a` and `b`?
    #[inline]
    pub fn holds(self, a: Interval, b: Interval) -> bool {
        AllenRelation::between(a, b) == self
    }

    /// The converse relation: `r.converse().holds(b, a) == r.holds(a, b)`.
    pub fn converse(self) -> AllenRelation {
        // The canonical order mirrors around Equals (index 6).
        AllenRelation::ALL[12 - self as usize]
    }

    /// Canonical index in `0..13`.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Relation from its canonical index.
    pub fn from_index(i: usize) -> Option<AllenRelation> {
        AllenRelation::ALL.get(i).copied()
    }

    /// Canonical lower-camel-case name, matching the constraint language
    /// (`before`, `metBy`, `overlappedBy`, ...).
    pub fn name(self) -> &'static str {
        match self {
            AllenRelation::Before => "before",
            AllenRelation::Meets => "meets",
            AllenRelation::Overlaps => "overlaps",
            AllenRelation::Starts => "starts",
            AllenRelation::During => "during",
            AllenRelation::Finishes => "finishes",
            AllenRelation::Equals => "equals",
            AllenRelation::FinishedBy => "finishedBy",
            AllenRelation::Contains => "contains",
            AllenRelation::StartedBy => "startedBy",
            AllenRelation::OverlappedBy => "overlappedBy",
            AllenRelation::MetBy => "metBy",
            AllenRelation::After => "after",
        }
    }

    /// Parses a basic-relation name (case-insensitive, `_` tolerated).
    pub fn parse(name: &str) -> Option<AllenRelation> {
        let lowered: String = name
            .chars()
            .filter(|c| *c != '_')
            .collect::<String>()
            .to_ascii_lowercase();
        AllenRelation::ALL
            .iter()
            .copied()
            .find(|r| r.name().to_ascii_lowercase() == lowered)
    }
}

impl fmt::Display for AllenRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iv(a: i64, b: i64) -> Interval {
        Interval::new(a, b).unwrap()
    }

    #[test]
    fn paper_examples() {
        // c2: (CR, coach, Chelsea, [2000,2004]) vs (CR, coach, Napoli, [2001,2003])
        assert_eq!(
            AllenRelation::between(iv(2000, 2004), iv(2001, 2003)),
            AllenRelation::Contains
        );
        // c1: birthDate before deathDate
        assert_eq!(
            AllenRelation::between(iv(1951, 1951), iv(2017, 2017)),
            AllenRelation::Before
        );
    }

    #[test]
    fn all_thirteen_reachable() {
        use AllenRelation as R;
        let b = iv(10, 20);
        let cases = [
            (iv(1, 5), R::Before),
            (iv(1, 9), R::Meets),
            (iv(5, 15), R::Overlaps),
            (iv(10, 15), R::Starts),
            (iv(12, 18), R::During),
            (iv(15, 20), R::Finishes),
            (iv(10, 20), R::Equals),
            (iv(5, 20), R::FinishedBy),
            (iv(5, 25), R::Contains),
            (iv(10, 25), R::StartedBy),
            (iv(15, 25), R::OverlappedBy),
            (iv(21, 25), R::MetBy),
            (iv(22, 25), R::After),
        ];
        for (a, expected) in cases {
            assert_eq!(AllenRelation::between(a, b), expected, "{a} vs {b}");
        }
    }

    #[test]
    fn converse_table() {
        use AllenRelation as R;
        assert_eq!(R::Before.converse(), R::After);
        assert_eq!(R::Meets.converse(), R::MetBy);
        assert_eq!(R::Overlaps.converse(), R::OverlappedBy);
        assert_eq!(R::Starts.converse(), R::StartedBy);
        assert_eq!(R::During.converse(), R::Contains);
        assert_eq!(R::Finishes.converse(), R::FinishedBy);
        assert_eq!(R::Equals.converse(), R::Equals);
    }

    #[test]
    fn name_parse_roundtrip() {
        for r in AllenRelation::ALL {
            assert_eq!(AllenRelation::parse(r.name()), Some(r));
            assert_eq!(AllenRelation::parse(&r.name().to_uppercase()), Some(r));
        }
        assert_eq!(AllenRelation::parse("met_by"), Some(AllenRelation::MetBy));
        assert_eq!(AllenRelation::parse("nonsense"), None);
    }

    #[test]
    fn index_roundtrip() {
        for (i, r) in AllenRelation::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(AllenRelation::from_index(i), Some(*r));
        }
        assert_eq!(AllenRelation::from_index(13), None);
    }

    fn arb_interval() -> impl Strategy<Value = Interval> {
        (-50i64..50, 0i64..30).prop_map(|(s, len)| iv(s, s + len))
    }

    proptest! {
        /// Exactly one basic relation holds for any pair (trichotomy of
        /// the algebra) — this is what makes Allen constraints a sound
        /// partition in the grounding engine.
        #[test]
        fn exactly_one_relation_holds(a in arb_interval(), b in arb_interval()) {
            let holding: Vec<_> = AllenRelation::ALL
                .iter()
                .filter(|r| r.holds(a, b))
                .collect();
            prop_assert_eq!(holding.len(), 1);
        }

        /// converse(between(a, b)) == between(b, a)
        #[test]
        fn converse_law(a in arb_interval(), b in arb_interval()) {
            prop_assert_eq!(
                AllenRelation::between(a, b).converse(),
                AllenRelation::between(b, a)
            );
        }

        /// converse is an involution
        #[test]
        fn converse_involution(i in 0usize..13) {
            let r = AllenRelation::from_index(i).unwrap();
            prop_assert_eq!(r.converse().converse(), r);
        }

        /// Equals holds iff the intervals are identical.
        #[test]
        fn equals_is_identity(a in arb_interval(), b in arb_interval()) {
            prop_assert_eq!(AllenRelation::Equals.holds(a, b), a == b);
        }
    }
}
