//! Time points of the discrete time domain.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A single point of the discrete, linearly ordered time domain.
///
/// The unit (year, day, millisecond, ...) is chosen by the application;
/// TeCoRe only relies on the linear order and integer arithmetic. The
/// paper's running example uses years (`[2000, 2004]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimePoint(pub i64);

impl TimePoint {
    /// Smallest representable time point.
    pub const MIN: TimePoint = TimePoint(i64::MIN / 4);
    /// Largest representable time point.
    ///
    /// `MIN`/`MAX` leave ample headroom so that interval arithmetic
    /// (`end + 1` in the Allen predicates, duration differences in
    /// numerical rule conditions) can never overflow.
    pub const MAX: TimePoint = TimePoint(i64::MAX / 4);

    /// Builds a time point from a raw integer.
    #[inline]
    pub const fn new(value: i64) -> Self {
        TimePoint(value)
    }

    /// The raw integer value.
    #[inline]
    pub const fn value(self) -> i64 {
        self.0
    }

    /// The immediate successor of this point.
    #[inline]
    pub fn succ(self) -> TimePoint {
        TimePoint(self.0 + 1)
    }

    /// The immediate predecessor of this point.
    #[inline]
    pub fn pred(self) -> TimePoint {
        TimePoint(self.0 - 1)
    }

    /// Signed distance `self - other` in domain units.
    #[inline]
    pub fn distance(self, other: TimePoint) -> i64 {
        self.0 - other.0
    }

    /// Clamps the point into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: TimePoint, hi: TimePoint) -> TimePoint {
        TimePoint(self.0.clamp(lo.0, hi.0))
    }
}

impl From<i64> for TimePoint {
    #[inline]
    fn from(value: i64) -> Self {
        TimePoint(value)
    }
}

impl From<i32> for TimePoint {
    #[inline]
    fn from(value: i32) -> Self {
        TimePoint(value as i64)
    }
}

impl From<TimePoint> for i64 {
    #[inline]
    fn from(value: TimePoint) -> Self {
        value.0
    }
}

impl Add<i64> for TimePoint {
    type Output = TimePoint;
    #[inline]
    fn add(self, rhs: i64) -> TimePoint {
        TimePoint(self.0 + rhs)
    }
}

impl AddAssign<i64> for TimePoint {
    #[inline]
    fn add_assign(&mut self, rhs: i64) {
        self.0 += rhs;
    }
}

impl Sub<i64> for TimePoint {
    type Output = TimePoint;
    #[inline]
    fn sub(self, rhs: i64) -> TimePoint {
        TimePoint(self.0 - rhs)
    }
}

impl SubAssign<i64> for TimePoint {
    #[inline]
    fn sub_assign(&mut self, rhs: i64) {
        self.0 -= rhs;
    }
}

impl Sub<TimePoint> for TimePoint {
    type Output = i64;
    #[inline]
    fn sub(self, rhs: TimePoint) -> i64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_integers() {
        assert!(TimePoint(1) < TimePoint(2));
        assert!(TimePoint(-5) < TimePoint(0));
        assert_eq!(TimePoint(7), TimePoint(7));
    }

    #[test]
    fn succ_pred_roundtrip() {
        let p = TimePoint(1984);
        assert_eq!(p.succ().pred(), p);
        assert_eq!(p.succ().value(), 1985);
    }

    #[test]
    fn distance_is_signed() {
        assert_eq!(TimePoint(2004).distance(TimePoint(2000)), 4);
        assert_eq!(TimePoint(2000).distance(TimePoint(2004)), -4);
    }

    #[test]
    fn arithmetic_operators() {
        let p = TimePoint(10);
        assert_eq!(p + 5, TimePoint(15));
        assert_eq!(p - 5, TimePoint(5));
        assert_eq!(TimePoint(15) - TimePoint(10), 5);
        let mut q = p;
        q += 1;
        q -= 3;
        assert_eq!(q, TimePoint(8));
    }

    #[test]
    fn conversions() {
        let p: TimePoint = 1951i64.into();
        assert_eq!(i64::from(p), 1951);
        let q: TimePoint = 1951i32.into();
        assert_eq!(p, q);
    }

    #[test]
    fn clamp_bounds() {
        let lo = TimePoint(0);
        let hi = TimePoint(10);
        assert_eq!(TimePoint(-3).clamp(lo, hi), lo);
        assert_eq!(TimePoint(42).clamp(lo, hi), hi);
        assert_eq!(TimePoint(5).clamp(lo, hi), TimePoint(5));
    }

    #[test]
    fn min_max_headroom_for_succ() {
        // The Allen predicates compute `end + 1`; this must not overflow
        // even at the domain extremes.
        let _ = TimePoint::MAX.succ();
        let _ = TimePoint::MIN.pred();
    }

    #[test]
    fn display() {
        assert_eq!(TimePoint(2017).to_string(), "2017");
    }
}
