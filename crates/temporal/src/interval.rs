//! Closed, non-empty intervals over the discrete time domain.

use std::fmt;

use crate::error::TemporalError;
use crate::point::TimePoint;

/// A closed, non-empty interval `[start, end]` of time points.
///
/// This is the "temporal element" attached to every fact of a uTKG in the
/// paper's data model: `(CR, coach, Chelsea, [2000, 2004])`. Both bounds
/// are inclusive and `start <= end` is an invariant maintained by
/// construction, so a single time point is `[t, t]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    start: TimePoint,
    end: TimePoint,
}

impl Interval {
    /// Builds `[start, end]`, rejecting empty intervals.
    pub fn new(
        start: impl Into<TimePoint>,
        end: impl Into<TimePoint>,
    ) -> Result<Self, TemporalError> {
        let (start, end) = (start.into(), end.into());
        if start > end {
            return Err(TemporalError::EmptyInterval { start, end });
        }
        Ok(Interval { start, end })
    }

    /// Builds the degenerate interval `[t, t]`.
    pub fn at(t: impl Into<TimePoint>) -> Self {
        let t = t.into();
        Interval { start: t, end: t }
    }

    /// Inclusive lower bound.
    #[inline]
    pub const fn start(self) -> TimePoint {
        self.start
    }

    /// Inclusive upper bound.
    #[inline]
    pub const fn end(self) -> TimePoint {
        self.end
    }

    /// Number of time points covered; always at least 1.
    #[inline]
    pub fn duration(self) -> i64 {
        self.end.value() - self.start.value() + 1
    }

    /// Does the interval cover the given point?
    #[inline]
    pub fn contains_point(self, t: impl Into<TimePoint>) -> bool {
        let t = t.into();
        self.start <= t && t <= self.end
    }

    /// Does `self` fully cover `other` (not necessarily strictly)?
    #[inline]
    pub fn covers(self, other: Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Do the two intervals share at least one time point?
    ///
    /// Note: under the discrete Allen convention, `meets` intervals are
    /// adjacent and do *not* intersect.
    #[inline]
    pub fn intersects(self, other: Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The shared part of two intervals, if any.
    ///
    /// This implements the `t'' = t ∩ t'` interval expression in the
    /// paper's inference rule f2.
    pub fn intersection(self, other: Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start <= end {
            Some(Interval { start, end })
        } else {
            None
        }
    }

    /// Smallest interval covering both inputs (convex hull).
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Union as a single interval, defined only when the inputs intersect
    /// or are adjacent (so the union is itself an interval).
    pub fn union(self, other: Interval) -> Option<Interval> {
        if self.intersects(other) || self.meets_adjacent(other) || other.meets_adjacent(self) {
            Some(self.hull(other))
        } else {
            None
        }
    }

    /// `self.end + 1 == other.start` — the discrete `meets` test.
    #[inline]
    pub fn meets_adjacent(self, other: Interval) -> bool {
        self.end.value() + 1 == other.start.value()
    }

    /// Translates the interval by `delta` domain units.
    pub fn shift(self, delta: i64) -> Interval {
        Interval {
            start: self.start + delta,
            end: self.end + delta,
        }
    }

    /// Entirely before `other` with a gap or adjacent (no shared point)?
    #[inline]
    pub fn precedes(self, other: Interval) -> bool {
        self.end < other.start
    }

    /// Iterates over every covered time point, in order.
    ///
    /// Intended for small intervals (tests, explanation output); the
    /// reasoners never enumerate points.
    pub fn points(self) -> impl Iterator<Item = TimePoint> {
        (self.start.value()..=self.end.value()).map(TimePoint)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: i64, b: i64) -> Interval {
        Interval::new(a, b).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert!(Interval::new(5, 4).is_err());
        assert!(Interval::new(5, 5).is_ok());
    }

    #[test]
    fn duration_counts_points() {
        assert_eq!(iv(2000, 2004).duration(), 5);
        assert_eq!(Interval::at(1951).duration(), 1);
    }

    #[test]
    fn contains_and_covers() {
        let chelsea = iv(2000, 2004);
        assert!(chelsea.contains_point(2000));
        assert!(chelsea.contains_point(2004));
        assert!(!chelsea.contains_point(2005));
        assert!(chelsea.covers(iv(2001, 2003)));
        assert!(chelsea.covers(chelsea));
        assert!(!iv(2001, 2003).covers(chelsea));
    }

    #[test]
    fn intersection_matches_paper_rule_f2() {
        // f2 derives livesIn over t'' = t ∩ t'.
        let works = iv(2000, 2004);
        let located = iv(2002, 2010);
        assert_eq!(works.intersection(located), Some(iv(2002, 2004)));
        assert_eq!(works.intersection(iv(2006, 2010)), None);
    }

    #[test]
    fn intersects_is_symmetric_and_strict() {
        assert!(iv(1, 5).intersects(iv(5, 9)));
        assert!(iv(5, 9).intersects(iv(1, 5)));
        assert!(!iv(1, 5).intersects(iv(6, 9))); // adjacent, not shared
    }

    #[test]
    fn union_and_hull() {
        assert_eq!(iv(1, 5).union(iv(4, 9)), Some(iv(1, 9)));
        assert_eq!(iv(1, 5).union(iv(6, 9)), Some(iv(1, 9))); // adjacent
        assert_eq!(iv(1, 5).union(iv(7, 9)), None);
        assert_eq!(iv(1, 5).hull(iv(7, 9)), iv(1, 9));
    }

    #[test]
    fn shift_preserves_duration() {
        let i = iv(2000, 2004);
        assert_eq!(i.shift(10), iv(2010, 2014));
        assert_eq!(i.shift(-2000), iv(0, 4));
        assert_eq!(i.shift(3).duration(), i.duration());
    }

    #[test]
    fn precedes_allows_adjacency() {
        assert!(iv(1, 5).precedes(iv(6, 9)));
        assert!(iv(1, 5).precedes(iv(7, 9)));
        assert!(!iv(1, 5).precedes(iv(5, 9)));
    }

    #[test]
    fn points_enumeration() {
        let pts: Vec<i64> = iv(3, 6).points().map(|p| p.value()).collect();
        assert_eq!(pts, vec![3, 4, 5, 6]);
    }

    #[test]
    fn display() {
        assert_eq!(iv(2000, 2004).to_string(), "[2000,2004]");
    }
}
