//! # tecore-temporal
//!
//! Discrete time domain, closed intervals and Allen's interval algebra for
//! the TeCoRe temporal conflict-resolution system (VLDB 2017).
//!
//! The paper models validity time as "a discrete time domain T as a
//! linearly ordered finite sequence of time points" and attaches a closed
//! interval `[t_b, t_e]` to every fact. Temporal constraints are built
//! from **Allen's interval relations** (`before`, `overlaps`, `disjoint`,
//! ...), so this crate provides:
//!
//! * [`TimePoint`] — an integer time point (year, day, millisecond, ...);
//! * [`Interval`] — a closed, non-empty interval over time points;
//! * [`AllenRelation`] — the 13 basic Allen relations, with converse and
//!   the full 13×13 composition table;
//! * [`AllenSet`] — sets of Allen relations (the "named" relations of the
//!   constraint language such as `disjoint` are proper relation sets);
//! * [`TemporalElement`] — a coalesced union of disjoint intervals;
//! * [`TimeDomain`] — the finite domain facts are interpreted over.
//!
//! ## Discrete-interval convention
//!
//! Over a *discrete* domain with *closed* intervals the 13 relations only
//! partition interval pairs if adjacency is distinguished from sharing a
//! point. We follow the standard discretisation:
//!
//! * `a meets b`  ⇔ `a.end + 1 == b.start` (adjacent, nothing shared);
//! * `a before b` ⇔ `a.end + 1 <  b.start`;
//! * `a overlaps b` requires at least one shared time point.
//!
//! With this convention **exactly one** basic relation holds for every
//! ordered pair of intervals (see the property tests).
//!
//! ```
//! use tecore_temporal::{Interval, AllenRelation, AllenSet};
//!
//! let chelsea = Interval::new(2000, 2004).unwrap();
//! let napoli = Interval::new(2001, 2003).unwrap();
//! assert_eq!(AllenRelation::between(chelsea, napoli), AllenRelation::Contains);
//! // The paper's constraint c2 demands `disjoint(t, t')` for two coach
//! // spells of the same person — violated here:
//! assert!(!AllenSet::DISJOINT.holds(chelsea, napoli));
//! ```

#![forbid(unsafe_code)]

pub mod allen;
pub mod coalesce;
pub mod compose;
pub mod domain;
pub mod error;
pub mod interval;
pub mod network;
pub mod point;
pub mod set;

pub use allen::AllenRelation;
pub use coalesce::TemporalElement;
pub use domain::TimeDomain;
pub use error::TemporalError;
pub use interval::Interval;
pub use network::AllenNetwork;
pub use point::TimePoint;
pub use set::AllenSet;
