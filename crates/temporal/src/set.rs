//! Sets of Allen relations.
//!
//! The constraint language of the paper uses both basic relations
//! (`before`, `overlaps`) and *disjunctive* temporal predicates — most
//! prominently `disjoint(t, t')` in constraint c2, which is the union
//! `{before, meets, metBy, after}`. An [`AllenSet`] is a bitset over the
//! 13 basic relations and is the semantic domain of every temporal
//! predicate in TeCoRe.

use std::fmt;
use std::ops::{BitAnd, BitOr, Not, Sub};

use crate::allen::AllenRelation;
use crate::interval::Interval;

/// A set of basic Allen relations, stored as a 13-bit mask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AllenSet(u16);

const MASK: u16 = (1 << 13) - 1;

impl AllenSet {
    /// The empty relation set (holds for no interval pair).
    pub const EMPTY: AllenSet = AllenSet(0);
    /// The full set (holds for every interval pair).
    pub const FULL: AllenSet = AllenSet(MASK);
    /// `disjoint` — no shared time point: `{before, meets, metBy, after}`.
    ///
    /// This is the predicate of the paper's constraint c2 ("a person
    /// cannot coach two clubs at the same time").
    pub const DISJOINT: AllenSet = AllenSet(
        (1 << AllenRelation::Before as u16)
            | (1 << AllenRelation::Meets as u16)
            | (1 << AllenRelation::MetBy as u16)
            | (1 << AllenRelation::After as u16),
    );
    /// `intersects` (a.k.a. `overlap` in constraint c3) — at least one
    /// shared time point: the complement of [`AllenSet::DISJOINT`].
    pub const INTERSECTS: AllenSet = AllenSet(MASK ^ AllenSet::DISJOINT.0);

    /// The singleton set of one basic relation.
    pub const fn from_relation(r: AllenRelation) -> AllenSet {
        AllenSet(1 << (r as u16))
    }

    /// Builds a set from an iterator of basic relations.
    pub fn from_relations<I: IntoIterator<Item = AllenRelation>>(rels: I) -> AllenSet {
        let mut s = AllenSet::EMPTY;
        for r in rels {
            s = s.insert(r);
        }
        s
    }

    /// Raw 13-bit mask.
    #[inline]
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Builds from a raw mask, truncating to 13 bits.
    #[inline]
    pub const fn from_bits(bits: u16) -> AllenSet {
        AllenSet(bits & MASK)
    }

    /// Adds a relation.
    #[must_use]
    pub const fn insert(self, r: AllenRelation) -> AllenSet {
        AllenSet(self.0 | (1 << (r as u16)))
    }

    /// Removes a relation.
    #[must_use]
    pub const fn remove(self, r: AllenRelation) -> AllenSet {
        AllenSet(self.0 & !(1 << (r as u16)))
    }

    /// Membership test.
    #[inline]
    pub const fn contains(self, r: AllenRelation) -> bool {
        self.0 & (1 << (r as u16)) != 0
    }

    /// Number of basic relations in the set.
    #[inline]
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Is this the empty set?
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Does the (disjunctive) relation hold between `a` and `b`?
    ///
    /// True iff the unique basic relation between `a` and `b` is a member.
    #[inline]
    pub fn holds(self, a: Interval, b: Interval) -> bool {
        self.contains(AllenRelation::between(a, b))
    }

    /// The converse set: `s.converse().holds(b, a) == s.holds(a, b)`.
    pub fn converse(self) -> AllenSet {
        let mut out = AllenSet::EMPTY;
        for r in self.iter() {
            out = out.insert(r.converse());
        }
        out
    }

    /// Iterates over the member relations in canonical order.
    pub fn iter(self) -> impl Iterator<Item = AllenRelation> {
        AllenRelation::ALL
            .into_iter()
            .filter(move |r| self.contains(*r))
    }

    /// Set union.
    #[must_use]
    pub const fn union(self, other: AllenSet) -> AllenSet {
        AllenSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub const fn intersection(self, other: AllenSet) -> AllenSet {
        AllenSet(self.0 & other.0)
    }

    /// Complement within the 13 relations.
    #[must_use]
    pub const fn complement(self) -> AllenSet {
        AllenSet(!self.0 & MASK)
    }

    /// Named temporal predicates of the constraint language.
    ///
    /// Basic relation names resolve to singletons; the derived predicates
    /// `disjoint`, `intersects` and `overlap` (the paper uses both
    /// `overlaps` for the basic relation and `overlap` for "shares time",
    /// cf. constraints c2/c3) resolve to their disjunctions.
    pub fn parse(name: &str) -> Option<AllenSet> {
        if let Some(basic) = AllenRelation::parse(name) {
            return Some(AllenSet::from_relation(basic));
        }
        match name.to_ascii_lowercase().as_str() {
            "disjoint" => Some(AllenSet::DISJOINT),
            "intersects" | "overlap" | "coexists" => Some(AllenSet::INTERSECTS),
            "any" => Some(AllenSet::FULL),
            _ => None,
        }
    }

    /// The canonical name if this set is a named predicate, else `None`.
    pub fn canonical_name(self) -> Option<&'static str> {
        if self == AllenSet::DISJOINT {
            return Some("disjoint");
        }
        if self == AllenSet::INTERSECTS {
            return Some("intersects");
        }
        if self == AllenSet::FULL {
            return Some("any");
        }
        if self.len() == 1 {
            return self.iter().next().map(|r| r.name());
        }
        None
    }

    /// All names understood by [`AllenSet::parse`], for auto-completion.
    pub fn known_names() -> Vec<&'static str> {
        let mut names: Vec<&'static str> = AllenRelation::ALL.iter().map(|r| r.name()).collect();
        names.extend(["disjoint", "intersects", "overlap", "any"]);
        names
    }

    /// The conservative *candidate window* of this set against an
    /// anchor: every interval `a` with `self.holds(a, anchor)`
    /// intersects the returned window. `None` when no interval can
    /// satisfy the set (empty set, or the relation needs room beyond
    /// the time domain, e.g. `before` an anchor starting at
    /// [`TimePoint::MIN`](crate::point::TimePoint::MIN)).
    ///
    /// This is what lets an interval index answer Allen-relation
    /// queries sub-linearly: overlap-scan the candidate window, then
    /// apply [`AllenSet::holds`] exactly per candidate. Single-relation
    /// sets give tight windows (`before [2000,2004]` ⇒
    /// `[MIN, 1998]`); unions widen to the hull of their members'
    /// windows, which stays a correct superset.
    pub fn candidate_window(self, anchor: Interval) -> Option<Interval> {
        use crate::point::TimePoint;
        let mut hull: Option<Interval> = None;
        let mut widen = |w: Interval| {
            hull = Some(match hull {
                Some(h) => h.hull(w),
                None => w,
            });
        };
        for r in self.iter() {
            let window = match r {
                // a ends at least two points before the anchor starts.
                AllenRelation::Before => (anchor.start().value() >= TimePoint::MIN.value() + 2)
                    .then(|| {
                        Interval::new(TimePoint::MIN, anchor.start() + (-2)).expect("ordered")
                    }),
                // a ends exactly one point before the anchor starts.
                AllenRelation::Meets => {
                    (anchor.start() > TimePoint::MIN).then(|| Interval::at(anchor.start() + (-1)))
                }
                // a starts exactly one point after the anchor ends.
                AllenRelation::MetBy => {
                    (anchor.end() < TimePoint::MAX).then(|| Interval::at(anchor.end() + 1))
                }
                // a starts at least two points after the anchor ends.
                AllenRelation::After => (anchor.end().value() <= TimePoint::MAX.value() - 2)
                    .then(|| Interval::new(anchor.end() + 2, TimePoint::MAX).expect("ordered")),
                // Every other basic relation shares a point with the
                // anchor.
                _ => Some(anchor),
            };
            if let Some(w) = window {
                widen(w);
            }
        }
        hull
    }
}

impl BitOr for AllenSet {
    type Output = AllenSet;
    fn bitor(self, rhs: AllenSet) -> AllenSet {
        self.union(rhs)
    }
}

impl BitAnd for AllenSet {
    type Output = AllenSet;
    fn bitand(self, rhs: AllenSet) -> AllenSet {
        self.intersection(rhs)
    }
}

impl Not for AllenSet {
    type Output = AllenSet;
    fn not(self) -> AllenSet {
        self.complement()
    }
}

impl Sub for AllenSet {
    type Output = AllenSet;
    fn sub(self, rhs: AllenSet) -> AllenSet {
        AllenSet(self.0 & !rhs.0)
    }
}

impl From<AllenRelation> for AllenSet {
    fn from(r: AllenRelation) -> AllenSet {
        AllenSet::from_relation(r)
    }
}

impl FromIterator<AllenRelation> for AllenSet {
    fn from_iter<T: IntoIterator<Item = AllenRelation>>(iter: T) -> AllenSet {
        AllenSet::from_relations(iter)
    }
}

impl fmt::Display for AllenSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(name) = self.canonical_name() {
            return f.write_str(name);
        }
        write!(f, "{{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                write!(f, "|")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for AllenSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iv(a: i64, b: i64) -> Interval {
        Interval::new(a, b).unwrap()
    }

    #[test]
    fn disjoint_is_complement_of_intersects() {
        assert_eq!(AllenSet::DISJOINT.complement(), AllenSet::INTERSECTS);
        assert_eq!(
            AllenSet::DISJOINT.union(AllenSet::INTERSECTS),
            AllenSet::FULL
        );
        assert!(AllenSet::DISJOINT
            .intersection(AllenSet::INTERSECTS)
            .is_empty());
    }

    #[test]
    fn disjoint_semantics_match_interval_intersects() {
        let pairs = [
            (iv(1, 5), iv(7, 9)),
            (iv(1, 5), iv(6, 9)),
            (iv(1, 5), iv(5, 9)),
            (iv(2000, 2004), iv(2001, 2003)),
        ];
        for (a, b) in pairs {
            assert_eq!(AllenSet::DISJOINT.holds(a, b), !a.intersects(b), "{a} {b}");
            assert_eq!(AllenSet::INTERSECTS.holds(a, b), a.intersects(b), "{a} {b}");
        }
    }

    #[test]
    fn named_predicates_parse() {
        assert_eq!(AllenSet::parse("disjoint"), Some(AllenSet::DISJOINT));
        assert_eq!(AllenSet::parse("overlap"), Some(AllenSet::INTERSECTS));
        assert_eq!(
            AllenSet::parse("before"),
            Some(AllenSet::from_relation(AllenRelation::Before))
        );
        assert_eq!(AllenSet::parse("garbage"), None);
    }

    #[test]
    fn canonical_names() {
        assert_eq!(AllenSet::DISJOINT.canonical_name(), Some("disjoint"));
        assert_eq!(
            AllenSet::from_relation(AllenRelation::Meets).canonical_name(),
            Some("meets")
        );
        let odd = AllenSet::from_relations([AllenRelation::Before, AllenRelation::Equals]);
        assert_eq!(odd.canonical_name(), None);
        assert_eq!(odd.to_string(), "{before|equals}");
    }

    #[test]
    fn insert_remove_contains() {
        let s = AllenSet::EMPTY.insert(AllenRelation::During);
        assert!(s.contains(AllenRelation::During));
        assert_eq!(s.len(), 1);
        assert!(!s
            .remove(AllenRelation::During)
            .contains(AllenRelation::During));
    }

    #[test]
    fn operators() {
        let a = AllenSet::from_relation(AllenRelation::Before);
        let b = AllenSet::from_relation(AllenRelation::After);
        assert_eq!((a | b).len(), 2);
        assert!((a & b).is_empty());
        assert_eq!((!a).len(), 12);
        assert_eq!(((a | b) - b), a);
    }

    fn arb_set() -> impl Strategy<Value = AllenSet> {
        (0u16..(1 << 13)).prop_map(AllenSet::from_bits)
    }

    fn arb_interval() -> impl Strategy<Value = Interval> {
        (-30i64..30, 0i64..20).prop_map(|(s, l)| iv(s, s + l))
    }

    proptest! {
        #[test]
        fn converse_law(s in arb_set(), a in arb_interval(), b in arb_interval()) {
            prop_assert_eq!(s.converse().holds(b, a), s.holds(a, b));
        }

        #[test]
        fn converse_involution(s in arb_set()) {
            prop_assert_eq!(s.converse().converse(), s);
        }

        #[test]
        fn holds_iff_member(s in arb_set(), a in arb_interval(), b in arb_interval()) {
            let basic = AllenRelation::between(a, b);
            prop_assert_eq!(s.holds(a, b), s.contains(basic));
        }

        #[test]
        fn de_morgan(x in arb_set(), y in arb_set()) {
            prop_assert_eq!(!(x | y), (!x) & (!y));
            prop_assert_eq!(!(x & y), (!x) | (!y));
        }

        #[test]
        fn iter_matches_len(s in arb_set()) {
            prop_assert_eq!(s.iter().count() as u32, s.len());
        }

        /// Soundness of the index pre-filter: any interval satisfying
        /// the set intersects the candidate window (so an overlap scan
        /// of the window misses no answer).
        #[test]
        fn candidate_window_is_superset(s in arb_set(), a in arb_interval(), b in arb_interval()) {
            if s.holds(a, b) {
                let w = s.candidate_window(b).expect("a satisfies s, so a window exists");
                prop_assert!(a.intersects(w), "{a} satisfies the set vs {b} but misses {w}");
            }
        }
    }

    #[test]
    fn candidate_window_tightness_and_impossibility() {
        let anchor = iv(2000, 2004);
        let before = AllenSet::from_relation(AllenRelation::Before)
            .candidate_window(anchor)
            .unwrap();
        assert_eq!(before.end(), crate::point::TimePoint(1998));
        assert_eq!(
            AllenSet::from_relation(AllenRelation::Meets).candidate_window(anchor),
            Some(Interval::at(1999))
        );
        assert_eq!(
            AllenSet::from_relation(AllenRelation::During).candidate_window(anchor),
            Some(anchor)
        );
        // Impossible at the domain edge; empty set has no window.
        let at_min = Interval::at(crate::point::TimePoint::MIN);
        assert_eq!(
            AllenSet::from_relation(AllenRelation::Before).candidate_window(at_min),
            None
        );
        assert_eq!(AllenSet::EMPTY.candidate_window(anchor), None);
    }
}
