//! Temporal elements: coalesced unions of disjoint intervals.
//!
//! Temporal-database style *coalescing* merges adjacent and overlapping
//! intervals into a canonical minimal representation. TeCoRe uses
//! temporal elements to aggregate the validity of a statement across
//! multiple facts (e.g. all periods in which someone coached *some* club)
//! and in the statistics module.

use std::fmt;

use crate::interval::Interval;
use crate::point::TimePoint;

/// A canonical union of pairwise disjoint, non-adjacent intervals, kept
/// sorted by start point.
///
/// Invariants (maintained by every operation):
/// 1. intervals are sorted by start;
/// 2. consecutive intervals neither intersect nor touch (gap ≥ 1 point).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct TemporalElement {
    intervals: Vec<Interval>,
}

impl TemporalElement {
    /// The empty temporal element.
    pub fn empty() -> Self {
        TemporalElement::default()
    }

    /// A temporal element from any collection of intervals, coalescing as
    /// needed.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(intervals: I) -> Self {
        let mut v: Vec<Interval> = intervals.into_iter().collect();
        v.sort_unstable_by_key(|i| (i.start(), i.end()));
        let mut out: Vec<Interval> = Vec::with_capacity(v.len());
        for iv in v {
            match out.last_mut() {
                Some(last) if iv.start().value() <= last.end().value() + 1 => {
                    // Overlapping or adjacent: extend in place.
                    if iv.end() > last.end() {
                        *last = Interval::new(last.start(), iv.end()).expect("sorted merge");
                    }
                }
                _ => out.push(iv),
            }
        }
        TemporalElement { intervals: out }
    }

    /// The coalesced intervals, sorted by start.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Number of maximal intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Is the element empty?
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Total number of covered time points.
    pub fn total_duration(&self) -> i64 {
        self.intervals.iter().map(|i| i.duration()).sum()
    }

    /// Does the element cover the point?
    pub fn contains_point(&self, t: impl Into<TimePoint>) -> bool {
        let t = t.into();
        // Binary search on start points, then check the candidate.
        let idx = self.intervals.partition_point(|i| i.start() <= t);
        idx > 0 && self.intervals[idx - 1].contains_point(t)
    }

    /// Adds one interval (coalescing).
    pub fn insert(&mut self, interval: Interval) {
        // Fast path: append at the end.
        if let Some(last) = self.intervals.last() {
            if interval.start().value() > last.end().value() + 1 {
                self.intervals.push(interval);
                return;
            }
        } else {
            self.intervals.push(interval);
            return;
        }
        let merged = TemporalElement::from_intervals(
            self.intervals
                .iter()
                .copied()
                .chain(std::iter::once(interval)),
        );
        *self = merged;
    }

    /// Union of two elements.
    #[must_use]
    pub fn union(&self, other: &TemporalElement) -> TemporalElement {
        TemporalElement::from_intervals(
            self.intervals.iter().chain(other.intervals.iter()).copied(),
        )
    }

    /// Intersection of two elements (linear merge).
    #[must_use]
    pub fn intersection(&self, other: &TemporalElement) -> TemporalElement {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.intervals.len() && j < other.intervals.len() {
            let a = self.intervals[i];
            let b = other.intervals[j];
            if let Some(shared) = a.intersection(b) {
                out.push(shared);
            }
            if a.end() <= b.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        // Already disjoint and sorted; no re-coalescing needed because
        // intersections of disjoint families stay disjoint.
        TemporalElement { intervals: out }
    }

    /// Points covered by `self` but not `other`.
    #[must_use]
    pub fn difference(&self, other: &TemporalElement) -> TemporalElement {
        let mut out: Vec<Interval> = Vec::new();
        let mut j = 0;
        for &a in &self.intervals {
            let mut cur_start = a.start();
            let end = a.end();
            while j < other.intervals.len() && other.intervals[j].end() < cur_start {
                j += 1;
            }
            let mut k = j;
            let mut exhausted = false;
            while k < other.intervals.len() && other.intervals[k].start() <= end {
                let b = other.intervals[k];
                if b.start() > cur_start {
                    out.push(Interval::new(cur_start, b.start().pred()).expect("gap before hole"));
                }
                if b.end() >= end {
                    exhausted = true;
                    break;
                }
                cur_start = cur_start.max(b.end().succ());
                k += 1;
            }
            if !exhausted && cur_start <= end {
                out.push(Interval::new(cur_start, end).expect("tail segment"));
            }
        }
        TemporalElement::from_intervals(out)
    }

    /// The convex hull, if non-empty.
    pub fn hull(&self) -> Option<Interval> {
        match (self.intervals.first(), self.intervals.last()) {
            (Some(first), Some(last)) => {
                Some(Interval::new(first.start(), last.end()).expect("sorted"))
            }
            _ => None,
        }
    }
}

impl FromIterator<Interval> for TemporalElement {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        TemporalElement::from_intervals(iter)
    }
}

impl fmt::Display for TemporalElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iv(a: i64, b: i64) -> Interval {
        Interval::new(a, b).unwrap()
    }

    #[test]
    fn coalesces_overlapping_and_adjacent() {
        let e = TemporalElement::from_intervals([iv(1, 3), iv(4, 6), iv(10, 12), iv(11, 15)]);
        assert_eq!(e.intervals(), &[iv(1, 6), iv(10, 15)]);
        assert_eq!(e.total_duration(), 6 + 6);
    }

    #[test]
    fn contains_point_binary_search() {
        let e = TemporalElement::from_intervals([iv(1, 3), iv(10, 12)]);
        assert!(e.contains_point(2));
        assert!(e.contains_point(10));
        assert!(!e.contains_point(5));
        assert!(!e.contains_point(0));
        assert!(!e.contains_point(13));
    }

    #[test]
    fn insert_fast_path_and_merge() {
        let mut e = TemporalElement::empty();
        e.insert(iv(1, 3));
        e.insert(iv(10, 12)); // fast append
        e.insert(iv(4, 5)); // adjacent to first: merge
        assert_eq!(e.intervals(), &[iv(1, 5), iv(10, 12)]);
    }

    #[test]
    fn set_operations() {
        let a = TemporalElement::from_intervals([iv(1, 5), iv(10, 15)]);
        let b = TemporalElement::from_intervals([iv(4, 11)]);
        assert_eq!(a.union(&b).intervals(), &[iv(1, 15)]);
        assert_eq!(a.intersection(&b).intervals(), &[iv(4, 5), iv(10, 11)]);
        assert_eq!(a.difference(&b).intervals(), &[iv(1, 3), iv(12, 15)]);
        assert_eq!(b.difference(&a).intervals(), &[iv(6, 9)]);
    }

    #[test]
    fn difference_hole_in_middle() {
        let a = TemporalElement::from_intervals([iv(0, 10)]);
        let b = TemporalElement::from_intervals([iv(3, 4), iv(7, 8)]);
        assert_eq!(
            a.difference(&b).intervals(),
            &[iv(0, 2), iv(5, 6), iv(9, 10)]
        );
    }

    #[test]
    fn hull() {
        let e = TemporalElement::from_intervals([iv(1, 3), iv(10, 12)]);
        assert_eq!(e.hull(), Some(iv(1, 12)));
        assert_eq!(TemporalElement::empty().hull(), None);
    }

    #[test]
    fn display() {
        let e = TemporalElement::from_intervals([iv(1, 3), iv(10, 12)]);
        assert_eq!(e.to_string(), "{[1,3], [10,12]}");
    }

    fn arb_elem() -> impl Strategy<Value = TemporalElement> {
        prop::collection::vec((-40i64..40, 0i64..10), 0..8)
            .prop_map(|v| v.into_iter().map(|(s, l)| iv(s, s + l)).collect())
    }

    fn covered(e: &TemporalElement) -> std::collections::BTreeSet<i64> {
        e.intervals()
            .iter()
            .flat_map(|i| i.points().map(|p| p.value()))
            .collect()
    }

    proptest! {
        /// Invariant: output intervals are sorted and separated by gaps.
        #[test]
        fn canonical_invariant(e in arb_elem()) {
            for w in e.intervals().windows(2) {
                prop_assert!(w[0].end().value() + 1 < w[1].start().value());
            }
        }

        /// Point-set semantics of union/intersection/difference.
        #[test]
        fn pointwise_semantics(a in arb_elem(), b in arb_elem()) {
            let (pa, pb) = (covered(&a), covered(&b));
            let union: std::collections::BTreeSet<_> = pa.union(&pb).copied().collect();
            let inter: std::collections::BTreeSet<_> = pa.intersection(&pb).copied().collect();
            let diff: std::collections::BTreeSet<_> = pa.difference(&pb).copied().collect();
            prop_assert_eq!(covered(&a.union(&b)), union);
            prop_assert_eq!(covered(&a.intersection(&b)), inter);
            prop_assert_eq!(covered(&a.difference(&b)), diff);
        }

        /// Coalescing is idempotent.
        #[test]
        fn idempotent(a in arb_elem()) {
            let again = TemporalElement::from_intervals(a.intervals().iter().copied());
            prop_assert_eq!(a, again);
        }

        /// Duration equals the number of covered points.
        #[test]
        fn duration_counts(a in arb_elem()) {
            prop_assert_eq!(a.total_duration() as usize, covered(&a).len());
        }
    }
}
